//! Error types shared across the SEBDB stack.

use crate::value::DataType;

/// Errors raised by the type layer: codec failures, schema violations,
/// value coercion problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Decoder ran out of bytes.
    UnexpectedEof {
        /// What the decoder was trying to read.
        context: &'static str,
    },
    /// Decoder saw an unknown tag byte.
    BadTag {
        /// What the decoder was trying to read.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the sanity limit.
    LengthOverflow {
        /// The decoded length.
        len: u64,
    },
    /// Decoded bytes were not valid UTF-8.
    BadUtf8,
    /// A tuple did not match its schema.
    SchemaMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// A value had the wrong type for an operation.
    TypeMismatch {
        /// Expected type.
        expected: DataType,
        /// Actual type.
        actual: DataType,
    },
    /// Referenced a column that does not exist.
    NoSuchColumn {
        /// The missing column name.
        column: String,
    },
    /// Referenced a table that does not exist.
    NoSuchTable {
        /// The missing table name.
        table: String,
    },
    /// A table was declared twice.
    DuplicateTable {
        /// The duplicated table name.
        table: String,
    },
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            TypeError::BadTag { context, tag } => {
                write!(f, "invalid tag byte {tag:#04x} while reading {context}")
            }
            TypeError::LengthOverflow { len } => {
                write!(f, "length prefix {len} exceeds sanity limit")
            }
            TypeError::BadUtf8 => write!(f, "decoded string is not valid UTF-8"),
            TypeError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            TypeError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected:?}, got {actual:?}")
            }
            TypeError::NoSuchColumn { column } => write!(f, "no such column: {column}"),
            TypeError::NoSuchTable { table } => write!(f, "no such table: {table}"),
            TypeError::DuplicateTable { table } => write!(f, "duplicate table: {table}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, TypeError>;
