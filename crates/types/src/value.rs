//! Attribute values and data types.
//!
//! The paper's data model (§III-A): "The attribute types can be string,
//! various flavors of numbers, etc." We support 64-bit integers,
//! fixed-point decimals (money amounts in the donation schema),
//! strings, booleans, timestamps and raw bytes.
//!
//! `Value` carries a total order *within* a type, which the layered
//! index and the sort-merge joins rely on. Decimals are fixed-point
//! (scale 10⁻⁴) so that comparisons are exact — no float surprises in
//! query results.

use crate::error::TypeError;

/// Fixed-point scale for [`Value::Decimal`]: values are stored as
/// `units = amount * 10^4`.
pub const DECIMAL_SCALE: i64 = 10_000;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// Fixed-point decimal with four fractional digits.
    Decimal,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Milliseconds since the Unix epoch.
    Timestamp,
    /// Raw bytes.
    Bytes,
}

impl DataType {
    /// Parses a type name as written in `CREATE` statements.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" => Some(DataType::Int),
            "decimal" | "numeric" | "money" => Some(DataType::Decimal),
            "string" | "varchar" | "text" => Some(DataType::Str),
            "bool" | "boolean" => Some(DataType::Bool),
            "timestamp" | "datetime" => Some(DataType::Timestamp),
            "bytes" | "blob" => Some(DataType::Bytes),
            _ => None,
        }
    }

    /// The keyword used when rendering a schema back to SQL.
    pub fn keyword(&self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Decimal => "decimal",
            DataType::Str => "string",
            DataType::Bool => "bool",
            DataType::Timestamp => "timestamp",
            DataType::Bytes => "bytes",
        }
    }

    /// Whether the layered index treats this attribute as continuous
    /// (histogram buckets) or discrete (per-value bitmaps). §IV-B.
    pub fn is_continuous(&self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Decimal | DataType::Timestamp
        )
    }
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Fixed-point decimal in `10^-4` units.
    Decimal(i64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Milliseconds since the Unix epoch.
    Timestamp(u64),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// Builds a decimal from whole units (e.g. `Value::decimal(100)` is
    /// "100.0000").
    pub fn decimal(whole: i64) -> Value {
        Value::Decimal(whole * DECIMAL_SCALE)
    }

    /// Builds a decimal from a float, rounding to the fixed scale.
    pub fn decimal_f64(v: f64) -> Value {
        Value::Decimal((v * DECIMAL_SCALE as f64).round() as i64)
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The value's data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Decimal(_) => Some(DataType::Decimal),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    /// True if this value may be stored in a column of type `ty`.
    /// NULL is storable anywhere; an `Int` literal is accepted by
    /// `Decimal` and `Timestamp` columns (widening).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Decimal | DataType::Timestamp) => true,
            (v, t) => v.data_type() == Some(t),
        }
    }

    /// Coerces this value to column type `ty` (applying the widenings
    /// allowed by [`Value::conforms_to`]).
    pub fn coerce(self, ty: DataType) -> Result<Value, TypeError> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), DataType::Decimal) => Ok(Value::Decimal(i * DECIMAL_SCALE)),
            (Value::Int(i), DataType::Timestamp) if i >= 0 => Ok(Value::Timestamp(i as u64)),
            (v, t) if v.data_type() == Some(t) => Ok(v),
            (v, t) => Err(TypeError::TypeMismatch {
                expected: t,
                actual: v.data_type().unwrap_or(DataType::Bytes),
            }),
        }
    }

    /// A numeric rank used by the layered index's equal-depth histogram
    /// for continuous attributes. `None` for non-continuous values.
    pub fn numeric_rank(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Decimal(d) => Some(*d),
            Value::Timestamp(t) => Some(*t as i64),
            _ => None,
        }
    }

    /// Total order across values of the *same* type; values of different
    /// types order by type tag (stable, arbitrary) so sorting mixed
    /// columns is still deterministic. NULL sorts first.
    pub fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            // Mixed-type comparison falls back to the tag order. With
            // schema enforcement this only happens for Int-vs-Decimal
            // literals, which we normalize at insert time.
            (a, b) => a.type_tag().cmp(&b.type_tag()),
        }
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Decimal(_) => 2,
            Value::Str(_) => 3,
            Value::Bool(_) => 4,
            Value::Timestamp(_) => 5,
            Value::Bytes(_) => 6,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_total(other)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Decimal(d) => {
                let whole = d / DECIMAL_SCALE;
                let frac = (d % DECIMAL_SCALE).abs();
                if frac == 0 {
                    write!(f, "{whole}")
                } else {
                    write!(f, "{whole}.{frac:04}")
                }
            }
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Bytes(b) => write!(f, "x'{}'", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_type_names() {
        assert_eq!(DataType::parse("STRING"), Some(DataType::Str));
        assert_eq!(DataType::parse("decimal"), Some(DataType::Decimal));
        assert_eq!(DataType::parse("Int"), Some(DataType::Int));
        assert_eq!(DataType::parse("widget"), None);
    }

    #[test]
    fn continuous_vs_discrete() {
        assert!(DataType::Int.is_continuous());
        assert!(DataType::Decimal.is_continuous());
        assert!(DataType::Timestamp.is_continuous());
        assert!(!DataType::Str.is_continuous());
        assert!(!DataType::Bool.is_continuous());
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Value::decimal(100).to_string(), "100");
        assert_eq!(Value::decimal_f64(99.5).to_string(), "99.5000");
        assert_eq!(Value::Decimal(-12_345).to_string(), "-1.2345");
    }

    #[test]
    fn coercion() {
        assert_eq!(
            Value::Int(7).coerce(DataType::Decimal),
            Ok(Value::decimal(7))
        );
        assert_eq!(
            Value::Int(5).coerce(DataType::Timestamp),
            Ok(Value::Timestamp(5))
        );
        assert!(Value::str("x").coerce(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce(DataType::Int), Ok(Value::Null));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::decimal(1) < Value::decimal_f64(1.5));
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn numeric_rank() {
        assert_eq!(Value::Int(3).numeric_rank(), Some(3));
        assert_eq!(Value::decimal(2).numeric_rank(), Some(2 * DECIMAL_SCALE));
        assert_eq!(Value::str("x").numeric_rank(), None);
    }

    #[test]
    fn conforms() {
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Decimal));
        assert!(Value::Null.conforms_to(DataType::Str));
        assert!(!Value::Bool(true).conforms_to(DataType::Int));
    }
}
