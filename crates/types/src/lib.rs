//! # sebdb-types
//!
//! Shared data model for SEBDB: attribute [`value::Value`]s, relational
//! [`schema::TableSchema`]s over transaction types, [`tx::Transaction`]s
//! (tuples with system- and application-level attributes), chained
//! [`block::Block`]s, and the canonical binary [`codec`].

#![warn(missing_docs)]

pub mod block;
pub mod codec;
pub mod error;
pub mod schema;
pub mod tx;
pub mod value;

pub use block::{Block, BlockHeader};
pub use codec::{Codec, Decoder, Encoder};
pub use error::TypeError;
pub use schema::{Column, ColumnRef, TableSchema};
pub use tx::{BlockId, Timestamp, Transaction, TxId};
pub use value::{DataType, Value};
