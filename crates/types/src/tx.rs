//! Transactions: tuples with system- and application-level attributes.
//!
//! A transaction (§IV-A) carries `Tid` (assigned by the ordering
//! service, globally incremental), `Ts` (client send time), `Sig`
//! (unforgeability), `SenID` (sender identity) and `Tname` (transaction
//! type = table name), followed by the user-defined application
//! attributes.

use crate::codec::{Codec, Decoder, Encoder};
use crate::error::TypeError;
use crate::schema::ColumnRef;
use crate::value::Value;
use sebdb_crypto::sha256::{sha256, Digest};
use sebdb_crypto::sig::KeyId;

/// Globally incremental transaction id.
pub type TxId = u64;
/// Block height / block id.
pub type BlockId = u64;
/// Milliseconds since the Unix epoch.
pub type Timestamp = u64;

/// One on-chain transaction (= one tuple of table `tname`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Transaction id; `0` until assigned by the ordering service.
    pub tid: TxId,
    /// Client-side send timestamp (ms).
    pub ts: Timestamp,
    /// Serialized signature over [`Transaction::signing_payload`].
    pub sig: Vec<u8>,
    /// Sender identity.
    pub sender: KeyId,
    /// Transaction type, i.e. the table this tuple belongs to.
    pub tname: String,
    /// Application-level attribute values, in schema order.
    pub values: Vec<Value>,
}

impl Transaction {
    /// Builds an unsigned, unordered transaction.
    pub fn new(ts: Timestamp, sender: KeyId, tname: impl Into<String>, values: Vec<Value>) -> Self {
        Transaction {
            tid: 0,
            ts,
            sig: Vec::new(),
            sender,
            tname: tname.into(),
            values,
        }
    }

    /// Canonical bytes covered by the signature: everything except `tid`
    /// (assigned later by the ordering service) and `sig` itself.
    pub fn signing_payload(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(64 + self.values.len() * 16);
        enc.put_u64(self.ts);
        enc.put_raw(self.sender.as_bytes());
        enc.put_str(&self.tname);
        enc.put_values(&self.values);
        enc.finish()
    }

    /// Content hash of the fully-assembled transaction (what Merkle
    /// leaves commit to).
    pub fn hash(&self) -> Digest {
        sha256(&self.to_bytes())
    }

    /// Reads a column (system or application) as a [`Value`].
    ///
    /// System columns are materialized: `tid`/`ts` as integers,
    /// `sig`/`sen_id` as bytes, `tname` as a string. Returns `None` for
    /// an out-of-range application column.
    pub fn get(&self, col: ColumnRef) -> Option<Value> {
        Some(match col {
            ColumnRef::Tid => Value::Int(self.tid as i64),
            ColumnRef::Ts => Value::Timestamp(self.ts),
            ColumnRef::Sig => Value::Bytes(self.sig.clone()),
            ColumnRef::SenId => Value::Bytes(self.sender.as_bytes().to_vec()),
            ColumnRef::Tname => Value::Str(self.tname.clone()),
            ColumnRef::App(i) => self.values.get(i)?.clone(),
        })
    }

    /// Approximate serialized size in bytes (used by block packaging to
    /// enforce the configured block size).
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }
}

impl Codec for Transaction {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.tid);
        enc.put_u64(self.ts);
        enc.put_bytes(&self.sig);
        enc.put_raw(self.sender.as_bytes());
        enc.put_str(&self.tname);
        enc.put_values(&self.values);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, TypeError> {
        let tid = dec.get_u64("tid")?;
        let ts = dec.get_u64("ts")?;
        let sig = dec.get_bytes("sig")?.to_vec();
        let sender_bytes = dec.get_raw(8, "sen_id")?;
        let mut sender = [0u8; 8];
        sender.copy_from_slice(sender_bytes);
        let tname = dec.get_str("tname")?.to_owned();
        let values = dec.get_values()?;
        Ok(Transaction {
            tid,
            ts,
            sig,
            sender: KeyId(sender),
            tname,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::{MacKeypair, Signer, Verifier};

    fn sample() -> Transaction {
        Transaction::new(
            1234,
            KeyId([1, 2, 3, 4, 5, 6, 7, 8]),
            "donate",
            vec![
                Value::str("Jack"),
                Value::str("Education"),
                Value::decimal(100),
            ],
        )
    }

    #[test]
    fn codec_roundtrip() {
        let mut tx = sample();
        tx.tid = 42;
        tx.sig = vec![9u8; 33];
        let decoded = Transaction::from_bytes(&tx.to_bytes()).unwrap();
        assert_eq!(decoded, tx);
    }

    #[test]
    fn signing_payload_excludes_tid_and_sig() {
        let mut a = sample();
        let mut b = sample();
        a.tid = 1;
        b.tid = 2;
        a.sig = vec![1];
        b.sig = vec![2];
        assert_eq!(a.signing_payload(), b.signing_payload());
    }

    #[test]
    fn signing_payload_covers_content() {
        let a = sample();
        let mut b = sample();
        b.values[2] = Value::decimal(101);
        assert_ne!(a.signing_payload(), b.signing_payload());
        let mut c = sample();
        c.tname = "transfer".into();
        assert_ne!(a.signing_payload(), c.signing_payload());
    }

    #[test]
    fn sign_then_verify_via_payload() {
        let kp = MacKeypair::from_key([7u8; 32]);
        let mut tx = sample();
        tx.sender = kp.key_id();
        let sig = kp.sign(&tx.signing_payload());
        tx.sig = sig.to_bytes();
        // Ordering service assigns a tid; the signature must survive.
        tx.tid = 99;
        assert!(kp.verify(&tx.signing_payload(), &sig));
    }

    #[test]
    fn get_system_columns() {
        let mut tx = sample();
        tx.tid = 7;
        assert_eq!(tx.get(ColumnRef::Tid), Some(Value::Int(7)));
        assert_eq!(tx.get(ColumnRef::Ts), Some(Value::Timestamp(1234)));
        assert_eq!(tx.get(ColumnRef::Tname), Some(Value::str("donate")));
        assert_eq!(
            tx.get(ColumnRef::SenId),
            Some(Value::Bytes(vec![1, 2, 3, 4, 5, 6, 7, 8]))
        );
        assert_eq!(tx.get(ColumnRef::App(2)), Some(Value::decimal(100)));
        assert_eq!(tx.get(ColumnRef::App(9)), None);
    }

    #[test]
    fn hash_changes_with_content() {
        let a = sample();
        let mut b = sample();
        b.ts += 1;
        assert_ne!(a.hash(), b.hash());
    }
}
