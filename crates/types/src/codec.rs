//! Hand-written binary codec.
//!
//! All on-chain structures (transactions, blocks, index pages, VOs) are
//! encoded with this little-endian, length-prefixed format. The encoding
//! is canonical — a given structure has exactly one byte representation —
//! which matters because hashes and signatures are computed over these
//! bytes.

use crate::error::TypeError;
use crate::value::Value;

/// Sanity bound on any decoded length prefix (protects against garbage
/// input allocating gigabytes).
const MAX_LEN: u64 = 1 << 32;

/// Append-only byte sink with typed `put_*` helpers.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// New encoder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes raw bytes without a length prefix (fixed-size fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a tagged [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_i64(*i);
            }
            Value::Decimal(d) => {
                self.put_u8(2);
                self.put_i64(*d);
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
            Value::Bool(b) => {
                self.put_u8(4);
                self.put_u8(*b as u8);
            }
            Value::Timestamp(t) => {
                self.put_u8(5);
                self.put_u64(*t);
            }
            Value::Bytes(b) => {
                self.put_u8(6);
                self.put_bytes(b);
            }
        }
    }

    /// Writes a slice of values with a count prefix.
    pub fn put_values(&mut self, vs: &[Value]) {
        self.put_u32(vs.len() as u32);
        for v in vs {
            self.put_value(v);
        }
    }
}

/// Zero-copy cursor over encoded bytes with typed `get_*` helpers.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all input is consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], TypeError> {
        if self.remaining() < n {
            return Err(TypeError::UnexpectedEof { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, TypeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, TypeError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, TypeError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn get_i64(&mut self, context: &'static str) -> Result<i64, TypeError> {
        let b = self.take(8, context)?;
        Ok(i64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<&'a [u8], TypeError> {
        let len = self.get_u32(context)? as u64;
        if len > MAX_LEN {
            return Err(TypeError::LengthOverflow { len });
        }
        self.take(len as usize, context)
    }

    /// Reads `n` raw bytes (fixed-size fields).
    pub fn get_raw(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], TypeError> {
        self.take(n, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<&'a str, TypeError> {
        std::str::from_utf8(self.get_bytes(context)?).map_err(|_| TypeError::BadUtf8)
    }

    /// Reads a tagged [`Value`].
    pub fn get_value(&mut self) -> Result<Value, TypeError> {
        let tag = self.get_u8("value tag")?;
        Ok(match tag {
            0 => Value::Null,
            1 => Value::Int(self.get_i64("int value")?),
            2 => Value::Decimal(self.get_i64("decimal value")?),
            3 => Value::Str(self.get_str("string value")?.to_owned()),
            4 => Value::Bool(self.get_u8("bool value")? != 0),
            5 => Value::Timestamp(self.get_u64("timestamp value")?),
            6 => Value::Bytes(self.get_bytes("bytes value")?.to_vec()),
            tag => {
                return Err(TypeError::BadTag {
                    context: "value",
                    tag,
                })
            }
        })
    }

    /// Reads a count-prefixed slice of values.
    pub fn get_values(&mut self) -> Result<Vec<Value>, TypeError> {
        let n = self.get_u32("value count")? as usize;
        if n as u64 > MAX_LEN {
            return Err(TypeError::LengthOverflow { len: n as u64 });
        }
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.get_value()?);
        }
        Ok(out)
    }
}

/// Trait for structures with a canonical binary form.
pub trait Codec: Sized {
    /// Appends this structure's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Decodes one structure from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, TypeError>;

    /// Encodes into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decodes from a complete byte slice, requiring full consumption.
    fn from_bytes(buf: &[u8]) -> Result<Self, TypeError> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(TypeError::SchemaMismatch {
                detail: format!("{} trailing bytes after decode", dec.remaining()),
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitive_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(1234);
        e.put_u64(u64::MAX);
        e.put_i64(-5);
        e.put_str("héllo");
        e.put_bytes(&[1, 2, 3]);
        let buf = e.finish();

        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_u8("t").unwrap(), 7);
        assert_eq!(d.get_u32("t").unwrap(), 1234);
        assert_eq!(d.get_u64("t").unwrap(), u64::MAX);
        assert_eq!(d.get_i64("t").unwrap(), -5);
        assert_eq!(d.get_str("t").unwrap(), "héllo");
        assert_eq!(d.get_bytes("t").unwrap(), &[1, 2, 3]);
        assert!(d.is_exhausted());
    }

    #[test]
    fn eof_errors() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(
            d.get_u64("len"),
            Err(TypeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_value_tag() {
        let mut d = Decoder::new(&[99]);
        assert!(matches!(d.get_value(), Err(TypeError::BadTag { .. })));
    }

    #[test]
    fn truncated_string() {
        let mut e = Encoder::new();
        e.put_str("hello world");
        let mut buf = e.finish();
        buf.truncate(6);
        let mut d = Decoder::new(&buf);
        assert!(d.get_str("s").is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<i64>().prop_map(Value::Decimal),
            ".{0,40}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
            any::<u64>().prop_map(Value::Timestamp),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        ]
    }

    proptest! {
        #[test]
        fn value_roundtrip(v in arb_value()) {
            let mut e = Encoder::new();
            e.put_value(&v);
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            prop_assert_eq!(d.get_value().unwrap(), v);
            prop_assert!(d.is_exhausted());
        }

        #[test]
        fn values_roundtrip(vs in proptest::collection::vec(arb_value(), 0..20)) {
            let mut e = Encoder::new();
            e.put_values(&vs);
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            prop_assert_eq!(d.get_values().unwrap(), vs);
        }

        #[test]
        fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Whatever the input, decoding must return, not panic.
            let mut d = Decoder::new(&bytes);
            let _ = d.get_values();
        }
    }
}
