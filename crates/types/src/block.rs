//! Blocks: header + body, chained by hash.
//!
//! The header (§IV-A, Fig. 3) records `prev_hash`, `height`, `timestamp`,
//! `trans_root` (Merkle root over the body's transactions), the
//! packager's `signature`, and `block_hash` (hash of the header fields).
//! The body is the ordered list of transactions.

use crate::codec::{Codec, Decoder, Encoder};
use crate::error::TypeError;
use crate::tx::{BlockId, Timestamp, Transaction, TxId};
use sebdb_crypto::merkle::MerkleTree;
use sebdb_crypto::sha256::{sha256, Digest};

/// Block header metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Hash of the previous block (all-zero for genesis).
    pub prev_hash: Digest,
    /// Block height; genesis is 0.
    pub height: BlockId,
    /// Packaging time (ms).
    pub timestamp: Timestamp,
    /// Merkle root over the body's transactions.
    pub trans_root: Digest,
    /// Signature of the packager over the other header fields.
    pub signature: Vec<u8>,
    /// Hash of this header (computed, then pinned).
    pub block_hash: Digest,
}

impl BlockHeader {
    /// Canonical bytes the packager signs and `block_hash` commits to
    /// (everything except `signature` and `block_hash` themselves).
    pub fn signing_payload(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(96);
        enc.put_raw(self.prev_hash.as_bytes());
        enc.put_u64(self.height);
        enc.put_u64(self.timestamp);
        enc.put_raw(self.trans_root.as_bytes());
        enc.finish()
    }

    /// Recomputes the header hash. The hash covers the payload only
    /// (prev hash, height, timestamp, Merkle root) — *not* the packager
    /// signature — so every node sealing the same ordered batch derives
    /// the same block hash even though each holds its own signature.
    pub fn compute_hash(&self) -> Digest {
        sha256(&self.signing_payload())
    }
}

impl Codec for BlockHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(self.prev_hash.as_bytes());
        enc.put_u64(self.height);
        enc.put_u64(self.timestamp);
        enc.put_raw(self.trans_root.as_bytes());
        enc.put_bytes(&self.signature);
        enc.put_raw(self.block_hash.as_bytes());
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, TypeError> {
        let digest = |d: &mut Decoder<'_>, ctx| -> Result<Digest, TypeError> {
            let raw = d.get_raw(32, ctx)?;
            let mut out = [0u8; 32];
            out.copy_from_slice(raw);
            Ok(Digest(out))
        };
        let prev_hash = digest(dec, "prev_hash")?;
        let height = dec.get_u64("height")?;
        let timestamp = dec.get_u64("timestamp")?;
        let trans_root = digest(dec, "trans_root")?;
        let signature = dec.get_bytes("block signature")?.to_vec();
        let block_hash = digest(dec, "block_hash")?;
        Ok(BlockHeader {
            prev_hash,
            height,
            timestamp,
            trans_root,
            signature,
            block_hash,
        })
    }
}

/// A full block: header plus ordered transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The body.
    pub transactions: Vec<Transaction>,
}

/// Encodes each transaction to its canonical bytes (the Merkle
/// leaves), fanning out across workers for large bodies.
fn encode_tx_leaves(transactions: &[Transaction]) -> Vec<Vec<u8>> {
    sebdb_parallel::par_map(transactions, 32, |t| t.to_bytes())
}

impl Block {
    /// Seals a block: assigns the Merkle root, links to `prev_hash`, and
    /// computes the block hash. `sign` produces the packager signature
    /// over the header payload.
    pub fn seal(
        prev_hash: Digest,
        height: BlockId,
        timestamp: Timestamp,
        transactions: Vec<Transaction>,
        sign: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Block {
        let leaves = encode_tx_leaves(&transactions);
        let trans_root = sebdb_crypto::merkle::merkle_root(&leaves);
        let mut header = BlockHeader {
            prev_hash,
            height,
            timestamp,
            trans_root,
            signature: Vec::new(),
            block_hash: Digest::ZERO,
        };
        header.signature = sign(&header.signing_payload());
        header.block_hash = header.compute_hash();
        Block {
            header,
            transactions,
        }
    }

    /// Verifies internal consistency: the Merkle root matches the body
    /// and the block hash matches the header.
    pub fn verify_integrity(&self) -> bool {
        let leaves = encode_tx_leaves(&self.transactions);
        sebdb_crypto::merkle::merkle_root(&leaves) == self.header.trans_root
            && self.header.compute_hash() == self.header.block_hash
    }

    /// Builds the full Merkle tree over the body (for membership proofs
    /// and the basic thin-client verification path).
    pub fn merkle_tree(&self) -> MerkleTree {
        MerkleTree::from_leaves(&encode_tx_leaves(&self.transactions))
    }

    /// The id of the first transaction in the block, if any. Together
    /// with `(height, timestamp)` this forms the block-level index key
    /// `(bid, tid, Ts)` of §IV-B.
    pub fn first_tid(&self) -> Option<TxId> {
        self.transactions.first().map(|t| t.tid)
    }

    /// Serialized size of the block in bytes.
    pub fn byte_len(&self) -> usize {
        self.to_bytes().len()
    }
}

impl Codec for Block {
    fn encode(&self, enc: &mut Encoder) {
        self.header.encode(enc);
        enc.put_u32(self.transactions.len() as u32);
        for tx in &self.transactions {
            tx.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, TypeError> {
        let header = BlockHeader::decode(dec)?;
        let n = dec.get_u32("tx count")? as usize;
        let mut transactions = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            transactions.push(Transaction::decode(dec)?);
        }
        Ok(Block {
            header,
            transactions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use sebdb_crypto::sig::KeyId;

    fn tx(tid: TxId, tname: &str) -> Transaction {
        let mut t = Transaction::new(tid * 10, KeyId([0; 8]), tname, vec![Value::Int(tid as i64)]);
        t.tid = tid;
        t
    }

    fn sealed(height: BlockId, prev: Digest, txs: Vec<Transaction>) -> Block {
        Block::seal(prev, height, height * 1000, txs, |payload| {
            // A stand-in packager signature for unit tests.
            sha256(payload).as_bytes().to_vec()
        })
    }

    #[test]
    fn seal_produces_consistent_block() {
        let b = sealed(1, Digest::ZERO, vec![tx(1, "donate"), tx(2, "transfer")]);
        assert!(b.verify_integrity());
        assert_eq!(b.first_tid(), Some(1));
        assert_eq!(b.header.height, 1);
    }

    #[test]
    fn tampering_with_body_breaks_integrity() {
        let mut b = sealed(1, Digest::ZERO, vec![tx(1, "donate"), tx(2, "transfer")]);
        b.transactions[0].values[0] = Value::Int(999);
        assert!(!b.verify_integrity());
    }

    #[test]
    fn tampering_with_header_breaks_integrity() {
        let mut b = sealed(1, Digest::ZERO, vec![tx(1, "donate")]);
        b.header.timestamp += 1;
        assert!(!b.verify_integrity());
    }

    #[test]
    fn codec_roundtrip() {
        let b = sealed(
            3,
            sha256(b"prev"),
            vec![tx(5, "donate"), tx(6, "distribute")],
        );
        let decoded = Block::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(decoded, b);
        assert!(decoded.verify_integrity());
    }

    #[test]
    fn empty_block_is_valid() {
        let b = sealed(0, Digest::ZERO, vec![]);
        assert!(b.verify_integrity());
        assert_eq!(b.first_tid(), None);
        assert_eq!(b.header.trans_root, Digest::ZERO);
    }

    #[test]
    fn merkle_tree_proofs_work() {
        let b = sealed(1, Digest::ZERO, (0..7).map(|i| tx(i, "donate")).collect());
        let tree = b.merkle_tree();
        assert_eq!(tree.root(), b.header.trans_root);
        let proof = tree.proof(3).unwrap();
        assert!(MerkleTree::verify(
            &b.header.trans_root,
            &b.transactions[3].to_bytes(),
            &proof
        ));
    }

    #[test]
    fn chain_linkage() {
        let b0 = sealed(0, Digest::ZERO, vec![tx(1, "donate")]);
        let b1 = sealed(1, b0.header.block_hash, vec![tx(2, "donate")]);
        assert_eq!(b1.header.prev_hash, b0.header.block_hash);
        assert_ne!(b0.header.block_hash, b1.header.block_hash);
    }
}
