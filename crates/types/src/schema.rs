//! Table schemas: relational semantics for transaction types.
//!
//! Each transaction type is a table (§III-A). A schema has
//! *application-level* columns declared by the user in `CREATE`, plus
//! *system-level* columns added automatically: `tid`, `ts`, `sig`,
//! `sen_id`, `tname` (§IV-A). Queries may reference either kind;
//! tracking queries (Algorithm 1) filter on the system columns `sen_id`
//! and `tname`.

use crate::codec::{Codec, Decoder, Encoder};
use crate::error::TypeError;
use crate::value::{DataType, Value};

/// Names of the system-level columns, in their fixed order.
pub const SYSTEM_COLUMNS: [&str; 5] = ["tid", "ts", "sig", "sen_id", "tname"];

/// A column reference resolved against a schema: either a system column
/// or the `i`-th application column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnRef {
    /// Transaction id (system).
    Tid,
    /// Transaction timestamp (system).
    Ts,
    /// Signature (system).
    Sig,
    /// Sender identity (system).
    SenId,
    /// Transaction type name (system).
    Tname,
    /// Application-level column by position.
    App(usize),
}

impl ColumnRef {
    /// The data type of this column under `schema`.
    pub fn data_type(&self, schema: &TableSchema) -> DataType {
        match self {
            ColumnRef::Tid => DataType::Int,
            ColumnRef::Ts => DataType::Timestamp,
            ColumnRef::Sig => DataType::Bytes,
            ColumnRef::SenId => DataType::Bytes,
            ColumnRef::Tname => DataType::Str,
            ColumnRef::App(i) => schema.columns[*i].dtype,
        }
    }
}

/// One application-level column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-insensitive for lookup, stored as declared).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// The schema of one transaction type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table (= transaction type) name.
    pub name: String,
    /// Application-level columns, in declared order.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Creates a schema.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Resolves a column name (system or application) to a [`ColumnRef`].
    pub fn resolve(&self, name: &str) -> Result<ColumnRef, TypeError> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "tid" => return Ok(ColumnRef::Tid),
            "ts" | "timestamp" => return Ok(ColumnRef::Ts),
            "sig" | "signature" => return Ok(ColumnRef::Sig),
            "sen_id" | "senid" | "sender" | "operator" => return Ok(ColumnRef::SenId),
            "tname" | "operation" => return Ok(ColumnRef::Tname),
            _ => {}
        }
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .map(ColumnRef::App)
            .ok_or_else(|| TypeError::NoSuchColumn {
                column: name.to_owned(),
            })
    }

    /// Position of an application column by name.
    pub fn app_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Validates a row of application values against this schema and
    /// coerces literals to the declared column types.
    pub fn check_row(&self, values: Vec<Value>) -> Result<Vec<Value>, TypeError> {
        if values.len() != self.columns.len() {
            return Err(TypeError::SchemaMismatch {
                detail: format!(
                    "table {} expects {} values, got {}",
                    self.name,
                    self.columns.len(),
                    values.len()
                ),
            });
        }
        values
            .into_iter()
            .zip(&self.columns)
            .map(|(v, c)| v.coerce(c.dtype))
            .collect()
    }

    /// Renders the schema as a `CREATE` statement.
    pub fn to_sql(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{} {}", c.name, c.dtype.keyword()))
            .collect();
        format!("CREATE {} ({})", self.name, cols.join(", "))
    }

    /// All column names a `SELECT *` projects: system columns then
    /// application columns.
    pub fn full_column_names(&self) -> Vec<String> {
        SYSTEM_COLUMNS
            .iter()
            .map(|s| (*s).to_owned())
            .chain(self.columns.iter().map(|c| c.name.clone()))
            .collect()
    }
}

impl Codec for TableSchema {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_u32(self.columns.len() as u32);
        for c in &self.columns {
            enc.put_str(&c.name);
            enc.put_u8(match c.dtype {
                DataType::Int => 0,
                DataType::Decimal => 1,
                DataType::Str => 2,
                DataType::Bool => 3,
                DataType::Timestamp => 4,
                DataType::Bytes => 5,
            });
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, TypeError> {
        let name = dec.get_str("schema name")?.to_owned();
        let n = dec.get_u32("column count")? as usize;
        let mut columns = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let cname = dec.get_str("column name")?.to_owned();
            let dtype = match dec.get_u8("column type")? {
                0 => DataType::Int,
                1 => DataType::Decimal,
                2 => DataType::Str,
                3 => DataType::Bool,
                4 => DataType::Timestamp,
                5 => DataType::Bytes,
                tag => {
                    return Err(TypeError::BadTag {
                        context: "column type",
                        tag,
                    })
                }
            };
            columns.push(Column { name: cname, dtype });
        }
        Ok(TableSchema { name, columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn donate() -> TableSchema {
        TableSchema::new(
            "donate",
            vec![
                Column::new("donor", DataType::Str),
                Column::new("project", DataType::Str),
                Column::new("amount", DataType::Decimal),
            ],
        )
    }

    #[test]
    fn resolve_system_and_app_columns() {
        let s = donate();
        assert_eq!(s.resolve("tid").unwrap(), ColumnRef::Tid);
        assert_eq!(s.resolve("SENDER").unwrap(), ColumnRef::SenId);
        assert_eq!(s.resolve("operation").unwrap(), ColumnRef::Tname);
        assert_eq!(s.resolve("amount").unwrap(), ColumnRef::App(2));
        assert_eq!(s.resolve("Donor").unwrap(), ColumnRef::App(0));
        assert!(s.resolve("missing").is_err());
    }

    #[test]
    fn column_ref_types() {
        let s = donate();
        assert_eq!(ColumnRef::Ts.data_type(&s), DataType::Timestamp);
        assert_eq!(ColumnRef::App(2).data_type(&s), DataType::Decimal);
    }

    #[test]
    fn check_row_validates_and_coerces() {
        let s = donate();
        let row = s
            .check_row(vec![
                Value::str("Jack"),
                Value::str("Education"),
                Value::Int(100),
            ])
            .unwrap();
        assert_eq!(row[2], Value::decimal(100));

        assert!(s.check_row(vec![Value::str("Jack")]).is_err());
        assert!(s
            .check_row(vec![Value::Int(1), Value::str("p"), Value::Int(1)])
            .is_err());
    }

    #[test]
    fn schema_codec_roundtrip() {
        let s = donate();
        let decoded = TableSchema::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn to_sql_rendering() {
        assert_eq!(
            donate().to_sql(),
            "CREATE donate (donor string, project string, amount decimal)"
        );
    }

    #[test]
    fn full_column_names_order() {
        let names = donate().full_column_names();
        assert_eq!(
            names,
            vec!["tid", "ts", "sig", "sen_id", "tname", "donor", "project", "amount"]
        );
    }
}
