//! Model-based testing for the LRU cache: behaviour must match a naive
//! reference (ordered Vec) for any operation sequence, and the byte
//! budget must never be exceeded.

use proptest::prelude::*;
use sebdb_storage::Lru;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u32, usize),
    Get(u8),
}

/// Naive reference: most-recent first.
#[derive(Default)]
struct Model {
    entries: Vec<(u8, u32, usize)>, // key, value, size
    cap: usize,
}

impl Model {
    fn put(&mut self, k: u8, v: u32, size: usize) {
        if size > self.cap {
            return;
        }
        self.entries.retain(|(key, _, _)| *key != k);
        self.entries.insert(0, (k, v, size));
        while self.bytes() > self.cap {
            self.entries.pop();
        }
    }

    fn get(&mut self, k: u8) -> Option<u32> {
        let pos = self.entries.iter().position(|(key, _, _)| *key == k)?;
        let e = self.entries.remove(pos);
        let v = e.1;
        self.entries.insert(0, e);
        Some(v)
    }

    fn bytes(&self) -> usize {
        self.entries.iter().map(|(_, _, s)| s).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_matches_reference(
        cap in 10usize..200,
        ops in proptest::collection::vec(
            prop_oneof![
                (any::<u8>(), any::<u32>(), 1usize..60).prop_map(|(k, v, s)| Op::Put(k, v, s)),
                any::<u8>().prop_map(Op::Get),
            ],
            0..200,
        ),
    ) {
        let mut lru: Lru<u8, u32> = Lru::new(cap);
        let mut model = Model { cap, ..Default::default() };
        for op in ops {
            match op {
                Op::Put(k, v, s) => {
                    lru.put(k, v, s);
                    model.put(k, v, s);
                }
                Op::Get(k) => {
                    let got = lru.get(&k).copied();
                    let want = model.get(k);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert!(lru.bytes() <= cap, "budget exceeded: {} > {}", lru.bytes(), cap);
            prop_assert_eq!(lru.bytes(), model.bytes());
            prop_assert_eq!(lru.len(), model.entries.len());
        }
        // Final contents agree.
        for (k, v, _) in &model.entries {
            prop_assert_eq!(lru.peek(k), Some(v));
        }
    }
}
