//! Equivalence and accounting contracts for the coalesced read path.
//!
//! The coalescing/span optimizations must be invisible to callers:
//! grouped reads return byte-identical transactions vs one-by-one
//! `read_tx` across every `CacheMode`, whether the worker pool is
//! sequential (`SEBDB_THREADS=1`) or parallel, and whether the chain
//! carries an on-disk transaction offset table or was written by the
//! old manifest-only format (reconstruction on open). The `IoStats`
//! bytes counter pins tuple reads to tuple granularity on both
//! backends.

use sebdb_crypto::sha256::Digest;
use sebdb_storage::{BlockCache, BlockStore, CacheMode, CachedStore, StoreConfig, TxCache, TxPtr};
use sebdb_types::{Block, Codec, Transaction, Value};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes tests that flip the process-global worker-pool size.
fn threads_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn block(height: u64, ntx: usize) -> Block {
    let txs = (0..ntx)
        .map(|i| {
            let mut t = Transaction::new(
                height * 1000 + i as u64,
                sebdb_crypto::sig::KeyId([1; 8]),
                "donate",
                vec![
                    Value::Int((height * 31 + i as u64) as i64),
                    Value::Str(format!("payload-{height}-{i}")),
                ],
            );
            t.tid = height * 100 + i as u64;
            t
        })
        .collect();
    Block::seal(Digest::ZERO, height, height, txs, |_| vec![0u8; 4])
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sebdb-readeq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn build_chain(store: &BlockStore, nblocks: u64, ntx: usize) {
    for h in 0..nblocks {
        store.append(&block(h, ntx)).unwrap();
    }
}

/// A pointer workload mixing duplicates, same-block clusters (which
/// coalesce into span preads), and cross-block jumps.
fn workload(nblocks: u64, ntx: usize) -> Vec<TxPtr> {
    let mut ptrs = Vec::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    for _ in 0..64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let block = (state >> 33) % nblocks;
        let index = ((state >> 17) % ntx as u64) as u32;
        ptrs.push(TxPtr { block, index });
    }
    // Explicit duplicates and a dense same-block cluster.
    ptrs.push(TxPtr { block: 0, index: 0 });
    ptrs.push(TxPtr { block: 0, index: 0 });
    for i in 0..ntx as u32 {
        ptrs.push(TxPtr { block: 1, index: i });
    }
    ptrs
}

fn mode(name: &str) -> CacheMode {
    match name {
        "none" => CacheMode::None,
        "block" => CacheMode::Block(BlockCache::new(1 << 20)),
        "tx" => CacheMode::Tx(TxCache::new(1 << 20)),
        _ => unreachable!(),
    }
}

/// Grouped reads must be byte-identical to pointwise reads in every
/// cache mode and at every pool size.
fn assert_equivalence(store: Arc<BlockStore>, nblocks: u64, ntx: usize) {
    let ptrs = workload(nblocks, ntx);
    for threads in [1usize, 4] {
        sebdb_parallel::set_max_threads(threads);
        for m in ["none", "block", "tx"] {
            let pointwise = CachedStore::new(Arc::clone(&store), mode(m));
            let expected: Vec<Vec<u8>> = ptrs
                .iter()
                .map(|&p| pointwise.read_tx(p).unwrap().to_bytes())
                .collect();
            let grouped = CachedStore::new(Arc::clone(&store), mode(m));
            let got = grouped.read_txs_grouped(&ptrs).unwrap();
            assert_eq!(got.len(), ptrs.len());
            for (i, (tx, want)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(
                    &tx.to_bytes(),
                    want,
                    "mode {m}, {threads} thread(s): ptr {i} ({:?}) differs",
                    ptrs[i]
                );
            }
        }
    }
}

#[test]
fn grouped_reads_byte_identical_on_disk() {
    let _guard = threads_lock().lock().unwrap();
    let dir = tmpdir("disk");
    let store = BlockStore::open(
        &dir,
        StoreConfig {
            segment_size: 4096,
            sync_writes: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    build_chain(&store, 6, 8);
    assert_equivalence(Arc::new(store), 6, 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grouped_reads_byte_identical_in_memory() {
    let _guard = threads_lock().lock().unwrap();
    let store = BlockStore::in_memory();
    build_chain(&store, 6, 8);
    assert_equivalence(Arc::new(store), 6, 8);
}

/// Every per-partition offset-table file in `dir` (the tests tear or
/// delete these to exercise reconstruction on open).
fn partition_offset_tables(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    for p in 0..sebdb_storage::RELATION_PARTITIONS {
        let path = dir.join(format!("part-{p}")).join("txoffsets.idx");
        if path.exists() {
            found.push(path);
        }
    }
    found
}

/// A chain whose per-partition offset-table files are missing (written
/// by the manifest-only era, or lost) opens via full reconstruction
/// from the chain records' routes and serves identical reads.
#[test]
fn old_format_chain_reconstructs_offset_table() {
    let _guard = threads_lock().lock().unwrap();
    let dir = tmpdir("oldfmt");
    {
        let store = BlockStore::open(&dir, StoreConfig::default()).unwrap();
        build_chain(&store, 5, 6);
    }
    // Simulate a pre-offset-table chain: delete every table outright.
    let tables = partition_offset_tables(&dir);
    assert!(!tables.is_empty(), "chain wrote no offset tables");
    for path in tables {
        std::fs::remove_file(path).unwrap();
    }
    let store = BlockStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.height(), 5);
    assert_equivalence(Arc::new(store), 5, 6);
    // Reconstruction rewrote the table: a third open must not need to
    // re-read any block to serve tuple reads.
    let store = BlockStore::open(&dir, StoreConfig::default()).unwrap();
    store.stats.reset();
    let tx = store.read_tx_direct(TxPtr { block: 2, index: 3 }).unwrap();
    assert_eq!(tx.tid, 203);
    let (blocks_read, _, _) = store.stats.snapshot();
    assert_eq!(blocks_read, 0, "tuple read must not touch whole blocks");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn trailing offset-table record (crash mid-append) heals on
/// open: the damaged tail is truncated and reconstructed.
#[test]
fn torn_offset_table_tail_heals_on_open() {
    let _guard = threads_lock().lock().unwrap();
    let dir = tmpdir("torn");
    {
        let store = BlockStore::open(&dir, StoreConfig::default()).unwrap();
        build_chain(&store, 4, 5);
    }
    // All tuples route to one relation partition; tear its table (the
    // other partitions' tables exist but are empty).
    let mut torn = 0;
    for path in partition_offset_tables(&dir) {
        let len = std::fs::metadata(&path).unwrap().len();
        if len < 8 {
            continue;
        }
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 7).unwrap(); // tear mid-record
        drop(f);
        torn += 1;
    }
    assert!(torn > 0, "chain wrote no non-empty offset tables");
    let store = BlockStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.height(), 4);
    assert_equivalence(Arc::new(store), 4, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: a tuple-granular point lookup reads at most
/// tuple-size + a small fixed header worth of bytes — not the whole
/// block — on both backends.
#[test]
fn tuple_reads_are_tuple_granular_in_bytes() {
    let check = |store: BlockStore, label: &str| {
        build_chain(&store, 3, 6);
        let ptr = TxPtr { block: 1, index: 2 };
        let tuple_len = {
            let b = store.read(ptr.block).unwrap();
            b.transactions[ptr.index as usize].to_bytes().len() as u64
        };
        let block_len = store.block_size(ptr.block).unwrap() as u64;
        store.stats.reset();
        let tx = store.read_tx_direct(ptr).unwrap();
        assert_eq!(tx.tid, 102);
        let read = store.stats.bytes_read();
        assert!(
            read <= tuple_len + 16,
            "{label}: tuple read transferred {read} bytes for a {tuple_len}-byte tuple"
        );
        assert!(
            read < block_len,
            "{label}: tuple read degraded to block granularity"
        );
        let (blocks_read, _, txs_read) = store.stats.snapshot();
        assert_eq!(blocks_read, 0, "{label}: tuple read counted a block read");
        assert_eq!(txs_read, 1);
    };
    let dir = tmpdir("granular");
    check(
        BlockStore::open(&dir, StoreConfig::default()).unwrap(),
        "disk",
    );
    check(BlockStore::in_memory(), "memory");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `read_span` (the readahead primitive) returns the same blocks as
/// one-by-one reads, and `CachedStore::read_blocks_span` preserves
/// request order with and without a block cache.
#[test]
fn span_reads_match_pointwise_block_reads() {
    let dir = tmpdir("span");
    let store = BlockStore::open(
        &dir,
        StoreConfig {
            segment_size: 2048,
            sync_writes: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    build_chain(&store, 8, 4);
    let store = Arc::new(store);
    for m in ["none", "block"] {
        let cached = CachedStore::new(Arc::clone(&store), mode(m));
        let bids: Vec<u64> = vec![0, 1, 2, 3, 4, 5, 6, 7, 3, 0];
        let got = cached.read_blocks_span(&bids).unwrap();
        for (&bid, b) in bids.iter().zip(&got) {
            assert_eq!(b.header.height, bid, "mode {m}");
            assert_eq!(
                *b.to_bytes(),
                store.read(bid).unwrap().to_bytes(),
                "mode {m}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
