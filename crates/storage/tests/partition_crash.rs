//! Crash-recovery and migration contracts for the partitioned layout.
//!
//! The chain-order manifest is the commit point of an append: a crash
//! torn at *any* write boundary — a partition extent, a per-partition
//! offsets record, the chain record, or the manifest record itself —
//! must heal on the next open with the store rolled back to the last
//! fully-committed block, and the healed store must keep serving
//! byte-identical blocks and accept new appends. A store written in
//! the pre-partitioning single-sequence (v1) format migrates in place
//! on first open, after which single-relation scans are strictly
//! cheaper in `bytes_read` than the unpartitioned layout.

use sebdb_crypto::sha256::Digest;
use sebdb_storage::{
    partition_of, BlockStore, IndexCheckpoint, SegmentWriter, StoreConfig, WriteStep,
    CHAIN_PARTITION, INDEX_CHECKPOINT_DIR,
};
use sebdb_types::{Block, Codec, Transaction, Value};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sebdb-partcrash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cfg() -> StoreConfig {
    StoreConfig {
        segment_size: 4096,
        sync_writes: false,
        ..StoreConfig::default()
    }
}

/// Table names spanning at least two distinct relation partitions, so
/// every block fans out across several partition writers.
fn spanning_tables() -> Vec<&'static str> {
    let candidates = [
        "donate", "account", "project", "member", "audit", "voting", "pledge", "badge",
    ];
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for c in candidates {
        if seen.insert(partition_of(c)) {
            out.push(c);
        }
        if out.len() == 3 {
            break;
        }
    }
    assert!(out.len() >= 2, "candidate tables all hash to one partition");
    out
}

/// A deterministic multi-relation block: tuples round-robin over
/// `tables`, so rebuilding `block(h, ..)` always yields identical
/// bytes for comparison against what the store serves.
fn block(height: u64, tables: &[&str], ntx: usize) -> Block {
    let txs = (0..ntx)
        .map(|i| {
            let mut t = Transaction::new(
                height * 1000 + i as u64,
                sebdb_crypto::sig::KeyId([1; 8]),
                tables[i % tables.len()],
                vec![
                    Value::Int((height * 31 + i as u64) as i64),
                    Value::Str(format!("row-{height}-{i}")),
                ],
            );
            t.tid = height * 100 + i as u64;
            t
        })
        .collect();
    Block::seal(Digest::ZERO, height, height, txs, |_| vec![0u8; 4])
}

fn assert_chain_identical(store: &BlockStore, tables: &[&str], ntx: usize, upto: u64, ctx: &str) {
    for h in 0..upto {
        assert_eq!(
            store.read(h).unwrap().to_bytes(),
            block(h, tables, ntx).to_bytes(),
            "{ctx}: block {h} differs after heal"
        );
    }
}

/// A crash injected at every write-order boundary of an append — each
/// touched partition's extent write, its offsets-record write, the
/// chain-record write, and the manifest write — fails that append
/// without advancing the height, and a reopen heals the torn on-disk
/// state back to the last committed block.
#[test]
fn crash_at_every_write_boundary_heals_on_reopen() {
    let tables = spanning_tables();
    let ntx = 6;
    let mut touched: Vec<usize> = tables.iter().map(|t| partition_of(t)).collect();
    touched.sort_unstable();
    touched.dedup();
    let mut steps = vec![
        WriteStep::PartitionWrite(CHAIN_PARTITION),
        WriteStep::ManifestWrite,
    ];
    for &p in &touched {
        steps.push(WriteStep::PartitionWrite(p));
        steps.push(WriteStep::OffsetsWrite(p));
    }
    for (si, step) in steps.into_iter().enumerate() {
        let dir = tmpdir(&format!("boundary-{si}"));
        {
            let store = BlockStore::open(&dir, cfg()).unwrap();
            for h in 0..3 {
                store.append(&block(h, &tables, ntx)).unwrap();
            }
            store.set_write_fault(Some(Box::new(move |s| s == step)));
            let err = store.append(&block(3, &tables, ntx)).unwrap_err();
            assert!(
                err.to_string().contains("injected write fault"),
                "{step:?}: unexpected error {err}"
            );
            assert_eq!(
                store.height(),
                3,
                "{step:?}: failed append advanced the height"
            );
        }
        // Restart replay: the torn state (orphan extents, orphan offsets
        // records, or a missing manifest record) truncates away.
        let store = BlockStore::open(&dir, cfg()).unwrap();
        assert_eq!(store.height(), 3, "{step:?}: reopen lost committed blocks");
        for h in 3..5 {
            store.append(&block(h, &tables, ntx)).unwrap();
        }
        assert_chain_identical(&store, &tables, ntx, 5, &format!("{step:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The last segment file under `dir` (the partitions' own directories
/// hold `seg-%05d.dat` files; zero-padding makes the lexical max the
/// physical tail).
fn last_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .map(|e| e.path())
        .collect();
    segs.sort();
    segs.pop().expect("no segment files")
}

/// Seeded negative for write reordering: a manifest record that reached
/// disk *before* its partition data (simulated by truncating a
/// partition or chain segment after a clean shutdown) is torn state —
/// reopen must cut the manifest back to the blocks whose bytes all
/// physically exist, then serve those byte-identically and accept
/// re-appends.
#[test]
fn manifest_ahead_of_partition_data_rolls_back_on_reopen() {
    let tables = spanning_tables();
    let ntx = 6;
    // Every block routes tuples to every chosen table, so tearing the
    // tail of any touched directory damages exactly the last block.
    let mut victims: Vec<PathBuf> = vec![PathBuf::from("chain")];
    for t in &tables {
        victims.push(PathBuf::from(format!("part-{}", partition_of(t))));
    }
    victims.dedup();
    for (vi, victim) in victims.iter().enumerate() {
        let dir = tmpdir(&format!("reorder-{vi}"));
        {
            let store = BlockStore::open(&dir, cfg()).unwrap();
            for h in 0..4 {
                store.append(&block(h, &tables, ntx)).unwrap();
            }
        }
        let seg = last_segment(&dir.join(victim));
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 1).unwrap();
        drop(f);
        let store = BlockStore::open(&dir, cfg()).unwrap();
        assert_eq!(
            store.height(),
            3,
            "{}: manifest must roll back past the torn extent",
            victim.display()
        );
        assert_chain_identical(&store, &tables, ntx, 3, &victim.display().to_string());
        store.append(&block(3, &tables, ntx)).unwrap();
        assert_chain_identical(&store, &tables, ntx, 4, &victim.display().to_string());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Hand-writes a chain in the single-sequence v1 format: root-level
/// segment files holding whole-block encodings, indexed by a root
/// `manifest.idx` of `bid(8) seg(4) off(8) len(4)` records.
fn write_v1_store(dir: &Path, blocks: &[Block]) {
    std::fs::create_dir_all(dir).unwrap();
    let mut w = SegmentWriter::open(dir, 4096, None).unwrap();
    let mut manifest = Vec::new();
    for (bid, b) in blocks.iter().enumerate() {
        let loc = w.append(&b.to_bytes()).unwrap();
        manifest.extend_from_slice(&(bid as u64).to_le_bytes());
        manifest.extend_from_slice(&loc.segment.to_le_bytes());
        manifest.extend_from_slice(&loc.offset.to_le_bytes());
        manifest.extend_from_slice(&loc.len.to_le_bytes());
    }
    w.sync().unwrap();
    std::fs::write(dir.join("manifest.idx"), &manifest).unwrap();
}

/// Opening a v1 store migrates it in place: same blocks byte for byte,
/// v1 root files gone, second open skips the migration, and the
/// migrated layout's single-relation scans undercut the unpartitioned
/// baseline in `bytes_read`.
#[test]
fn v1_single_sequence_store_migrates_on_open() {
    let tables = spanning_tables();
    let ntx = 6;
    let nblocks = 5u64;
    let blocks: Vec<Block> = (0..nblocks).map(|h| block(h, &tables, ntx)).collect();
    let dir = tmpdir("migrate");
    write_v1_store(&dir, &blocks);

    let store = BlockStore::open(&dir, cfg()).unwrap();
    assert_eq!(store.height(), nblocks);
    assert_chain_identical(&store, &tables, ntx, nblocks, "migrated");
    assert!(
        !dir.join("manifest.idx").exists(),
        "v1 manifest must be removed after migration"
    );
    let root_segs = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-") && e.path().is_file())
        .count();
    assert_eq!(root_segs, 0, "v1 root segment files must be removed");
    drop(store);

    // Second open: plain v2 open, nothing left to migrate, and the
    // store still appends.
    let store = BlockStore::open(&dir, cfg()).unwrap();
    assert_eq!(store.height(), nblocks);
    store.append(&block(nblocks, &tables, ntx)).unwrap();
    assert_chain_identical(&store, &tables, ntx, nblocks + 1, "reopened");

    // The migration bought relation-granular reads: scanning one table
    // moves strictly fewer bytes than the same scan on an equivalent
    // unpartitioned (partitions = 1) store.
    let flat_dir = tmpdir("migrate-flat");
    let flat = BlockStore::open(
        &flat_dir,
        StoreConfig {
            partitions: 1,
            ..cfg()
        },
    )
    .unwrap();
    for b in &blocks {
        flat.append(b).unwrap();
    }
    flat.append(&block(nblocks, &tables, ntx)).unwrap();
    let bids: Vec<u64> = (0..=nblocks).collect();
    store.stats.reset();
    let part_rows = store.read_relation_txs(&bids, tables[0]).unwrap();
    let part_bytes = store.stats.bytes_read();
    flat.stats.reset();
    let flat_rows = flat.read_relation_txs(&bids, tables[0]).unwrap();
    let flat_bytes = flat.stats.bytes_read();
    assert_eq!(
        rows_digest(&part_rows, tables[0]),
        rows_digest(&flat_rows, tables[0])
    );
    assert!(
        part_bytes < flat_bytes,
        "migrated relation scan read {part_bytes} bytes, unpartitioned baseline {flat_bytes}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&flat_dir);
}

/// A deterministic multi-block index checkpoint: enough distinct
/// entries that the level-1 body spans several 4 KiB index blocks, so
/// the per-block fault steps actually fire mid-file.
fn index_cp(height: u64, entries: usize) -> IndexCheckpoint {
    IndexCheckpoint {
        family: b"crashtest".to_vec(),
        height,
        meta: vec![0xAB; 16],
        entries: (0..entries)
            .map(|i| {
                (
                    format!("key-{i:08}").into_bytes(),
                    format!("value-{height}-{i:08}-{}", "x".repeat(64)).into_bytes(),
                )
            })
            .collect(),
    }
}

fn assert_checkpoint_serves(store: &BlockStore, height: u64, entries: usize, ctx: &str) {
    let r = store
        .load_index_checkpoint(b"crashtest")
        .unwrap()
        .unwrap_or_else(|| panic!("{ctx}: committed checkpoint vanished"));
    assert_eq!(r.height(), height, "{ctx}: wrong committed height");
    assert_eq!(r.entry_count(), entries as u64, "{ctx}: wrong entry count");
    let probe = format!("key-{:08}", entries / 2).into_bytes();
    let got = r.get(&probe).unwrap().unwrap_or_else(|| {
        panic!("{ctx}: committed checkpoint lost an entry");
    });
    assert_eq!(
        got,
        format!("value-{height}-{:08}-{}", entries / 2, "x".repeat(64)).into_bytes(),
        "{ctx}: committed checkpoint serves wrong bytes"
    );
}

/// The index-checkpoint fault ladder: a crash at *every* checkpoint
/// write boundary — each level-1 index-block write, the fence/footer
/// tail write, and the publishing rename — must leave the previously
/// committed checkpoint intact and serving byte-identical entries, and
/// a reopen must sweep the torn `.tmp` and accept a retried publish.
#[test]
fn crash_at_every_index_checkpoint_boundary_heals_on_reopen() {
    let tables = spanning_tables();
    let ntx = 6;
    let steps = [
        WriteStep::IndexBlockWrite(0),
        WriteStep::IndexBlockWrite(1),
        WriteStep::IndexFenceWrite,
        WriteStep::IndexPublish,
    ];
    for (si, step) in steps.into_iter().enumerate() {
        let dir = tmpdir(&format!("ixcp-{si}"));
        {
            let store = BlockStore::open(&dir, cfg()).unwrap();
            for h in 0..4 {
                store.append(&block(h, &tables, ntx)).unwrap();
            }
            // Commit a first checkpoint, then tear the upgrade to a
            // taller one at this boundary.
            store.write_index_checkpoint(&index_cp(3, 200)).unwrap();
            store.set_write_fault(Some(Box::new(move |s| s == step)));
            let err = store.write_index_checkpoint(&index_cp(4, 260)).unwrap_err();
            assert!(
                err.to_string().contains("injected write fault"),
                "{step:?}: unexpected error {err}"
            );
            store.set_write_fault(None);
            // The torn write never reached the commit point: the
            // previous checkpoint still serves, byte-identically.
            assert_checkpoint_serves(&store, 3, 200, &format!("{step:?} pre-reopen"));
        }
        // Reopen: the `.tmp` orphan sweeps away, the committed file
        // still serves, and a retried publish supersedes it.
        let store = BlockStore::open(&dir, cfg()).unwrap();
        let cp_dir = dir.join(INDEX_CHECKPOINT_DIR);
        let tmps = std::fs::read_dir(&cp_dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 0, "{step:?}: torn .tmp survived the reopen sweep");
        assert_checkpoint_serves(&store, 3, 200, &format!("{step:?} post-reopen"));
        store.write_index_checkpoint(&index_cp(4, 260)).unwrap();
        assert_checkpoint_serves(&store, 4, 260, &format!("{step:?} retried"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Longest-valid-prefix discipline for checkpoints vs the manifest: a
/// checkpoint committed at height 4 whose chain is later rolled back
/// to height 3 (torn tail extent) is *stale* — the reopen must discard
/// it and report `None`, sending the ledger back to a full replay that
/// reconstructs the same state. Corrupt checkpoint bytes heal the same
/// way.
#[test]
fn stale_or_corrupt_index_checkpoint_is_discarded_on_open() {
    let tables = spanning_tables();
    let ntx = 6;
    // Stale: checkpoint height outruns the rolled-back manifest.
    let dir = tmpdir("ixcp-stale");
    {
        let store = BlockStore::open(&dir, cfg()).unwrap();
        for h in 0..4 {
            store.append(&block(h, &tables, ntx)).unwrap();
        }
        store.write_index_checkpoint(&index_cp(4, 120)).unwrap();
    }
    let seg = last_segment(&dir.join("chain"));
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 1).unwrap();
    drop(f);
    let store = BlockStore::open(&dir, cfg()).unwrap();
    assert_eq!(store.height(), 3, "torn chain tail must roll back");
    assert!(
        store.load_index_checkpoint(b"crashtest").unwrap().is_none(),
        "checkpoint ahead of the manifest must be discarded"
    );
    let cp_file = dir
        .join(INDEX_CHECKPOINT_DIR)
        .join(sebdb_storage::indexseg::checkpoint_file_name(b"crashtest"));
    assert!(!cp_file.exists(), "stale checkpoint file must be deleted");
    // A replacement at the healed height publishes cleanly.
    store.write_index_checkpoint(&index_cp(3, 90)).unwrap();
    assert_checkpoint_serves(&store, 3, 90, "post-rollback republish");
    let _ = std::fs::remove_dir_all(&dir);

    // Corrupt: flipped bytes inside the committed file fail the tail
    // checksum and the file is discarded, not served.
    let dir = tmpdir("ixcp-corrupt");
    let store = BlockStore::open(&dir, cfg()).unwrap();
    for h in 0..3 {
        store.append(&block(h, &tables, ntx)).unwrap();
    }
    store.write_index_checkpoint(&index_cp(3, 120)).unwrap();
    let cp_file = dir
        .join(INDEX_CHECKPOINT_DIR)
        .join(sebdb_storage::indexseg::checkpoint_file_name(b"crashtest"));
    let mut bytes = std::fs::read(&cp_file).unwrap();
    // Flip a footer byte: the open-time validation checksums the
    // fence/meta/footer tail (level-1 bodies carry their own per-block
    // checksums, verified on load), so tail rot must fail the open.
    let victim = bytes.len() - 20;
    bytes[victim] ^= 0xFF;
    std::fs::write(&cp_file, &bytes).unwrap();
    assert!(
        store.load_index_checkpoint(b"crashtest").unwrap().is_none(),
        "corrupt checkpoint must be discarded, not served"
    );
    assert!(!cp_file.exists(), "corrupt checkpoint file must be deleted");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `read_relation_txs` returns every tuple co-located in the table's
/// partition (callers filter by name, as the executor does) — so
/// cross-layout comparisons must apply that filter too.
fn rows_digest(rows: &[Vec<(u32, Transaction)>], table: &str) -> Vec<Vec<(u32, Vec<u8>)>> {
    rows.iter()
        .map(|b| {
            b.iter()
                .filter(|(_, t)| t.tname.eq_ignore_ascii_case(table))
                .map(|(c, t)| (*c, t.to_bytes()))
                .collect()
        })
        .collect()
}

/// The acceptance bound: on a multi-relation chain, a single-relation
/// scan over the partitioned layout reads strictly fewer bytes than
/// (a) the same scan on the unpartitioned layout and (b) a full block
/// scan on the partitioned layout — for every relation in the chain.
#[test]
fn relation_scan_reads_strictly_fewer_bytes_than_unpartitioned() {
    let tables = spanning_tables();
    let ntx = 9;
    let nblocks = 8u64;
    let dir8 = tmpdir("bytes-p8");
    let dir1 = tmpdir("bytes-p1");
    let part = BlockStore::open(&dir8, cfg()).unwrap();
    let flat = BlockStore::open(
        &dir1,
        StoreConfig {
            partitions: 1,
            ..cfg()
        },
    )
    .unwrap();
    assert!(part.partitions() > 1, "default partition count collapsed");
    assert_eq!(flat.partitions(), 1);
    for h in 0..nblocks {
        let b = block(h, &tables, ntx);
        part.append(&b).unwrap();
        flat.append(&b).unwrap();
    }
    let bids: Vec<u64> = (0..nblocks).collect();
    part.stats.reset();
    let full = part.read_span(0, nblocks as usize).unwrap();
    assert_eq!(full.len(), nblocks as usize);
    let full_bytes = part.stats.bytes_read();
    for table in &tables {
        part.stats.reset();
        let part_rows = part.read_relation_txs(&bids, table).unwrap();
        let part_bytes = part.stats.bytes_read();
        flat.stats.reset();
        let flat_rows = flat.read_relation_txs(&bids, table).unwrap();
        let flat_bytes = flat.stats.bytes_read();
        assert_eq!(
            rows_digest(&part_rows, table),
            rows_digest(&flat_rows, table),
            "{table}: partitioned and flat scans disagree"
        );
        assert!(
            part_rows.iter().map(Vec::len).sum::<usize>() > 0,
            "{table}: scan returned no tuples"
        );
        assert!(
            part_bytes < flat_bytes,
            "{table}: partitioned scan read {part_bytes} bytes, unpartitioned {flat_bytes}"
        );
        assert!(
            part_bytes < full_bytes,
            "{table}: relation scan read {part_bytes} bytes, full block scan {full_bytes}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir8);
    let _ = std::fs::remove_dir_all(&dir1);
}
