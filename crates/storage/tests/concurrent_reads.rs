//! No-global-lock proof for the disk read path.
//!
//! The old `SegmentSet` held one `Mutex` across open+seek+read, so
//! grouped reads serialized at the disk layer no matter how many
//! worker threads the executor fanned out. These tests pin the new
//! contract: reads on the same or different segments proceed truly
//! concurrently (verified with an injected in-flight probe, so the
//! proof holds even on a 1-CPU host), and each segment file is opened
//! at most once however many readers race the first touch.

use sebdb_crypto::sha256::Digest;
use sebdb_storage::{BlockStore, CacheMode, CachedStore, StoreConfig, TxPtr};
use sebdb_types::{Block, Transaction, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn block(height: u64, ntx: usize) -> Block {
    let txs = (0..ntx)
        .map(|i| {
            let mut t = Transaction::new(
                height * 1000 + i as u64,
                sebdb_crypto::sig::KeyId([1; 8]),
                "donate",
                vec![
                    Value::Int(i as i64),
                    Value::Str(format!("row-{height}-{i}")),
                ],
            );
            t.tid = height * 100 + i as u64;
            t
        })
        .collect();
    Block::seal(Digest::ZERO, height, height, txs, |_| vec![0u8; 4])
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sebdb-concread-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Builds a disk chain whose tiny segment size forces one block per
/// segment, so `nblocks` blocks span `nblocks` segment files.
fn chain_on_disk(dir: &std::path::Path, nblocks: u64) -> BlockStore {
    let store = BlockStore::open(
        dir,
        StoreConfig {
            segment_size: 1,
            sync_writes: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    for h in 0..nblocks {
        store.append(&block(h, 8)).unwrap();
    }
    store
}

/// Eight threads issue grouped reads across ≥ 2 segments while an
/// injected probe *blocks each read in flight* until at least two reads
/// are in flight simultaneously. Under the old global-mutex read path
/// at most one read can ever be in flight, so the probe would spin to
/// its deadline and the peak assertion below would fail — this test is
/// deterministic proof of concurrency even on a single CPU.
#[test]
fn grouped_reads_overlap_across_eight_threads() {
    let dir = tmpdir("overlap");
    let store = Arc::new(chain_on_disk(&dir, 4));
    let seen_peak = Arc::new(AtomicU64::new(0));
    {
        let seen_peak = Arc::clone(&seen_peak);
        let gauges = store.read_gauges().expect("disk backend");
        gauges.set_read_probe(Some(Box::new(move |in_flight| {
            seen_peak.fetch_max(in_flight, Ordering::AcqRel);
            let deadline = Instant::now() + Duration::from_secs(5);
            while seen_peak.load(Ordering::Acquire) < 2 && Instant::now() < deadline {
                std::hint::spin_loop();
            }
        })));
    }

    let cached = Arc::new(CachedStore::new(Arc::clone(&store), CacheMode::None));
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cached = Arc::clone(&cached);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Each thread touches two different segments.
                let a = (t % 4) as u64;
                let b = ((t + 1) % 4) as u64;
                let ptrs: Vec<TxPtr> = [a, b]
                    .iter()
                    .flat_map(|&bid| {
                        (0..8).map(move |i| TxPtr {
                            block: bid,
                            index: i,
                        })
                    })
                    .collect();
                let txs = cached.read_txs_grouped(&ptrs).unwrap();
                assert_eq!(txs.len(), ptrs.len());
                for (ptr, tx) in ptrs.iter().zip(&txs) {
                    assert_eq!(tx.tid, ptr.block * 100 + ptr.index as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let gauges = store.read_gauges().unwrap();
    gauges.set_read_probe(None);
    assert!(
        gauges.peak_in_flight() >= 2,
        "reads never overlapped: peak in-flight {}",
        gauges.peak_in_flight()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// However many threads race the first read of a segment, the handle
/// cache opens each segment file exactly once.
#[test]
fn racing_first_reads_open_each_segment_once() {
    let dir = tmpdir("openonce");
    drop(chain_on_disk(&dir, 3));
    // Fresh store → cold handle cache.
    let store = Arc::new(BlockStore::open(&dir, StoreConfig::default()).unwrap());
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for bid in 0..3u64 {
                    let b = store.read((bid + t) % 3).unwrap();
                    assert_eq!(b.transactions.len(), 8);
                    let _ = b;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // 3 chain-record segments + 3 partition-extent segments (the
    // 1-byte segment size forces one record per file, and the gauges
    // are shared across the chain and every partition reader).
    let gauges = store.read_gauges().unwrap();
    assert_eq!(
        gauges.opens(),
        6,
        "each of the 6 segment files must be opened exactly once"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent tuple reads through the offset table return intact,
/// correctly-bounded tuples (no torn buffers from shared cursors —
/// positioned reads have no cursor to share).
#[test]
fn concurrent_tuple_reads_never_tear() {
    let dir = tmpdir("tear");
    let store = Arc::new(chain_on_disk(&dir, 2));
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..50u64 {
                    let bid = (t + round) % 2;
                    let idx = ((t + round) % 8) as u32;
                    let tx = store
                        .read_tx_direct(TxPtr {
                            block: bid,
                            index: idx,
                        })
                        .unwrap();
                    assert_eq!(tx.tid, bid * 100 + idx as u64);
                    assert_eq!(
                        tx.values[1],
                        Value::Str(format!("row-{bid}-{idx}")),
                        "torn or misaligned tuple read"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
