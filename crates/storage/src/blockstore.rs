//! The block store: append-only, relation-partitioned persistence for
//! the chain.
//!
//! Blocks are the *only* copy of on-chain data (§I: "the system only
//! maintains one copy of the data"), but the copy is laid out by
//! relation: every transaction is routed to one of a fixed number of
//! relation partitions (the same hash mapping the ledger uses for its
//! index shards), and each partition appends tuple *extents* to its own
//! [`segment`](crate::segment) sequence with its own tuple offset
//! table. A separate *chain partition* appends one small record per
//! block (header ‖ tuple routes), and an append-only **chain-order
//! manifest** records, per block, the (partition, segment, offset)
//! extents needed to reassemble canonical block order. The manifest
//! record is the commit point: restart replay keeps the longest valid
//! manifest prefix, truncates every partition to match, and
//! reconstructs or truncates torn offset tables.
//!
//! Single-relation scans read only their partition's extents — they
//! stop paying for unrelated relations' bytes (the per-relation access
//! paths of the paper's Eq. 3 cost model). A memory backend backs unit
//! tests and pure-CPU benchmarks.

use crate::cache::{BlockCache, TxCache};
use crate::indexseg::{self, IndexBlockCache, IndexCheckpoint, PagedIndexReader};
use crate::segment::{
    segment_path, Location, ReadGauges, Result, SegmentSet, SegmentWriter, StorageError,
};
use parking_lot::{Mutex, RwLock};
use sebdb_parallel::Tracked;
use sebdb_types::{Block, BlockHeader, BlockId, Codec, Decoder, Encoder, Transaction};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Environment knob naming the sequential-scan readahead window (max
/// consecutive blocks fetched with one coalesced positioned read).
pub const READAHEAD_ENV: &str = "SEBDB_READAHEAD";

/// Default readahead window when [`READAHEAD_ENV`] is unset.
pub const DEFAULT_READAHEAD_BLOCKS: usize = 8;

static READAHEAD: AtomicUsize = AtomicUsize::new(0); // 0 = uninitialized

fn default_readahead() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(READAHEAD_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or(DEFAULT_READAHEAD_BLOCKS)
    })
}

/// Current readahead window in blocks (≥ 1; 1 disables coalescing so
/// sequential scans read block by block, the pre-coalescing behaviour).
pub fn readahead_blocks() -> usize {
    match READAHEAD.load(Ordering::Relaxed) {
        0 => default_readahead(),
        n => n,
    }
}

/// Overrides the readahead window (clamped to ≥ 1). Benchmarks and
/// equivalence tests sweep this.
pub fn set_readahead_blocks(n: usize) {
    READAHEAD.store(n.max(1), Ordering::Relaxed);
}

/// Number of fixed relation partitions — the same constant as the
/// ledger's `INDEX_SHARDS`, so a relation's tuples and its index
/// families live in the same numbered slice of the system.
pub const RELATION_PARTITIONS: usize = 8;

/// Sentinel partition id naming the chain partition (the per-block
/// header ‖ routes records) in [`WriteStep::PartitionWrite`].
pub const CHAIN_PARTITION: usize = RELATION_PARTITIONS;

/// Environment knob selecting the partition count for newly created
/// disk stores (clamped to `1..=`[`RELATION_PARTITIONS`]; existing
/// stores keep the count recorded in their manifest header).
pub const STORE_PARTITIONS_ENV: &str = "SEBDB_STORE_PARTITIONS";

fn default_partitions() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(STORE_PARTITIONS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(1, RELATION_PARTITIONS))
            .unwrap_or(RELATION_PARTITIONS)
    })
}

/// The fixed relation partition a (lowercased) table name hashes to.
/// This is the single source of truth for relation → slice mapping:
/// the ledger's `shard_of` delegates here, so tuples and their index
/// families always agree.
pub fn partition_of(table: &str) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    table.hash(&mut h);
    (h.finish() as usize) % RELATION_PARTITIONS
}

/// The partition a transaction's table routes to in a store with
/// `partitions` partitions (fixed hash folded down, so `partitions = 1`
/// degenerates to the single-sequence reference layout).
fn route_of(table: &str, partitions: usize) -> u8 {
    (partition_of(&table.to_ascii_lowercase()) % partitions.max(1)) as u8
}

/// The write-order boundaries of one block append, in the order the
/// store crosses them. Fault-injection tests use these to tear an
/// append at every boundary and prove restart replay heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStep {
    /// About to append block data to partition `p`
    /// ([`CHAIN_PARTITION`] = the chain record).
    PartitionWrite(usize),
    /// About to append partition `p`'s tuple offsets record.
    OffsetsWrite(usize),
    /// About to append the chain-order manifest record — the commit
    /// point.
    ManifestWrite,
    /// About to write level-1 block `i` of an index checkpoint.
    IndexBlockWrite(usize),
    /// About to write an index checkpoint's fence table + footer tail.
    IndexFenceWrite,
    /// About to publish an index checkpoint (the `.tmp` → `.icp`
    /// rename — the checkpoint's commit point).
    IndexPublish,
}

/// Fault hook signature: return `true` to fail the append at `step`.
pub type WriteFaultFn = dyn Fn(WriteStep) -> bool + Send + Sync;

/// Points at one transaction inside one block — what the second-level
/// index leaves store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxPtr {
    /// Containing block.
    pub block: BlockId,
    /// Position within the block body.
    pub index: u32,
}

impl TxPtr {
    /// Packs the pointer into a cache key.
    pub fn as_u64(&self) -> u64 {
        (self.block << 24) | self.index as u64
    }
}

/// Block store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Segment file size; the paper's default is 256 MB.
    pub segment_size: u64,
    /// Fsync every appended block (off for benchmarks).
    pub sync_writes: bool,
    /// Relation partition count for newly created stores (clamped to
    /// `1..=`[`RELATION_PARTITIONS`]). 1 = the sequential reference
    /// layout (every relation shares one partition). Reopening an
    /// existing store keeps the count in its manifest header.
    pub partitions: usize,
    /// Total level-1 index blocks the index-block cache may keep
    /// resident (`Some(0)` = unbounded, the `cache=∞` reference);
    /// `None` reads [`crate::indexseg::INDEX_CACHE_BLOCKS_ENV`] or
    /// falls back to the default bounded capacity.
    pub index_cache_blocks: Option<usize>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_size: 256 * 1024 * 1024,
            sync_writes: false,
            partitions: default_partitions(),
            index_cache_blocks: None,
        }
    }
}

/// Read/write counters the benchmark harness reports (the paper's cost
/// model, Eqs. 1–3, counts block accesses and tuple reads).
///
/// The counters are atomics under a zero-cost [`Tracked`] marker: the
/// model checker's race-detection suites model them as self-ordering
/// cells (exempt from happens-before checks — DESIGN.md §14), and the
/// marker records that exemption at the type.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Blocks fetched from disk (or the memory backend).
    pub blocks_read: Tracked<AtomicU64>,
    /// Blocks appended.
    pub blocks_written: Tracked<AtomicU64>,
    /// Individual transactions materialized.
    pub txs_read: Tracked<AtomicU64>,
    /// Payload bytes actually fetched from the backend. A tuple-granular
    /// read charges only the tuple's bytes (plus coalescing gaps inside
    /// one span); a block read charges the whole block; a relation scan
    /// charges only its partition's extents — this is the counter that
    /// makes the Eq. 3 tuple-vs-block comparison honest.
    pub bytes_read: Tracked<AtomicU64>,
    /// Level-1 index blocks served from the index-block cache.
    pub index_cache_hits: Tracked<AtomicU64>,
    /// Level-1 index blocks loaded cold from a checkpoint file.
    pub index_cache_misses: Tracked<AtomicU64>,
    /// Milliseconds the last `Ledger::open`-style recovery spent
    /// (checkpoint load + tail replay) — the O(1)-open regression hook.
    pub open_millis: Tracked<AtomicU64>,
}

impl IoStats {
    /// Snapshot as (blocks_read, blocks_written, txs_read).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.blocks_read.load(Ordering::Relaxed),
            self.blocks_written.load(Ordering::Relaxed),
            self.txs_read.load(Ordering::Relaxed),
        )
    }

    /// Payload bytes fetched from the backend so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Index-block cache counters as (hits, misses).
    pub fn index_cache_counts(&self) -> (u64, u64) {
        (
            self.index_cache_hits.load(Ordering::Relaxed),
            self.index_cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Milliseconds the last recovery (open) spent.
    pub fn open_millis(&self) -> u64 {
        self.open_millis.load(Ordering::Relaxed)
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.txs_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.index_cache_hits.store(0, Ordering::Relaxed);
        self.index_cache_misses.store(0, Ordering::Relaxed);
        self.open_millis.store(0, Ordering::Relaxed);
    }
}

/// Where one transaction's bytes live: partition `part`'s extent for
/// its block, at `off..off + len` within that extent.
#[derive(Debug, Clone, Copy)]
struct TxLoc {
    part: u8,
    off: u32,
    len: u32,
}

/// One block's tuple locations in canonical (block body) order, shared
/// between the store and in-flight readers.
type TxLocs = Arc<Vec<TxLoc>>;

/// One offsets-record entry: (canonical index, extent offset, length).
type OffsetRec = (u32, u32, u32);

/// One partition's replayed offset tables: `(bid, entries)` for each
/// block that touches the partition, in chain order.
type OffsetsTable = Vec<(u64, Vec<OffsetRec>)>;

/// One block's extents as the manifest records them.
#[derive(Debug, Clone)]
struct BlockEntry {
    /// The chain record (header ‖ routes) in the chain partition.
    chain: Location,
    /// `(partition, extent)` for every partition the block touches,
    /// ascending by partition id.
    parts: Vec<(u8, Location)>,
}

/// One relation partition's on-disk state.
struct Partition {
    writer: Mutex<SegmentWriter>,
    reader: SegmentSet,
    offsets: Mutex<BufWriter<File>>,
}

// One Backend exists per store, so the Disk/Memory size gap is
// irrelevant — boxing the disk state would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Disk {
        chain_writer: Mutex<SegmentWriter>,
        chain_reader: SegmentSet,
        parts: Vec<Partition>,
        manifest: Mutex<BufWriter<File>>,
        entries: RwLock<Vec<BlockEntry>>,
        tx_locs: RwLock<Vec<TxLocs>>,
        /// Shared open/in-flight instrumentation across the chain and
        /// every partition reader.
        gauges: Arc<ReadGauges>,
    },
    /// Blocks kept as *encoded bytes* so every read pays the realistic
    /// decode cost (an in-memory store handing out `Arc<Block>` clones
    /// would make full scans artificially free and erase the access-
    /// path cost differences the paper measures).
    Memory { blocks: RwLock<Vec<MemBlock>> },
}

struct MemBlock {
    bytes: Arc<Vec<u8>>,
    /// Byte range of each transaction within `bytes`, enabling
    /// tuple-granular random reads (the layered index's
    /// `p · (t_S + t_T)` cost, Eq. 3).
    tx_ranges: Arc<Vec<(u32, u32)>>,
    /// Each transaction's relation partition, mirroring the disk
    /// layout's routing so relation scans are partition-granular on
    /// both backends.
    routes: Arc<Vec<u8>>,
}

/// Encodes a block once, recording each transaction's byte range within
/// the canonical encoding (header ‖ u32 count ‖ transactions) as it
/// goes — the memory backend derives both the stored bytes and the
/// offset table from a single encoding pass.
fn encode_with_ranges(block: &Block) -> (Vec<u8>, Vec<(u32, u32)>) {
    let mut enc = Encoder::new();
    block.header.encode(&mut enc);
    enc.put_u32(block.transactions.len() as u32);
    let mut ranges = Vec::with_capacity(block.transactions.len());
    for tx in &block.transactions {
        let start = enc.len() as u32;
        tx.encode(&mut enc);
        ranges.push((start, enc.len() as u32 - start));
    }
    (enc.finish(), ranges)
}

/// A block encoded for the partitioned layout: one chain record, one
/// tuple extent per touched partition, the per-partition offsets
/// records, and the canonical tuple location table — all from a single
/// encoding pass.
struct EncodedBlock {
    chain: Vec<u8>,
    extents: Vec<Vec<u8>>,
    offsets: Vec<Vec<OffsetRec>>,
    locs: Vec<TxLoc>,
}

fn encode_partitioned(block: &Block, partitions: usize) -> EncodedBlock {
    let mut chain = Encoder::new();
    block.header.encode(&mut chain);
    chain.put_u32(block.transactions.len() as u32);
    let mut extents: Vec<Encoder> = (0..partitions).map(|_| Encoder::new()).collect();
    let mut offsets: Vec<Vec<OffsetRec>> = vec![Vec::new(); partitions];
    let mut locs = Vec::with_capacity(block.transactions.len());
    for (canon, tx) in block.transactions.iter().enumerate() {
        let part = route_of(&tx.tname, partitions);
        chain.put_u8(part);
        let enc = &mut extents[part as usize];
        let start = enc.len() as u32;
        tx.encode(enc);
        let len = enc.len() as u32 - start;
        offsets[part as usize].push((canon as u32, start, len));
        locs.push(TxLoc {
            part,
            off: start,
            len,
        });
    }
    EncodedBlock {
        chain: chain.finish(),
        extents: extents.into_iter().map(Encoder::finish).collect(),
        offsets,
        locs,
    }
}

/// The append-only block store.
pub struct BlockStore {
    backend: Backend,
    config: StoreConfig,
    /// Resolved partition count (the manifest header's on reopen).
    partitions: usize,
    /// Store directory (disk backend only) — index checkpoints live in
    /// its [`crate::indexseg::INDEX_CHECKPOINT_DIR`] subdirectory.
    dir: Option<PathBuf>,
    write_fault: RwLock<Option<Box<WriteFaultFn>>>,
    /// Bounded cache of level-1 index blocks, shared by every paged
    /// index reader opened through this store.
    index_cache: Arc<IndexBlockCache>,
    /// I/O counters (shared with the index-block cache tier).
    pub stats: Arc<IoStats>,
}

/// The chain-order manifest — the commit point of every append.
const BLOCK_MANIFEST: &str = "blockmanifest.idx";

/// Persisted tracking-view registrations (see
/// [`BlockStore::save_view_registrations`]).
const VIEW_REGISTRATIONS: &str = "viewreg.idx";
const VIEW_REGISTRATIONS_TMP: &str = "viewreg.idx.tmp";
/// Manifest magic, versioned with the record format.
const MANIFEST_MAGIC: &[u8; 8] = b"SEBDBMF1";
/// Manifest header: magic(8) ‖ partitions(2) ‖ reserved(6).
const MANIFEST_HEADER: usize = 16;
/// Fixed prefix of one manifest record:
/// bid(8) ‖ chain seg(4) off(8) len(4) ‖ nparts(2); followed by
/// nparts × [part(2) seg(4) off(8) len(4)].
const MANIFEST_REC_FIXED: usize = 26;
const MANIFEST_REC_PART: usize = 18;
/// Per-partition tuple offset table: one variable-length record per
/// block touching the partition,
/// `bid(8) ‖ count(4) ‖ count × (canon(4) ‖ off(4) ‖ len(4))`.
/// Written after the partition extent, before the manifest record;
/// missing or torn records are reconstructed on open from the chain
/// record's routes and the extent bytes.
const OFFSETS: &str = "txoffsets.idx";
/// The pre-partitioning single-sequence manifest (root of the store
/// dir); its presence triggers the one-shot migration.
const V1_MANIFEST: &str = "manifest.idx";
/// One v1 manifest record: bid(8) seg(4) off(8) len(4).
const V1_MANIFEST_REC: usize = 24;
/// The v1 root-level offset table (same file name the partitions use,
/// but at the store root rather than inside `part-*/`).
const V1_TXTAB: &str = "txoffsets.idx";

fn chain_dir(dir: &Path) -> PathBuf {
    dir.join("chain")
}

fn part_dir(dir: &Path, p: usize) -> PathBuf {
    dir.join(format!("part-{p}"))
}

/// Copies the first `N` bytes of `slice` into an array. Callers pass
/// slices cut to exactly `N` bytes by the replay bounds checks.
fn fixed<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&slice[..N]);
    out
}

/// Serializes one per-partition [`OFFSETS`] record.
fn offsets_record(bid: u64, entries: &[OffsetRec]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(12 + entries.len() * 12);
    rec.extend_from_slice(&bid.to_le_bytes());
    rec.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for &(canon, off, len) in entries {
        rec.extend_from_slice(&canon.to_le_bytes());
        rec.extend_from_slice(&off.to_le_bytes());
        rec.extend_from_slice(&len.to_le_bytes());
    }
    rec
}

/// Serializes one chain-order manifest record.
fn manifest_record(bid: u64, chain: Location, parts: &[(u8, Location)]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(MANIFEST_REC_FIXED + parts.len() * MANIFEST_REC_PART);
    rec.extend_from_slice(&bid.to_le_bytes());
    rec.extend_from_slice(&chain.segment.to_le_bytes());
    rec.extend_from_slice(&chain.offset.to_le_bytes());
    rec.extend_from_slice(&chain.len.to_le_bytes());
    rec.extend_from_slice(&(parts.len() as u16).to_le_bytes());
    for (p, loc) in parts {
        rec.extend_from_slice(&(*p as u16).to_le_bytes());
        rec.extend_from_slice(&loc.segment.to_le_bytes());
        rec.extend_from_slice(&loc.offset.to_le_bytes());
        rec.extend_from_slice(&loc.len.to_le_bytes());
    }
    rec
}

/// Decodes one chain record into its header and per-tuple routes.
fn decode_chain_record(bytes: &[u8], bid: u64) -> Result<(BlockHeader, Vec<u8>)> {
    let corrupt =
        |e: &dyn std::fmt::Display| StorageError::Corrupt(format!("block {bid} chain record: {e}"));
    let mut dec = Decoder::new(bytes);
    let header = BlockHeader::decode(&mut dec).map_err(|e| corrupt(&e))?;
    let ntx = dec
        .get_u32("chain record tuple count")
        .map_err(|e| corrupt(&e))? as usize;
    let routes = dec
        .get_raw(ntx, "chain record routes")
        .map_err(|e| corrupt(&e))?
        .to_vec();
    if !dec.is_exhausted() {
        return Err(StorageError::Corrupt(format!(
            "block {bid} chain record has trailing bytes"
        )));
    }
    Ok((header, routes))
}

impl BlockStore {
    /// Opens (or creates) a disk-backed store in `dir`, replaying the
    /// chain-order manifest (longest valid prefix wins), truncating
    /// every partition to the manifest's view, and reconstructing any
    /// missing or torn per-partition offset tables. A store in the
    /// pre-partitioning single-sequence format is migrated in place
    /// first (one shot, restart-safe: the old manifest is only removed
    /// once the partitioned layout is fully written).
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        if dir.join(V1_MANIFEST).exists() {
            Self::migrate_v1(dir, &config)?;
        }
        Self::open_v2(dir, config)
    }

    /// Creates a memory-backed store (tests, pure-CPU benchmarks).
    /// Blocks are held encoded; reads decode, so access-path costs stay
    /// realistic.
    pub fn in_memory() -> Self {
        Self::in_memory_with(StoreConfig::default())
    }

    /// Memory-backed store with explicit configuration (the partition
    /// count steers relation routing).
    pub fn in_memory_with(config: StoreConfig) -> Self {
        let partitions = config.partitions.clamp(1, RELATION_PARTITIONS);
        let stats = Arc::new(IoStats::default());
        let index_cache =
            IndexBlockCache::new(config.index_cache_blocks.unwrap_or(0), Arc::clone(&stats));
        BlockStore {
            backend: Backend::Memory {
                blocks: RwLock::new(Vec::new()),
            },
            config,
            partitions,
            dir: None,
            write_fault: RwLock::new(None),
            index_cache,
            stats,
        }
    }

    /// Migrates a single-sequence (v1) store to the partitioned layout:
    /// reads every block through the old manifest, appends it through
    /// the new path, then removes the old root-level files. Idempotent:
    /// an interrupted migration leaves the v1 manifest in place, and
    /// the next open wipes the partial v2 state and starts over.
    fn migrate_v1(dir: &Path, config: &StoreConfig) -> Result<()> {
        let _ = std::fs::remove_file(dir.join(BLOCK_MANIFEST));
        let _ = std::fs::remove_dir_all(chain_dir(dir));
        for p in 0..RELATION_PARTITIONS {
            let _ = std::fs::remove_dir_all(part_dir(dir, p));
        }
        let locations = Self::replay_v1_manifest(&dir.join(V1_MANIFEST))?;
        let v1 = SegmentSet::new(dir);
        let store = Self::open_v2(dir, config.clone())?;
        for (bid, loc) in locations.iter().enumerate() {
            let bytes = v1.read(*loc)?;
            let block = Block::from_bytes(&bytes)
                .map_err(|e| StorageError::Corrupt(format!("migrating block {bid}: {e}")))?;
            store.append(&block)?;
        }
        drop(store);
        std::fs::remove_file(dir.join(V1_MANIFEST))?;
        let _ = std::fs::remove_file(dir.join(V1_TXTAB));
        if let Ok(rd) = std::fs::read_dir(dir) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                if name.to_string_lossy().starts_with("seg-") && entry.path().is_file() {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    fn replay_v1_manifest(path: &PathBuf) -> Result<Vec<Location>> {
        let mut locations = Vec::new();
        let Ok(mut f) = File::open(path) else {
            return Ok(locations);
        };
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        for (i, rec) in buf.chunks_exact(V1_MANIFEST_REC).enumerate() {
            let bid = u64::from_le_bytes(fixed::<8>(&rec[0..8]));
            if bid != i as u64 {
                return Err(StorageError::Corrupt(format!(
                    "v1 manifest record {i} has bid {bid}"
                )));
            }
            locations.push(Location {
                segment: u32::from_le_bytes(fixed::<4>(&rec[8..12])),
                offset: u64::from_le_bytes(fixed::<8>(&rec[12..20])),
                len: u32::from_le_bytes(fixed::<4>(&rec[20..24])),
            });
        }
        Ok(locations)
    }

    fn open_v2(dir: &Path, config: StoreConfig) -> Result<Self> {
        let manifest_path = dir.join(BLOCK_MANIFEST);
        let mut buf = Vec::new();
        if let Ok(mut f) = File::open(&manifest_path) {
            f.read_to_end(&mut buf)?;
        }
        // A complete header pins the partition count; a torn or missing
        // one means no block ever committed, so the store is rebuilt
        // fresh with the configured count.
        let (partitions, fresh) = if buf.len() >= MANIFEST_HEADER {
            if &buf[0..8] != MANIFEST_MAGIC {
                return Err(StorageError::Corrupt("block manifest has bad magic".into()));
            }
            let p = u16::from_le_bytes(fixed::<2>(&buf[8..10])) as usize;
            if !(1..=RELATION_PARTITIONS).contains(&p) {
                return Err(StorageError::Corrupt(format!(
                    "block manifest names {p} partitions"
                )));
            }
            (p, false)
        } else {
            (config.partitions.clamp(1, RELATION_PARTITIONS), true)
        };
        let (mut entries, ends) = if fresh {
            (Vec::new(), Vec::new())
        } else {
            Self::replay_manifest(&buf, partitions)
        };
        // A manifest record written before its partition data reached
        // the segment files (reordered writes) is torn state too: cut
        // the manifest at the first record whose extents exceed the
        // physical file lengths.
        let keep = Self::validate_extents(dir, &entries);
        entries.truncate(keep);
        let valid_bytes = if fresh {
            0
        } else if keep == 0 {
            MANIFEST_HEADER as u64
        } else {
            ends[keep - 1]
        };
        std::fs::create_dir_all(chain_dir(dir))?;
        for p in 0..partitions {
            std::fs::create_dir_all(part_dir(dir, p))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest_path)?;
        file.set_len(valid_bytes)?;
        let mut manifest = BufWriter::new(file);
        if fresh {
            let mut header = [0u8; MANIFEST_HEADER];
            header[0..8].copy_from_slice(MANIFEST_MAGIC);
            header[8..10].copy_from_slice(&(partitions as u16).to_le_bytes());
            manifest.write_all(&header)?;
            manifest.flush()?;
        }
        let gauges = ReadGauges::new();
        let chain_reader = SegmentSet::with_gauges(&chain_dir(dir), Arc::clone(&gauges));
        let chain_resume = entries
            .last()
            .map(|e| (e.chain.segment, e.chain.offset + e.chain.len as u64));
        let chain_writer = SegmentWriter::open(&chain_dir(dir), config.segment_size, chain_resume)?;
        let mut parts = Vec::with_capacity(partitions);
        let mut tables: Vec<OffsetsTable> = Vec::with_capacity(partitions);
        for p in 0..partitions {
            let pd = part_dir(dir, p);
            let reader = SegmentSet::with_gauges(&pd, Arc::clone(&gauges));
            let resume = entries.iter().rev().find_map(|e| {
                e.parts
                    .iter()
                    .find(|(q, _)| *q as usize == p)
                    .map(|(_, l)| (l.segment, l.offset + l.len as u64))
            });
            let writer = SegmentWriter::open(&pd, config.segment_size, resume)?;
            let expected: Vec<(u64, u32)> = entries
                .iter()
                .enumerate()
                .filter_map(|(bid, e)| {
                    e.parts
                        .iter()
                        .find(|(q, _)| *q as usize == p)
                        .map(|(_, l)| (bid as u64, l.len))
                })
                .collect();
            let (table, offsets_file) = Self::replay_offsets(
                &pd.join(OFFSETS),
                &expected,
                &entries,
                &chain_reader,
                &reader,
                p,
            )?;
            parts.push(Partition {
                writer: Mutex::new(writer),
                reader,
                offsets: Mutex::new(BufWriter::new(offsets_file)),
            });
            tables.push(table);
        }
        let tx_locs = Self::assemble_tx_locs(&entries, &tables)?;
        // Torn index-checkpoint writers (never published) leave `.tmp`
        // artifacts; sweep them so the directory holds only committed
        // checkpoints.
        indexseg::sweep_tmp_checkpoints(&dir.join(indexseg::INDEX_CHECKPOINT_DIR));
        let stats = Arc::new(IoStats::default());
        let index_cache = IndexBlockCache::new(
            config
                .index_cache_blocks
                .unwrap_or_else(IndexBlockCache::capacity_from_env),
            Arc::clone(&stats),
        );
        Ok(BlockStore {
            backend: Backend::Disk {
                chain_writer: Mutex::new(chain_writer),
                chain_reader,
                parts,
                manifest: Mutex::new(manifest),
                entries: RwLock::new(entries),
                tx_locs: RwLock::new(tx_locs),
                gauges,
            },
            config,
            partitions,
            dir: Some(dir.to_path_buf()),
            write_fault: RwLock::new(None),
            index_cache,
            stats,
        })
    }

    /// Parses the manifest body, keeping the longest valid prefix of
    /// records. Returns the entries and each record's end offset within
    /// the file (for truncation after a later validation cut).
    fn replay_manifest(buf: &[u8], partitions: usize) -> (Vec<BlockEntry>, Vec<u64>) {
        let mut entries: Vec<BlockEntry> = Vec::new();
        let mut ends = Vec::new();
        let mut at = MANIFEST_HEADER;
        'records: while buf.len() >= at + MANIFEST_REC_FIXED {
            let bid = u64::from_le_bytes(fixed::<8>(&buf[at..at + 8]));
            if bid != entries.len() as u64 {
                break;
            }
            let chain = Location {
                segment: u32::from_le_bytes(fixed::<4>(&buf[at + 8..at + 12])),
                offset: u64::from_le_bytes(fixed::<8>(&buf[at + 12..at + 20])),
                len: u32::from_le_bytes(fixed::<4>(&buf[at + 20..at + 24])),
            };
            let nparts = u16::from_le_bytes(fixed::<2>(&buf[at + 24..at + 26])) as usize;
            let body = MANIFEST_REC_FIXED + nparts * MANIFEST_REC_PART;
            if chain.len == 0 || nparts > partitions || buf.len() < at + body {
                break;
            }
            let mut parts = Vec::with_capacity(nparts);
            let mut prev: i32 = -1;
            for k in 0..nparts {
                let q = at + MANIFEST_REC_FIXED + k * MANIFEST_REC_PART;
                let part = u16::from_le_bytes(fixed::<2>(&buf[q..q + 2]));
                let loc = Location {
                    segment: u32::from_le_bytes(fixed::<4>(&buf[q + 2..q + 6])),
                    offset: u64::from_le_bytes(fixed::<8>(&buf[q + 6..q + 14])),
                    len: u32::from_le_bytes(fixed::<4>(&buf[q + 14..q + 18])),
                };
                if part as usize >= partitions || (part as i32) <= prev || loc.len == 0 {
                    break 'records;
                }
                prev = part as i32;
                parts.push((part as u8, loc));
            }
            at += body;
            entries.push(BlockEntry { chain, parts });
            ends.push(at as u64);
        }
        (entries, ends)
    }

    /// Checks each manifest entry's extents against the physical
    /// segment file lengths, returning the length of the prefix whose
    /// data actually reached disk (a manifest record racing ahead of
    /// its partition writes is cut here).
    fn validate_extents(dir: &Path, entries: &[BlockEntry]) -> usize {
        use std::collections::HashMap;
        let mut lens: HashMap<(usize, u32), u64> = HashMap::new();
        fn file_len(
            lens: &mut std::collections::HashMap<(usize, u32), u64>,
            dir: &Path,
            part: usize,
            seg: u32,
        ) -> u64 {
            *lens.entry((part, seg)).or_insert_with(|| {
                let d = if part == CHAIN_PARTITION {
                    chain_dir(dir)
                } else {
                    part_dir(dir, part)
                };
                std::fs::metadata(segment_path(&d, seg))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
        }
        for (i, e) in entries.iter().enumerate() {
            if e.chain.offset + e.chain.len as u64
                > file_len(&mut lens, dir, CHAIN_PARTITION, e.chain.segment)
            {
                return i;
            }
            for (p, loc) in &e.parts {
                if loc.offset + loc.len as u64 > file_len(&mut lens, dir, *p as usize, loc.segment)
                {
                    return i;
                }
            }
        }
        entries.len()
    }

    /// Replays one partition's [`OFFSETS`] file against the manifest's
    /// expected `(bid, extent len)` sequence, keeping the longest valid
    /// prefix and reconstructing the rest from the chain records'
    /// routes and the extent bytes. Returns the tables and the
    /// (truncated, caught-up) append handle.
    fn replay_offsets(
        path: &Path,
        expected: &[(u64, u32)],
        entries: &[BlockEntry],
        chain_reader: &SegmentSet,
        reader: &SegmentSet,
        part: usize,
    ) -> Result<(OffsetsTable, File)> {
        let mut tables: OffsetsTable = Vec::with_capacity(expected.len());
        let mut valid_bytes = 0u64;
        if let Ok(mut f) = File::open(path) {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            let mut at = 0usize;
            'records: while tables.len() < expected.len() && buf.len() - at >= 12 {
                let (want_bid, want_len) = expected[tables.len()];
                let bid = u64::from_le_bytes(fixed::<8>(&buf[at..at + 8]));
                let count = u32::from_le_bytes(fixed::<4>(&buf[at + 8..at + 12])) as usize;
                let body = 12 + count * 12;
                if bid != want_bid || count == 0 || buf.len() - at < body {
                    break;
                }
                let mut rec = Vec::with_capacity(count);
                let mut next_off = 0u32;
                let mut prev_canon: i64 = -1;
                for i in 0..count {
                    let q = at + 12 + i * 12;
                    let canon = u32::from_le_bytes(fixed::<4>(&buf[q..q + 4]));
                    let off = u32::from_le_bytes(fixed::<4>(&buf[q + 4..q + 8]));
                    let len = u32::from_le_bytes(fixed::<4>(&buf[q + 8..q + 12]));
                    if (canon as i64) <= prev_canon || off != next_off || len == 0 {
                        break 'records;
                    }
                    prev_canon = canon as i64;
                    next_off = off + len;
                    rec.push((canon, off, len));
                }
                if next_off != want_len {
                    break;
                }
                tables.push((bid, rec));
                at += body;
                valid_bytes = at as u64;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        // Drop everything past the valid prefix (torn tail, or records
        // racing ahead of the manifest's view), then reconstruct the
        // missing entries by sequentially decoding the extents.
        file.set_len(valid_bytes)?;
        let mut appender = BufWriter::new(file);
        for &(bid, _) in expected.iter().skip(tables.len()) {
            let entry = &entries[bid as usize];
            let (_, routes) = decode_chain_record(&chain_reader.read(entry.chain)?, bid)?;
            let ext_loc = entry
                .parts
                .iter()
                .find(|(q, _)| *q as usize == part)
                .map(|(_, l)| *l)
                .ok_or_else(|| {
                    StorageError::Corrupt(format!("block {bid} missing partition {part} extent"))
                })?;
            let extent = reader.read(ext_loc)?;
            let mut dec = Decoder::new(&extent);
            let mut rec = Vec::new();
            for (canon, &route) in routes.iter().enumerate() {
                if route as usize != part {
                    continue;
                }
                let before = dec.remaining();
                let off = (extent.len() - before) as u32;
                Transaction::decode(&mut dec).map_err(|e| {
                    StorageError::Corrupt(format!(
                        "block {bid} partition {part} tuple {canon}: {e}"
                    ))
                })?;
                rec.push((canon as u32, off, (before - dec.remaining()) as u32));
            }
            if !dec.is_exhausted() || rec.is_empty() {
                return Err(StorageError::Corrupt(format!(
                    "block {bid} partition {part} extent does not match its routes"
                )));
            }
            appender.write_all(&offsets_record(bid, &rec))?;
            tables.push((bid, rec));
        }
        appender.flush()?;
        let file = appender
            .into_inner()
            .map_err(|e| StorageError::Io(e.into_error()))?;
        Ok((tables, file))
    }

    /// Merges the per-partition offset tables into one canonical-order
    /// tuple location table per block, validating that each block's
    /// canonical indexes form a permutation of `0..ntx`.
    fn assemble_tx_locs(entries: &[BlockEntry], tables: &[OffsetsTable]) -> Result<Vec<TxLocs>> {
        let mut per_block: Vec<Vec<(u32, TxLoc)>> =
            (0..entries.len()).map(|_| Vec::new()).collect();
        for (p, table) in tables.iter().enumerate() {
            for (bid, rec) in table {
                let slot = per_block.get_mut(*bid as usize).ok_or_else(|| {
                    StorageError::Corrupt(format!("offsets for unknown block {bid}"))
                })?;
                for &(canon, off, len) in rec {
                    slot.push((
                        canon,
                        TxLoc {
                            part: p as u8,
                            off,
                            len,
                        },
                    ));
                }
            }
        }
        let mut out = Vec::with_capacity(entries.len());
        for (bid, items) in per_block.into_iter().enumerate() {
            let n = items.len();
            let mut slots: Vec<Option<TxLoc>> = vec![None; n];
            for (canon, loc) in items {
                match slots.get_mut(canon as usize) {
                    Some(slot) if slot.is_none() => *slot = Some(loc),
                    _ => {
                        return Err(StorageError::Corrupt(format!(
                            "block {bid}: tuple index {canon} out of range or duplicated"
                        )))
                    }
                }
            }
            let locs = slots
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    s.ok_or_else(|| {
                        StorageError::Corrupt(format!("block {bid}: tuple {i} has no location"))
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            out.push(Arc::new(locs));
        }
        Ok(out)
    }

    /// Resolved relation partition count (1 = single-sequence layout).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The store's shared index-block cache tier.
    pub fn index_cache(&self) -> &Arc<IndexBlockCache> {
        &self.index_cache
    }

    /// Persists one index family's checkpoint behind the `.tmp` →
    /// rename commit point. The chain-order manifest remains the real
    /// commit point: a checkpoint must only be written for state the
    /// manifest already covers (`cp.height <= self.height()`), and
    /// [`Self::load_index_checkpoint`] discards any file that runs
    /// ahead of the manifest after a rollback. No-op on the memory
    /// backend (nothing survives the process anyway).
    pub fn write_index_checkpoint(&self, cp: &IndexCheckpoint) -> Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        if cp.height > self.height() {
            return Err(StorageError::Corrupt(format!(
                "index checkpoint height {} runs ahead of store height {}",
                cp.height,
                self.height()
            )));
        }
        indexseg::write_checkpoint(
            &dir.join(indexseg::INDEX_CHECKPOINT_DIR),
            cp,
            self.config.sync_writes,
            &|step| self.check_fault(step),
        )
    }

    /// Opens one family's published checkpoint, if any. Healing path:
    /// a torn or corrupt file, or one whose height exceeds the current
    /// manifest height (the manifest rolled back past it), is deleted
    /// and `None` is returned — the caller replays the chain instead,
    /// which reconstructs the same state.
    pub fn load_index_checkpoint(&self, family: &[u8]) -> Result<Option<PagedIndexReader>> {
        let Some(dir) = &self.dir else {
            return Ok(None);
        };
        let path = dir
            .join(indexseg::INDEX_CHECKPOINT_DIR)
            .join(indexseg::checkpoint_file_name(family));
        if !path.exists() {
            return Ok(None);
        }
        match PagedIndexReader::open(
            &path,
            Arc::clone(&self.index_cache),
            Arc::clone(&self.stats),
        ) {
            Ok(reader) if reader.height() <= self.height() => Ok(Some(reader)),
            Ok(_stale) => {
                indexseg::discard_checkpoint(&path, &self.index_cache, None);
                Ok(None)
            }
            Err(StorageError::Corrupt(_)) => {
                indexseg::discard_checkpoint(&path, &self.index_cache, None);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Persists the ledger's tracking-view registrations (an opaque,
    /// versioned byte encoding owned by the core crate) behind the
    /// same `.tmp` → rename commit point the index checkpoints use.
    /// Registrations are *advisory* durable state: only the predicate
    /// specs are saved — materialized rows are always rebuilt by
    /// re-backfilling on open, so a torn or missing file costs a
    /// backfill, never correctness. No-op on the memory backend.
    pub fn save_view_registrations(&self, bytes: &[u8]) -> Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let path = dir.join(VIEW_REGISTRATIONS);
        let tmp = dir.join(VIEW_REGISTRATIONS_TMP);
        {
            let mut f = BufWriter::new(File::create(&tmp)?);
            f.write_all(bytes)?;
            f.flush()?;
            if self.config.sync_writes {
                f.get_ref().sync_all()?;
            }
        }
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Loads the persisted tracking-view registrations, if any
    /// (`None` on the memory backend or when nothing was saved). The
    /// core crate decodes the bytes; a failed decode there is treated
    /// like a missing file.
    pub fn load_view_registrations(&self) -> Result<Option<Vec<u8>>> {
        let Some(dir) = &self.dir else {
            return Ok(None);
        };
        let path = dir.join(VIEW_REGISTRATIONS);
        if !path.exists() {
            return Ok(None);
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        Ok(Some(bytes))
    }

    /// Installs (or clears) the write fault hook — fault-injection
    /// tests tear appends at chosen [`WriteStep`] boundaries.
    pub fn set_write_fault(&self, hook: Option<Box<WriteFaultFn>>) {
        *self.write_fault.write() = hook;
    }

    fn check_fault(&self, step: WriteStep) -> Result<()> {
        if let Some(hook) = self.write_fault.read().as_ref() {
            if hook(step) {
                return Err(StorageError::Corrupt(format!(
                    "injected write fault at {step:?}"
                )));
            }
        }
        Ok(())
    }

    /// Number of stored blocks (= chain height).
    pub fn height(&self) -> u64 {
        match &self.backend {
            Backend::Disk { entries, .. } => entries.read().len() as u64,
            Backend::Memory { blocks } => blocks.read().len() as u64,
        }
    }

    /// Appends a sealed block. The block's height must equal the current
    /// store height (blocks arrive strictly in order).
    ///
    /// On disk the chain record and every touched partition's extent
    /// fan out across `sebdb-parallel` workers (each partition has its
    /// own writer lock, so the bytes each file receives are identical
    /// under any scheduling); the chain-order manifest record is the
    /// commit point, written only after every partition write landed.
    /// A failed append leaves torn partition state that restart replay
    /// heals; the in-memory view is untouched.
    pub fn append(&self, block: &Block) -> Result<()> {
        let expect = self.height();
        if block.header.height != expect {
            return Err(StorageError::Corrupt(format!(
                "appending block height {} but store height is {}",
                block.header.height, expect
            )));
        }
        match &self.backend {
            Backend::Disk {
                chain_writer,
                parts,
                manifest,
                entries,
                tx_locs,
                ..
            } => {
                let bid = block.header.height;
                let enc = encode_partitioned(block, self.partitions);
                let mut jobs: Vec<usize> = vec![CHAIN_PARTITION];
                jobs.extend((0..self.partitions).filter(|&p| !enc.extents[p].is_empty()));
                let written =
                    sebdb_parallel::par_map(&jobs, 1, |&job| -> Result<(usize, Location)> {
                        self.check_fault(WriteStep::PartitionWrite(job))?;
                        if job == CHAIN_PARTITION {
                            let mut w = chain_writer.lock();
                            let loc = w.append(&enc.chain)?;
                            if self.config.sync_writes {
                                w.sync()?;
                            } else {
                                w.flush()?;
                            }
                            Ok((job, loc))
                        } else {
                            let part = &parts[job];
                            let loc = {
                                let mut w = part.writer.lock();
                                let loc = w.append(&enc.extents[job])?;
                                if self.config.sync_writes {
                                    w.sync()?;
                                } else {
                                    w.flush()?;
                                }
                                loc
                            };
                            self.check_fault(WriteStep::OffsetsWrite(job))?;
                            let mut o = part.offsets.lock();
                            o.write_all(&offsets_record(bid, &enc.offsets[job]))?;
                            o.flush()?;
                            Ok((job, loc))
                        }
                    });
                let mut chain_loc = None;
                let mut part_locs: Vec<(u8, Location)> = Vec::with_capacity(jobs.len() - 1);
                for r in written {
                    let (job, loc) = r?;
                    if job == CHAIN_PARTITION {
                        chain_loc = Some(loc);
                    } else {
                        part_locs.push((job as u8, loc));
                    }
                }
                let chain_loc = chain_loc.ok_or_else(|| {
                    StorageError::Corrupt("chain write missing from append fan-out".into())
                })?;
                part_locs.sort_by_key(|&(p, _)| p);
                self.check_fault(WriteStep::ManifestWrite)?;
                let mut m = manifest.lock();
                m.write_all(&manifest_record(bid, chain_loc, &part_locs))?;
                m.flush()?;
                // The in-memory view commits with the manifest, under
                // its lock, so entry order always matches record order.
                entries.write().push(BlockEntry {
                    chain: chain_loc,
                    parts: part_locs,
                });
                tx_locs.write().push(Arc::new(enc.locs));
                drop(m);
            }
            Backend::Memory { blocks } => {
                let (bytes, ranges) = encode_with_ranges(block);
                let routes = block
                    .transactions
                    .iter()
                    .map(|t| route_of(&t.tname, self.partitions))
                    .collect();
                blocks.write().push(MemBlock {
                    bytes: Arc::new(bytes),
                    tx_ranges: Arc::new(ranges),
                    routes: Arc::new(routes),
                });
            }
        }
        self.stats.blocks_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads block `bid` from the backend (no caching here — see
    /// [`CachedStore`]): the chain record plus every touched
    /// partition's extent, reassembled into canonical order.
    pub fn read(&self, bid: BlockId) -> Result<Arc<Block>> {
        self.stats.blocks_read.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::Disk { .. } => {
                let mut v = self.assemble_span(bid, 1)?;
                v.pop().ok_or(StorageError::NotFound(bid))
            }
            Backend::Memory { blocks } => {
                let bytes = blocks
                    .read()
                    .get(bid as usize)
                    .map(|m| Arc::clone(&m.bytes))
                    .ok_or(StorageError::NotFound(bid))?;
                self.stats
                    .bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                let block = Block::from_bytes(&bytes)
                    .map_err(|e| StorageError::Corrupt(format!("block {bid}: {e}")))?;
                Ok(Arc::new(block))
            }
        }
    }

    /// Reads several consecutive blocks starting at `start`, coalescing
    /// physically adjacent records *within each partition* (consecutive
    /// blocks' extents are back-to-back in a partition's segment) into
    /// single positioned reads — the readahead path of sequential scans
    /// (Figs. 11–12). Counters match `count` individual reads.
    pub fn read_span(&self, start: BlockId, count: usize) -> Result<Vec<Arc<Block>>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        match &self.backend {
            Backend::Memory { .. } => (start..start + count as u64)
                .map(|b| self.read(b))
                .collect(),
            Backend::Disk { .. } => {
                self.stats
                    .blocks_read
                    .fetch_add(count as u64, Ordering::Relaxed);
                self.assemble_span(start, count)
            }
        }
    }

    /// Fetches `locs` from `reader`, coalescing contiguity runs (same
    /// segment, back-to-back offsets, combined span ≤ `u32::MAX`) into
    /// single positioned reads. Returns one byte vector per location,
    /// in input order; `bytes_read` is charged per span.
    fn read_coalesced(&self, reader: &SegmentSet, locs: &[Location]) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::with_capacity(locs.len());
        let mut run_start = 0usize;
        while run_start < locs.len() {
            let mut run_end = run_start + 1;
            while run_end < locs.len() {
                let prev = locs[run_end - 1];
                let next = locs[run_end];
                let contiguous =
                    next.segment == prev.segment && next.offset == prev.offset + prev.len as u64;
                let span = next.offset + next.len as u64 - locs[run_start].offset;
                if !contiguous || span > u32::MAX as u64 {
                    break;
                }
                run_end += 1;
            }
            let first = locs[run_start];
            let last = locs[run_end - 1];
            let span_len = (last.offset + last.len as u64 - first.offset) as u32;
            let span = reader.read(Location {
                segment: first.segment,
                offset: first.offset,
                len: span_len,
            })?;
            self.stats
                .bytes_read
                .fetch_add(span.len() as u64, Ordering::Relaxed);
            for loc in &locs[run_start..run_end] {
                let rel = (loc.offset - first.offset) as usize;
                out.push(span[rel..rel + loc.len as usize].to_vec());
            }
            run_start = run_end;
        }
        Ok(out)
    }

    /// Reassembles blocks `start..start + count` from the chain records
    /// and partition extents (disk backend only; `blocks_read` is the
    /// caller's charge).
    fn assemble_span(&self, start: BlockId, count: usize) -> Result<Vec<Arc<Block>>> {
        let Backend::Disk {
            chain_reader,
            parts,
            entries,
            tx_locs,
            ..
        } = &self.backend
        else {
            return Err(StorageError::Corrupt(
                "partitioned span read on memory backend".into(),
            ));
        };
        let (ents, locs): (Vec<BlockEntry>, Vec<TxLocs>) = {
            let eg = entries.read();
            let lg = tx_locs.read();
            let mut es = Vec::with_capacity(count);
            let mut ls = Vec::with_capacity(count);
            for b in start..start + count as u64 {
                es.push(
                    eg.get(b as usize)
                        .cloned()
                        .ok_or(StorageError::NotFound(b))?,
                );
                ls.push(
                    lg.get(b as usize)
                        .map(Arc::clone)
                        .ok_or(StorageError::NotFound(b))?,
                );
            }
            (es, ls)
        };
        let chain_locs: Vec<Location> = ents.iter().map(|e| e.chain).collect();
        let chain_bytes = self.read_coalesced(chain_reader, &chain_locs)?;
        let mut ext_bytes: Vec<Vec<Vec<u8>>> = ents
            .iter()
            .map(|e| vec![Vec::new(); e.parts.len()])
            .collect();
        for (p, partition) in parts.iter().enumerate() {
            let mut items: Vec<(usize, usize)> = Vec::new();
            let mut plocs: Vec<Location> = Vec::new();
            for (k, e) in ents.iter().enumerate() {
                if let Some(pos) = e.parts.iter().position(|(q, _)| *q as usize == p) {
                    items.push((k, pos));
                    plocs.push(e.parts[pos].1);
                }
            }
            if plocs.is_empty() {
                continue;
            }
            let fetched = self.read_coalesced(&partition.reader, &plocs)?;
            for ((k, pos), bytes) in items.into_iter().zip(fetched) {
                ext_bytes[k][pos] = bytes;
            }
        }
        let mut out = Vec::with_capacity(count);
        for (k, e) in ents.iter().enumerate() {
            let bid = start + k as u64;
            let (header, routes) = decode_chain_record(&chain_bytes[k], bid)?;
            let tl = &locs[k];
            if routes.len() != tl.len() {
                return Err(StorageError::Corrupt(format!(
                    "block {bid}: offset tables cover {} of {} tuples",
                    tl.len(),
                    routes.len()
                )));
            }
            let mut txs = Vec::with_capacity(tl.len());
            for (canon, l) in tl.iter().enumerate() {
                let pos = e
                    .parts
                    .iter()
                    .position(|(q, _)| *q == l.part)
                    .ok_or_else(|| {
                        StorageError::Corrupt(format!(
                            "block {bid}: tuple {canon} routed to absent partition {}",
                            l.part
                        ))
                    })?;
                let bytes = &ext_bytes[k][pos];
                let s = l.off as usize;
                let t = s + l.len as usize;
                if t > bytes.len() {
                    return Err(StorageError::Corrupt(format!(
                        "block {bid}: tuple {canon} overruns its extent"
                    )));
                }
                let tx = Transaction::from_bytes(&bytes[s..t])
                    .map_err(|e2| StorageError::Corrupt(format!("tx {bid}/{canon}: {e2}")))?;
                txs.push(tx);
            }
            out.push(Arc::new(Block {
                header,
                transactions: txs,
            }));
        }
        Ok(out)
    }

    /// Reads *one transaction* without materializing its block — the
    /// tuple-granular random read of the layered-index cost model
    /// (Eq. 3). On disk this is a single positioned read of exactly the
    /// tuple's bytes inside its partition extent.
    pub fn read_tx_direct(&self, ptr: TxPtr) -> Result<Transaction> {
        match &self.backend {
            Backend::Memory { blocks } => {
                let (bytes, range) = {
                    let guard = blocks.read();
                    let m = guard
                        .get(ptr.block as usize)
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    let range = *m
                        .tx_ranges
                        .get(ptr.index as usize)
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    (Arc::clone(&m.bytes), range)
                };
                let (off, len) = (range.0 as usize, range.1 as usize);
                self.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(len as u64, Ordering::Relaxed);
                Transaction::from_bytes(&bytes[off..off + len])
                    .map_err(|e| StorageError::Corrupt(format!("tx {:?}: {e}", ptr)))
            }
            Backend::Disk { .. } => {
                let mut txs = self.read_txs_in_block(ptr.block, &[ptr.index])?;
                txs.pop().ok_or(StorageError::NotFound(ptr.block))
            }
        }
    }

    /// Reads the transactions at `indexes` within block `bid` without
    /// materializing the block. On disk the requested tuples are
    /// coalesced into one positioned read per touched partition
    /// (covering their contiguous span within that partition's extent),
    /// and only the requested tuples are decoded; `bytes_read` is
    /// charged the spans. Results come back in `indexes` order;
    /// duplicates are decoded per occurrence so `txs_read` accounting
    /// matches issuing the pointers one by one.
    pub fn read_txs_in_block(&self, bid: BlockId, indexes: &[u32]) -> Result<Vec<Transaction>> {
        if indexes.is_empty() {
            return Ok(Vec::new());
        }
        match &self.backend {
            Backend::Memory { .. } => indexes
                .iter()
                .map(|&i| {
                    self.read_tx_direct(TxPtr {
                        block: bid,
                        index: i,
                    })
                })
                .collect(),
            Backend::Disk {
                parts,
                entries,
                tx_locs,
                ..
            } => {
                let entry = entries
                    .read()
                    .get(bid as usize)
                    .cloned()
                    .ok_or(StorageError::NotFound(bid))?;
                let table = tx_locs
                    .read()
                    .get(bid as usize)
                    .map(Arc::clone)
                    .ok_or(StorageError::NotFound(bid))?;
                use std::collections::HashMap;
                let mut lohi: HashMap<u8, (u32, u32)> = HashMap::new();
                for &i in indexes {
                    let l = table.get(i as usize).ok_or(StorageError::NotFound(bid))?;
                    let e = lohi.entry(l.part).or_insert((u32::MAX, 0));
                    e.0 = e.0.min(l.off);
                    e.1 = e.1.max(l.off + l.len);
                }
                let mut fetched: HashMap<u8, (u32, Vec<u8>)> = HashMap::new();
                for (&part, &(lo, hi)) in &lohi {
                    let ext = entry
                        .parts
                        .iter()
                        .find(|(q, _)| *q == part)
                        .map(|(_, l)| *l)
                        .ok_or_else(|| {
                            StorageError::Corrupt(format!(
                                "block {bid}: tuples routed to absent partition {part}"
                            ))
                        })?;
                    let bytes = parts[part as usize].reader.read(Location {
                        segment: ext.segment,
                        offset: ext.offset + lo as u64,
                        len: hi - lo,
                    })?;
                    self.stats
                        .bytes_read
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    fetched.insert(part, (lo, bytes));
                }
                self.stats
                    .txs_read
                    .fetch_add(indexes.len() as u64, Ordering::Relaxed);
                indexes
                    .iter()
                    .map(|&i| {
                        let l = table.get(i as usize).ok_or(StorageError::NotFound(bid))?;
                        let (lo, bytes) = fetched.get(&l.part).ok_or_else(|| {
                            StorageError::Corrupt(format!("block {bid}: span missing partition"))
                        })?;
                        let rel = (l.off - lo) as usize;
                        Transaction::from_bytes(&bytes[rel..rel + l.len as usize])
                            .map_err(|e| StorageError::Corrupt(format!("tx {bid}/{i}: {e}")))
                    })
                    .collect()
            }
        }
    }

    /// Reads, for each block in `bids`, only the tuples of `table`'s
    /// relation partition — the per-relation scan that stops paying for
    /// unrelated relations' bytes. Returns `(canonical index, tx)`
    /// pairs in canonical order per block (blocks without the partition
    /// yield empty vectors). Note: at partition counts below the table
    /// count, co-located relations share an extent, so callers still
    /// filter by table name; canonical indexes let them keep block-
    /// order semantics. Charges one `blocks_read` per block and only
    /// the partition extents' `bytes_read` (no `txs_read`, matching
    /// full-scan accounting).
    pub fn read_relation_txs(
        &self,
        bids: &[BlockId],
        table: &str,
    ) -> Result<Vec<Vec<(u32, Transaction)>>> {
        if bids.is_empty() {
            return Ok(Vec::new());
        }
        self.stats
            .blocks_read
            .fetch_add(bids.len() as u64, Ordering::Relaxed);
        let route = route_of(table, self.partitions);
        match &self.backend {
            Backend::Disk {
                parts,
                entries,
                tx_locs,
                ..
            } => {
                let (ents, locs): (Vec<BlockEntry>, Vec<TxLocs>) = {
                    let eg = entries.read();
                    let lg = tx_locs.read();
                    let mut es = Vec::with_capacity(bids.len());
                    let mut ls = Vec::with_capacity(bids.len());
                    for &b in bids {
                        es.push(
                            eg.get(b as usize)
                                .cloned()
                                .ok_or(StorageError::NotFound(b))?,
                        );
                        ls.push(
                            lg.get(b as usize)
                                .map(Arc::clone)
                                .ok_or(StorageError::NotFound(b))?,
                        );
                    }
                    (es, ls)
                };
                let mut items: Vec<usize> = Vec::new();
                let mut plocs: Vec<Location> = Vec::new();
                for (k, e) in ents.iter().enumerate() {
                    if let Some((_, loc)) = e.parts.iter().find(|(q, _)| *q == route) {
                        items.push(k);
                        plocs.push(*loc);
                    }
                }
                let extents = self.read_coalesced(&parts[route as usize].reader, &plocs)?;
                let mut out: Vec<Vec<(u32, Transaction)>> = vec![Vec::new(); bids.len()];
                for (k, ext) in items.into_iter().zip(extents) {
                    let bid = bids[k];
                    let mut txs = Vec::new();
                    for (canon, l) in locs[k].iter().enumerate() {
                        if l.part != route {
                            continue;
                        }
                        let s = l.off as usize;
                        let t = s + l.len as usize;
                        if t > ext.len() {
                            return Err(StorageError::Corrupt(format!(
                                "block {bid}: tuple {canon} overruns its extent"
                            )));
                        }
                        let tx = Transaction::from_bytes(&ext[s..t])
                            .map_err(|e| StorageError::Corrupt(format!("tx {bid}/{canon}: {e}")))?;
                        txs.push((canon as u32, tx));
                    }
                    out[k] = txs;
                }
                Ok(out)
            }
            Backend::Memory { blocks } => {
                let guard = blocks.read();
                bids.iter()
                    .map(|&b| {
                        let m = guard.get(b as usize).ok_or(StorageError::NotFound(b))?;
                        let mut txs = Vec::new();
                        let mut charged = 0u64;
                        for (i, &r) in m.routes.iter().enumerate() {
                            if r != route {
                                continue;
                            }
                            let (off, len) = m.tx_ranges[i];
                            charged += len as u64;
                            let tx = Transaction::from_bytes(
                                &m.bytes[off as usize..(off + len) as usize],
                            )
                            .map_err(|e| StorageError::Corrupt(format!("tx {b}/{i}: {e}")))?;
                            txs.push((i as u32, tx));
                        }
                        self.stats.bytes_read.fetch_add(charged, Ordering::Relaxed);
                        Ok(txs)
                    })
                    .collect()
            }
        }
    }

    /// Shared read instrumentation (opens, in-flight gauges, probe)
    /// across the chain and every partition reader of a disk store;
    /// `None` on the memory backend.
    pub fn read_gauges(&self) -> Option<&Arc<ReadGauges>> {
        match &self.backend {
            Backend::Disk { gauges, .. } => Some(gauges),
            Backend::Memory { .. } => None,
        }
    }

    /// Serialized size of block `bid` in bytes (its canonical encoding:
    /// on disk, the chain record minus the route bytes plus the
    /// partition extents).
    pub fn block_size(&self, bid: BlockId) -> Result<usize> {
        match &self.backend {
            Backend::Disk {
                entries, tx_locs, ..
            } => {
                let (chain_len, ext): (usize, u64) = {
                    let eg = entries.read();
                    let e = eg.get(bid as usize).ok_or(StorageError::NotFound(bid))?;
                    (
                        e.chain.len as usize,
                        e.parts.iter().map(|(_, l)| l.len as u64).sum(),
                    )
                };
                let ntx = tx_locs
                    .read()
                    .get(bid as usize)
                    .map(|t| t.len())
                    .ok_or(StorageError::NotFound(bid))?;
                Ok(chain_len - ntx + ext as usize)
            }
            Backend::Memory { blocks } => blocks
                .read()
                .get(bid as usize)
                .map(|m| m.bytes.len())
                .ok_or(StorageError::NotFound(bid)),
        }
    }
}

/// Which cache fronts the store — the two contenders of Fig. 22.
pub enum CacheMode {
    /// No caching; every read hits the backend.
    None,
    /// Cache recently read whole blocks.
    Block(BlockCache),
    /// Cache recently read individual transactions.
    Tx(TxCache),
}

/// A block store fronted by the selected cache.
pub struct CachedStore {
    /// The raw store.
    pub store: Arc<BlockStore>,
    /// Selected caching strategy.
    pub cache: CacheMode,
}

impl CachedStore {
    /// Wraps `store` with `cache`.
    pub fn new(store: Arc<BlockStore>, cache: CacheMode) -> Self {
        CachedStore { store, cache }
    }

    /// Reads a whole block, consulting the block cache when enabled.
    pub fn read_block(&self, bid: BlockId) -> Result<Arc<Block>> {
        if let CacheMode::Block(cache) = &self.cache {
            if let Some(b) = cache.get(bid) {
                return Ok(b);
            }
            let b = self.store.read(bid)?;
            let size = self.store.block_size(bid).unwrap_or(b.byte_len());
            cache.put(bid, Arc::clone(&b), size);
            return Ok(b);
        }
        self.store.read(bid)
    }

    /// Reads one transaction through the selected cache. With the
    /// transaction cache, a hit avoids touching the block entirely —
    /// the behaviour Fig. 22 measures. Misses (and the no-cache mode)
    /// use tuple-granular reads; the block-cache mode reads whole
    /// blocks (that is the strategy being compared).
    pub fn read_tx(&self, ptr: TxPtr) -> Result<Arc<Transaction>> {
        match &self.cache {
            CacheMode::Tx(cache) => {
                if let Some(tx) = cache.get(ptr.as_u64()) {
                    self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                    return Ok(tx);
                }
                let tx = Arc::new(self.store.read_tx_direct(ptr)?);
                cache.put(ptr.as_u64(), Arc::clone(&tx), tx.byte_len());
                Ok(tx)
            }
            CacheMode::Block(_) => {
                let block = self.read_block(ptr.block)?;
                let tx = block
                    .transactions
                    .get(ptr.index as usize)
                    .cloned()
                    .ok_or(StorageError::NotFound(ptr.block))?;
                self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(tx))
            }
            CacheMode::None => Ok(Arc::new(self.store.read_tx_direct(ptr)?)),
        }
    }

    /// Reads many transactions, grouped by containing block, fetching
    /// distinct blocks across workers. Results come back in input
    /// order. Per-pointer read granularity matches [`Self::read_tx`]:
    ///
    /// * block-cache mode reads each distinct block once (instead of
    ///   once per pointer) and extracts every requested tuple from it;
    /// * tx-cache and no-cache modes keep tuple-granular reads per
    ///   pointer, so the cost-model counters ([`IoStats`]) are the
    ///   same as issuing the pointers one by one.
    pub fn read_txs_grouped(&self, ptrs: &[TxPtr]) -> Result<Vec<Arc<Transaction>>> {
        if ptrs.len() <= 1 {
            return ptrs.iter().map(|&p| self.read_tx(p)).collect();
        }
        // Group pointers by block in first-seen order, remembering each
        // pointer's position so output order survives the fan-out.
        let mut group_of: std::collections::HashMap<BlockId, usize> =
            std::collections::HashMap::new();
        let mut groups: Vec<(BlockId, Vec<(usize, TxPtr)>)> = Vec::new();
        for (pos, &ptr) in ptrs.iter().enumerate() {
            let gi = *group_of.entry(ptr.block).or_insert_with(|| {
                groups.push((ptr.block, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push((pos, ptr));
        }
        let fetched =
            sebdb_parallel::par_map(&groups, 1, |(bid, members)| self.read_group(*bid, members));
        let mut out: Vec<Option<Arc<Transaction>>> = vec![None; ptrs.len()];
        for group in fetched {
            for (pos, tx) in group? {
                out[pos] = Some(tx);
            }
        }
        // invariant: every requested pointer position was grouped above
        // and read_group returns one tuple per member, so every slot is
        // filled once the groups land; an unfilled slot means a grouped
        // read silently dropped a member, which is corruption, not a
        // panic.
        out.into_iter()
            .map(|t| {
                t.ok_or_else(|| {
                    StorageError::Corrupt("grouped read left a pointer unresolved".into())
                })
            })
            .collect()
    }

    /// Fetches one block's worth of grouped pointers. In tx-cache and
    /// no-cache modes the members that miss the cache are coalesced
    /// into span reads ([`BlockStore::read_txs_in_block`]) instead
    /// of issuing a pread per pointer; counters stay equivalent to
    /// pointwise reads (one `txs_read` per member, hits included).
    fn read_group(
        &self,
        bid: BlockId,
        members: &[(usize, TxPtr)],
    ) -> Result<Vec<(usize, Arc<Transaction>)>> {
        if let CacheMode::Block(_) = &self.cache {
            let block = self.read_block(bid)?;
            self.store
                .stats
                .txs_read
                .fetch_add(members.len() as u64, Ordering::Relaxed);
            return members
                .iter()
                .map(|&(pos, ptr)| {
                    let tx = block
                        .transactions
                        .get(ptr.index as usize)
                        .cloned()
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    Ok((pos, Arc::new(tx)))
                })
                .collect();
        }
        let mut out: Vec<(usize, Option<Arc<Transaction>>)> = Vec::with_capacity(members.len());
        let mut misses: Vec<(usize, u32)> = Vec::new();
        for &(pos, ptr) in members {
            let hit = match &self.cache {
                CacheMode::Tx(cache) => cache.get(ptr.as_u64()),
                _ => None,
            };
            if hit.is_some() {
                self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
            } else {
                misses.push((out.len(), ptr.index));
            }
            out.push((pos, hit));
        }
        if !misses.is_empty() {
            let indexes: Vec<u32> = misses.iter().map(|&(_, i)| i).collect();
            let fetched = self.store.read_txs_in_block(bid, &indexes)?;
            for (&(slot, index), tx) in misses.iter().zip(fetched) {
                let tx = Arc::new(tx);
                if let CacheMode::Tx(cache) = &self.cache {
                    let ptr = TxPtr { block: bid, index };
                    cache.put(ptr.as_u64(), Arc::clone(&tx), tx.byte_len());
                }
                out[slot].1 = Some(tx);
            }
        }
        out.into_iter()
            .map(|(pos, tx)| {
                let tx = tx.ok_or_else(|| {
                    StorageError::Corrupt(format!("group member unresolved in block {bid}"))
                })?;
                Ok((pos, tx))
            })
            .collect()
    }

    /// Reads a run of consecutive blocks, coalescing physically
    /// contiguous cache misses into span reads of at most
    /// [`readahead_blocks`] blocks each — the sequential-scan readahead
    /// of Figs. 11–12. Results come back in `bids` order.
    pub fn read_blocks_span(&self, bids: &[BlockId]) -> Result<Vec<Arc<Block>>> {
        if bids.len() <= 1 {
            return bids.iter().map(|&b| self.read_block(b)).collect();
        }
        let mut out: Vec<Option<Arc<Block>>> = vec![None; bids.len()];
        let mut misses: Vec<(usize, BlockId)> = Vec::new();
        for (slot, &bid) in bids.iter().enumerate() {
            if let CacheMode::Block(cache) = &self.cache {
                if let Some(b) = cache.get(bid) {
                    out[slot] = Some(b);
                    continue;
                }
            }
            misses.push((slot, bid));
        }
        let window = readahead_blocks().max(1);
        let mut run_start = 0usize;
        while run_start < misses.len() {
            let mut run_end = run_start + 1;
            while run_end < misses.len()
                && run_end - run_start < window
                && misses[run_end].1 == misses[run_end - 1].1 + 1
            {
                run_end += 1;
            }
            let first_bid = misses[run_start].1;
            let blocks = self.store.read_span(first_bid, run_end - run_start)?;
            for (k, b) in blocks.into_iter().enumerate() {
                let (slot, bid) = misses[run_start + k];
                if let CacheMode::Block(cache) = &self.cache {
                    let size = self.store.block_size(bid).unwrap_or(b.byte_len());
                    cache.put(bid, Arc::clone(&b), size);
                }
                out[slot] = Some(b);
            }
            run_start = run_end;
        }
        out.into_iter()
            .zip(bids)
            .map(|(b, &bid)| {
                b.ok_or_else(|| StorageError::Corrupt(format!("span read missed block {bid}")))
            })
            .collect()
    }

    /// Relation-partition scan through the cache: block-cache hits are
    /// filtered in memory (same tuples the partition extent holds);
    /// misses go straight to the store's partition read *without*
    /// populating the cache — a relation scan reading one partition
    /// must not evict whole blocks it never materialized.
    pub fn read_relation_txs(
        &self,
        bids: &[BlockId],
        table: &str,
    ) -> Result<Vec<Vec<(u32, Transaction)>>> {
        let CacheMode::Block(cache) = &self.cache else {
            return self.store.read_relation_txs(bids, table);
        };
        let partitions = self.store.partitions();
        let route = route_of(table, partitions);
        let mut out: Vec<Option<Vec<(u32, Transaction)>>> = vec![None; bids.len()];
        let mut misses: Vec<(usize, BlockId)> = Vec::new();
        for (slot, &bid) in bids.iter().enumerate() {
            if let Some(b) = cache.get(bid) {
                let txs = b
                    .transactions
                    .iter()
                    .enumerate()
                    .filter(|(_, tx)| route_of(&tx.tname, partitions) == route)
                    .map(|(i, tx)| (i as u32, tx.clone()))
                    .collect();
                out[slot] = Some(txs);
            } else {
                misses.push((slot, bid));
            }
        }
        if !misses.is_empty() {
            let miss_bids: Vec<BlockId> = misses.iter().map(|&(_, b)| b).collect();
            let fetched = self.store.read_relation_txs(&miss_bids, table)?;
            for ((slot, _), txs) in misses.iter().zip(fetched) {
                out[*slot] = Some(txs);
            }
        }
        out.into_iter()
            .map(|v| {
                v.ok_or_else(|| {
                    StorageError::Corrupt("relation read left a block unresolved".into())
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_types::Value;

    fn block(height: u64, prev: Digest, ntx: usize) -> Block {
        block_tables(height, prev, ntx, &["donate"])
    }

    fn block_tables(height: u64, prev: Digest, ntx: usize, tables: &[&str]) -> Block {
        let txs = (0..ntx)
            .map(|i| {
                let mut t = Transaction::new(
                    height * 1000 + i as u64,
                    sebdb_crypto::sig::KeyId([1; 8]),
                    tables[i % tables.len()],
                    vec![Value::Int(i as i64)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(prev, height, height, txs, |_| vec![0u8; 4])
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sebdb-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn count_segments(dir: &Path) -> usize {
        let mut n = 0;
        if let Ok(rd) = std::fs::read_dir(dir) {
            for e in rd.flatten() {
                let path = e.path();
                if path.is_dir() {
                    n += count_segments(&path);
                } else if e.file_name().to_string_lossy().starts_with("seg-") {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn memory_append_read() {
        let s = BlockStore::in_memory();
        let b0 = block(0, Digest::ZERO, 3);
        s.append(&b0).unwrap();
        assert_eq!(s.height(), 1);
        assert_eq!(*s.read(0).unwrap(), b0);
        assert!(s.read(1).is_err());
    }

    #[test]
    fn rejects_out_of_order_append() {
        let s = BlockStore::in_memory();
        let b = block(5, Digest::ZERO, 1);
        assert!(s.append(&b).is_err());
    }

    #[test]
    fn disk_roundtrip_and_restart() {
        let dir = tmpdir("roundtrip");
        let b0 = block_tables(0, Digest::ZERO, 4, &["donate", "volunteer", "need"]);
        let b1 = block_tables(1, b0.header.block_hash, 3, &["volunteer", "donate"]);
        {
            let s = BlockStore::open(&dir, StoreConfig::default()).unwrap();
            s.append(&b0).unwrap();
            s.append(&b1).unwrap();
            assert_eq!(*s.read(1).unwrap(), b1);
        }
        // Reopen and check the manifest replay.
        let s = BlockStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.height(), 2);
        assert_eq!(*s.read(0).unwrap(), b0);
        assert_eq!(*s.read(1).unwrap(), b1);
        // And we can continue appending.
        let b2 = block(2, b1.header.block_hash, 1);
        s.append(&b2).unwrap();
        assert_eq!(*s.read(2).unwrap(), b2);
    }

    #[test]
    fn disk_small_segments_roll() {
        let dir = tmpdir("roll");
        let cfg = StoreConfig {
            segment_size: 256, // force a roll every block or two
            ..StoreConfig::default()
        };
        let s = BlockStore::open(&dir, cfg.clone()).unwrap();
        let mut prev = Digest::ZERO;
        let mut blocks = Vec::new();
        for h in 0..6 {
            let b = block(h, prev, 2);
            prev = b.header.block_hash;
            s.append(&b).unwrap();
            blocks.push(b);
        }
        for (h, b) in blocks.iter().enumerate() {
            assert_eq!(*s.read(h as u64).unwrap(), *b);
        }
        // More than one segment file must exist across the partitions.
        let segs = count_segments(&dir);
        assert!(segs > 1, "expected multiple segments, got {segs}");
    }

    #[test]
    fn partitions_one_collapses_to_single_extent() {
        let dir = tmpdir("p1");
        let cfg = StoreConfig {
            partitions: 1,
            ..StoreConfig::default()
        };
        let s = BlockStore::open(&dir, cfg).unwrap();
        let b0 = block_tables(0, Digest::ZERO, 5, &["donate", "volunteer", "need"]);
        s.append(&b0).unwrap();
        assert_eq!(s.partitions(), 1);
        assert_eq!(*s.read(0).unwrap(), b0);
        // Reopen keeps the on-disk partition count even if the config
        // asks for more.
        drop(s);
        let s = BlockStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.partitions(), 1);
        assert_eq!(*s.read(0).unwrap(), b0);
    }

    #[test]
    fn block_cache_avoids_backend_reads() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 2)).unwrap();
        let cached = CachedStore::new(
            Arc::clone(&store),
            CacheMode::Block(BlockCache::new(1 << 20)),
        );
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        assert_eq!(store.stats.snapshot().0, 1, "only first read hits backend");
    }

    #[test]
    fn tx_cache_avoids_block_reads() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 4)).unwrap();
        let cached = CachedStore::new(Arc::clone(&store), CacheMode::Tx(TxCache::new(1 << 20)));
        let ptr = TxPtr { block: 0, index: 2 };
        let a = cached.read_tx(ptr).unwrap();
        let b = cached.read_tx(ptr).unwrap();
        assert_eq!(a, b);
        // Miss uses a tuple-granular read (no block read), hit uses the
        // cache.
        assert_eq!(store.stats.snapshot().0, 0);
        assert_eq!(store.stats.snapshot().2, 2);
    }

    #[test]
    fn no_cache_reads_backend_every_time() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 2)).unwrap();
        let cached = CachedStore::new(Arc::clone(&store), CacheMode::None);
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        assert_eq!(store.stats.snapshot().0, 2);
    }

    #[test]
    fn grouped_reads_match_pointwise_reads_in_every_cache_mode() {
        let store = Arc::new(BlockStore::in_memory());
        let mut prev = Digest::ZERO;
        for h in 0..4 {
            let b = block(h, prev, 5);
            prev = b.header.block_hash;
            store.append(&b).unwrap();
        }
        // Mixed order, repeats, and multiple pointers per block.
        let ptrs: Vec<TxPtr> = [(2, 1), (0, 4), (2, 3), (1, 0), (0, 4), (3, 2), (1, 1)]
            .iter()
            .map(|&(b, i)| TxPtr { block: b, index: i })
            .collect();
        let modes: [fn() -> CacheMode; 3] = [
            || CacheMode::None,
            || CacheMode::Block(BlockCache::new(1 << 20)),
            || CacheMode::Tx(TxCache::new(1 << 20)),
        ];
        for make_mode in modes {
            let pointwise = CachedStore::new(Arc::clone(&store), make_mode());
            let expect: Vec<_> = ptrs
                .iter()
                .map(|&p| pointwise.read_tx(p).unwrap())
                .collect();
            let grouped = CachedStore::new(Arc::clone(&store), make_mode());
            store.stats.reset();
            let got = grouped.read_txs_grouped(&ptrs).unwrap();
            assert_eq!(got, expect);
            // Tuple-read accounting is identical to pointwise reads.
            assert_eq!(store.stats.snapshot().2, ptrs.len() as u64);
        }
        // Out-of-range pointers surface as errors, not panics.
        let grouped = CachedStore::new(Arc::clone(&store), CacheMode::None);
        assert!(grouped
            .read_txs_grouped(&[TxPtr { block: 9, index: 0 }, TxPtr { block: 0, index: 0 }])
            .is_err());
    }

    #[test]
    fn relation_reads_return_only_the_tables_partition() {
        for partitions in [1usize, 8] {
            let store = BlockStore::in_memory_with(StoreConfig {
                partitions,
                ..StoreConfig::default()
            });
            let b = block_tables(0, Digest::ZERO, 6, &["donate", "volunteer"]);
            store.append(&b).unwrap();
            let got = store.read_relation_txs(&[0], "donate").unwrap();
            let route = route_of("donate", partitions);
            let expect: Vec<(u32, Transaction)> = b
                .transactions
                .iter()
                .enumerate()
                .filter(|(_, tx)| route_of(&tx.tname, partitions) == route)
                .map(|(i, tx)| (i as u32, tx.clone()))
                .collect();
            assert_eq!(got[0], expect);
            // The queried table's tuples are always present.
            assert!(got[0]
                .iter()
                .any(|(_, tx)| tx.tname.eq_ignore_ascii_case("donate")));
        }
    }

    #[test]
    fn txptr_packing_is_injective_for_small_indices() {
        let a = TxPtr { block: 1, index: 0 };
        let b = TxPtr { block: 0, index: 1 };
        assert_ne!(a.as_u64(), b.as_u64());
    }
}
