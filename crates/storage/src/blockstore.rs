//! The block store: append-only persistence for the chain.
//!
//! Blocks are the *only* copy of on-chain data (§I: "the system only
//! maintains one copy of the data"). The store appends serialized
//! blocks to [`segment`](crate::segment) files, records their
//! [`Location`]s in an append-only manifest for restart, and serves
//! random reads by block id. A memory backend backs unit tests and
//! pure-CPU benchmarks.

use crate::cache::{BlockCache, TxCache};
use crate::segment::{Location, Result, SegmentSet, SegmentWriter, StorageError};
use parking_lot::{Mutex, RwLock};
use sebdb_types::{Block, BlockId, Codec, Transaction};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Environment knob naming the sequential-scan readahead window (max
/// consecutive blocks fetched with one coalesced positioned read).
pub const READAHEAD_ENV: &str = "SEBDB_READAHEAD";

/// Default readahead window when [`READAHEAD_ENV`] is unset.
pub const DEFAULT_READAHEAD_BLOCKS: usize = 8;

static READAHEAD: AtomicUsize = AtomicUsize::new(0); // 0 = uninitialized

fn default_readahead() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(READAHEAD_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or(DEFAULT_READAHEAD_BLOCKS)
    })
}

/// Current readahead window in blocks (≥ 1; 1 disables coalescing so
/// sequential scans read block by block, the pre-coalescing behaviour).
pub fn readahead_blocks() -> usize {
    match READAHEAD.load(Ordering::Relaxed) {
        0 => default_readahead(),
        n => n,
    }
}

/// Overrides the readahead window (clamped to ≥ 1). Benchmarks and
/// equivalence tests sweep this.
pub fn set_readahead_blocks(n: usize) {
    READAHEAD.store(n.max(1), Ordering::Relaxed);
}

/// Points at one transaction inside one block — what the second-level
/// index leaves store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxPtr {
    /// Containing block.
    pub block: BlockId,
    /// Position within the block body.
    pub index: u32,
}

impl TxPtr {
    /// Packs the pointer into a cache key.
    pub fn as_u64(&self) -> u64 {
        (self.block << 24) | self.index as u64
    }
}

/// Block store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Segment file size; the paper's default is 256 MB.
    pub segment_size: u64,
    /// Fsync every appended block (off for benchmarks).
    pub sync_writes: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_size: 256 * 1024 * 1024,
            sync_writes: false,
        }
    }
}

/// Read/write counters the benchmark harness reports (the paper's cost
/// model, Eqs. 1–3, counts block accesses and tuple reads).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Blocks fetched from disk (or the memory backend).
    pub blocks_read: AtomicU64,
    /// Blocks appended.
    pub blocks_written: AtomicU64,
    /// Individual transactions materialized.
    pub txs_read: AtomicU64,
    /// Payload bytes actually fetched from the backend. A tuple-granular
    /// read charges only the tuple's bytes (plus coalescing gaps inside
    /// one span); a block read charges the whole block — this is the
    /// counter that makes the Eq. 3 tuple-vs-block comparison honest.
    pub bytes_read: AtomicU64,
}

impl IoStats {
    /// Snapshot as (blocks_read, blocks_written, txs_read).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.blocks_read.load(Ordering::Relaxed),
            self.blocks_written.load(Ordering::Relaxed),
            self.txs_read.load(Ordering::Relaxed),
        )
    }

    /// Payload bytes fetched from the backend so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.txs_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
    }
}

/// One block's transaction offset table: `table[i]` is the
/// `(offset, len)` byte range of transaction `i` within the block's
/// encoding, shared between the store and in-flight readers.
type TxTable = Arc<Vec<(u32, u32)>>;

// One Backend exists per store, so the Disk/Memory size gap is
// irrelevant — boxing the disk state would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Disk {
        writer: Mutex<SegmentWriter>,
        reader: SegmentSet,
        manifest: Mutex<BufWriter<File>>,
        locations: RwLock<Vec<Location>>,
        /// Per-block transaction offset tables (mirrors the on-disk
        /// [`TXTAB`] file), serving tuple-granular positioned reads
        /// (Eq. 3).
        txtab: Mutex<BufWriter<File>>,
        tx_tables: RwLock<Vec<TxTable>>,
    },
    /// Blocks kept as *encoded bytes* so every read pays the realistic
    /// decode cost (an in-memory store handing out `Arc<Block>` clones
    /// would make full scans artificially free and erase the access-
    /// path cost differences the paper measures).
    Memory { blocks: RwLock<Vec<MemBlock>> },
}

struct MemBlock {
    bytes: Arc<Vec<u8>>,
    /// Byte range of each transaction within `bytes`, enabling
    /// tuple-granular random reads (the layered index's
    /// `p · (t_S + t_T)` cost, Eq. 3).
    tx_ranges: Arc<Vec<(u32, u32)>>,
}

/// Encodes a block once, recording each transaction's byte range within
/// the encoding (header ‖ u32 count ‖ transactions) as it goes — the
/// append path derives both the stored bytes and the offset table from
/// a single encoding pass.
fn encode_with_ranges(block: &Block) -> (Vec<u8>, Vec<(u32, u32)>) {
    let mut enc = sebdb_types::Encoder::new();
    block.header.encode(&mut enc);
    enc.put_u32(block.transactions.len() as u32);
    let mut ranges = Vec::with_capacity(block.transactions.len());
    for tx in &block.transactions {
        let start = enc.len() as u32;
        tx.encode(&mut enc);
        ranges.push((start, enc.len() as u32 - start));
    }
    (enc.finish(), ranges)
}

/// Computes each transaction's byte range within a block's encoding
/// (reconstruction path for chains written before the offset table
/// existed).
fn tx_ranges_of(block: &Block) -> Vec<(u32, u32)> {
    encode_with_ranges(block).1
}

/// The append-only block store.
pub struct BlockStore {
    backend: Backend,
    config: StoreConfig,
    /// I/O counters.
    pub stats: IoStats,
}

const MANIFEST: &str = "manifest.idx";
/// One manifest record: bid(8) seg(4) off(8) len(4).
const MANIFEST_REC: usize = 24;
/// The on-disk transaction offset table, appended alongside the
/// manifest: one variable-length record per block,
/// `bid(8) ‖ count(4) ‖ count × (off(4) ‖ len(4))`. Missing or torn
/// records (old-format chains, crashes) are reconstructed on open by
/// re-reading the affected blocks.
const TXTAB: &str = "txoffsets.idx";

/// Copies the first `N` bytes of `slice` into an array. Callers pass
/// slices cut to exactly `N` bytes by the replay bounds checks.
fn fixed<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&slice[..N]);
    out
}

/// Serializes one [`TXTAB`] record.
fn txtab_record(bid: u64, ranges: &[(u32, u32)]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(12 + ranges.len() * 8);
    rec.extend_from_slice(&bid.to_le_bytes());
    rec.extend_from_slice(&(ranges.len() as u32).to_le_bytes());
    for &(off, len) in ranges {
        rec.extend_from_slice(&off.to_le_bytes());
        rec.extend_from_slice(&len.to_le_bytes());
    }
    rec
}

impl BlockStore {
    /// Opens (or creates) a disk-backed store in `dir`, replaying the
    /// manifest to restore block locations and the transaction offset
    /// table (reconstructing any missing tail — chains written before
    /// the table existed, or a record torn by a crash).
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let locations = Self::replay_manifest(&dir.join(MANIFEST))?;
        let resume = locations
            .last()
            .map(|l| (l.segment, l.offset + l.len as u64));
        let writer = SegmentWriter::open(dir, config.segment_size, resume)?;
        let manifest_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(MANIFEST))?;
        // Drop any torn trailing manifest record.
        manifest_file.set_len((locations.len() * MANIFEST_REC) as u64)?;
        let reader = SegmentSet::new(dir);
        let (tx_tables, txtab_file) = Self::replay_txtab(&dir.join(TXTAB), &locations, &reader)?;
        Ok(BlockStore {
            backend: Backend::Disk {
                writer: Mutex::new(writer),
                reader,
                manifest: Mutex::new(BufWriter::new(manifest_file)),
                locations: RwLock::new(locations),
                txtab: Mutex::new(BufWriter::new(txtab_file)),
                tx_tables: RwLock::new(tx_tables),
            },
            config,
            stats: IoStats::default(),
        })
    }

    /// Replays the [`TXTAB`] file against the manifest's `locations`,
    /// keeping the longest valid prefix and reconstructing the rest by
    /// reading the blocks themselves. Returns the in-memory tables and
    /// the (truncated, caught-up) append handle.
    fn replay_txtab(
        path: &PathBuf,
        locations: &[Location],
        reader: &SegmentSet,
    ) -> Result<(Vec<TxTable>, File)> {
        let mut tables: Vec<TxTable> = Vec::with_capacity(locations.len());
        let mut valid_bytes: u64 = 0;
        if let Ok(mut f) = File::open(path) {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            let mut at = 0usize;
            while tables.len() < locations.len() && buf.len() - at >= 12 {
                let bid = u64::from_le_bytes(fixed::<8>(&buf[at..at + 8]));
                let count = u32::from_le_bytes(fixed::<4>(&buf[at + 8..at + 12])) as usize;
                let body = 12 + count * 8;
                if bid != tables.len() as u64 || buf.len() - at < body {
                    break; // stale or torn record: reconstruct from here
                }
                let mut ranges = Vec::with_capacity(count);
                for i in 0..count {
                    let p = at + 12 + i * 8;
                    ranges.push((
                        u32::from_le_bytes(fixed::<4>(&buf[p..p + 4])),
                        u32::from_le_bytes(fixed::<4>(&buf[p + 4..p + 8])),
                    ));
                }
                tables.push(Arc::new(ranges));
                at += body;
                valid_bytes = at as u64;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        // Drop everything past the valid prefix (torn tail, or records
        // beyond the manifest's view after a crash between the two
        // appends), then reconstruct the missing entries.
        file.set_len(valid_bytes)?;
        let mut appender = BufWriter::new(file);
        for (bid, loc) in locations.iter().enumerate().skip(tables.len()) {
            let bytes = reader.read(*loc)?;
            let block = Block::from_bytes(&bytes)
                .map_err(|e| StorageError::Corrupt(format!("block {bid}: {e}")))?;
            let ranges = tx_ranges_of(&block);
            appender.write_all(&txtab_record(bid as u64, &ranges))?;
            tables.push(Arc::new(ranges));
        }
        appender.flush()?;
        let file = appender
            .into_inner()
            .map_err(|e| StorageError::Io(e.into_error()))?;
        Ok((tables, file))
    }

    /// Creates a memory-backed store (tests, pure-CPU benchmarks).
    /// Blocks are held encoded; reads decode, so access-path costs stay
    /// realistic.
    pub fn in_memory() -> Self {
        BlockStore {
            backend: Backend::Memory {
                blocks: RwLock::new(Vec::new()),
            },
            config: StoreConfig::default(),
            stats: IoStats::default(),
        }
    }

    fn replay_manifest(path: &PathBuf) -> Result<Vec<Location>> {
        let mut locations = Vec::new();
        let Ok(mut f) = File::open(path) else {
            return Ok(locations);
        };
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        // invariant: chunks_exact(MANIFEST_REC) yields exactly
        // MANIFEST_REC-byte records, so every fixed-width field slice
        // below converts infallibly.
        fn field<const N: usize>(rec: &[u8], at: usize) -> [u8; N] {
            let mut out = [0u8; N];
            out.copy_from_slice(&rec[at..at + N]);
            out
        }
        for (i, rec) in buf.chunks_exact(MANIFEST_REC).enumerate() {
            let bid = u64::from_le_bytes(field(rec, 0));
            if bid != i as u64 {
                return Err(StorageError::Corrupt(format!(
                    "manifest record {i} has bid {bid}"
                )));
            }
            locations.push(Location {
                segment: u32::from_le_bytes(field(rec, 8)),
                offset: u64::from_le_bytes(field(rec, 12)),
                len: u32::from_le_bytes(field(rec, 20)),
            });
        }
        Ok(locations)
    }

    /// Number of stored blocks (= chain height).
    pub fn height(&self) -> u64 {
        match &self.backend {
            Backend::Disk { locations, .. } => locations.read().len() as u64,
            Backend::Memory { blocks } => blocks.read().len() as u64,
        }
    }

    /// Appends a sealed block. The block's height must equal the current
    /// store height (blocks arrive strictly in order).
    pub fn append(&self, block: &Block) -> Result<()> {
        let expect = self.height();
        if block.header.height != expect {
            return Err(StorageError::Corrupt(format!(
                "appending block height {} but store height is {}",
                block.header.height, expect
            )));
        }
        self.stats.blocks_written.fetch_add(1, Ordering::Relaxed);
        // One encoding pass yields both the stored bytes and the
        // transaction offset table.
        let (bytes, ranges) = encode_with_ranges(block);
        match &self.backend {
            Backend::Disk {
                writer,
                manifest,
                locations,
                txtab,
                tx_tables,
                ..
            } => {
                let mut w = writer.lock();
                let loc = w.append(&bytes)?;
                if self.config.sync_writes {
                    w.sync()?;
                } else {
                    w.flush()?;
                }
                drop(w);
                let mut rec = [0u8; MANIFEST_REC];
                rec[0..8].copy_from_slice(&block.header.height.to_le_bytes());
                rec[8..12].copy_from_slice(&loc.segment.to_le_bytes());
                rec[12..20].copy_from_slice(&loc.offset.to_le_bytes());
                rec[20..24].copy_from_slice(&loc.len.to_le_bytes());
                let mut m = manifest.lock();
                m.write_all(&rec)?;
                m.flush()?;
                locations.write().push(loc);
                drop(m);
                // The offset table trails the manifest; a crash between
                // the two appends heals on open (reconstruction).
                let mut t = txtab.lock();
                t.write_all(&txtab_record(block.header.height, &ranges))?;
                t.flush()?;
                tx_tables.write().push(Arc::new(ranges));
            }
            Backend::Memory { blocks } => {
                blocks.write().push(MemBlock {
                    bytes: Arc::new(bytes),
                    tx_ranges: Arc::new(ranges),
                });
            }
        }
        Ok(())
    }

    /// Reads block `bid` from the backend (no caching here — see
    /// [`CachedStore`]).
    pub fn read(&self, bid: BlockId) -> Result<Arc<Block>> {
        self.stats.blocks_read.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::Disk {
                reader, locations, ..
            } => {
                let loc = *locations
                    .read()
                    .get(bid as usize)
                    .ok_or(StorageError::NotFound(bid))?;
                let bytes = reader.read(loc)?;
                self.stats
                    .bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                let block = Block::from_bytes(&bytes)
                    .map_err(|e| StorageError::Corrupt(format!("block {bid}: {e}")))?;
                Ok(Arc::new(block))
            }
            Backend::Memory { blocks } => {
                let bytes = blocks
                    .read()
                    .get(bid as usize)
                    .map(|m| Arc::clone(&m.bytes))
                    .ok_or(StorageError::NotFound(bid))?;
                self.stats
                    .bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                let block = Block::from_bytes(&bytes)
                    .map_err(|e| StorageError::Corrupt(format!("block {bid}: {e}")))?;
                Ok(Arc::new(block))
            }
        }
    }

    /// Reads several consecutive blocks starting at `start`, coalescing
    /// physically adjacent blocks (same segment, back-to-back offsets)
    /// into single positioned reads — the readahead path of sequential
    /// scans (Figs. 11–12). Counters match `count` individual reads:
    /// one `blocks_read` per block; `bytes_read` is identical because
    /// coalesced blocks are contiguous on disk.
    pub fn read_span(&self, start: BlockId, count: usize) -> Result<Vec<Arc<Block>>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let Backend::Disk {
            reader, locations, ..
        } = &self.backend
        else {
            return (start..start + count as u64)
                .map(|b| self.read(b))
                .collect();
        };
        let locs: Vec<Location> = {
            let guard = locations.read();
            (start..start + count as u64)
                .map(|b| {
                    guard
                        .get(b as usize)
                        .copied()
                        .ok_or(StorageError::NotFound(b))
                })
                .collect::<Result<_>>()?
        };
        let mut out = Vec::with_capacity(count);
        let mut run_start = 0usize;
        while run_start < locs.len() {
            // Extend the run while the next block sits immediately after
            // the previous one in the same segment (and the combined
            // span still fits a u32 length).
            let mut run_end = run_start + 1;
            while run_end < locs.len() {
                let prev = locs[run_end - 1];
                let next = locs[run_end];
                let contiguous =
                    next.segment == prev.segment && next.offset == prev.offset + prev.len as u64;
                let span = next.offset + next.len as u64 - locs[run_start].offset;
                if !contiguous || span > u32::MAX as u64 {
                    break;
                }
                run_end += 1;
            }
            let first = locs[run_start];
            let last = locs[run_end - 1];
            let span_len = (last.offset + last.len as u64 - first.offset) as u32;
            let span = reader.read(Location {
                segment: first.segment,
                offset: first.offset,
                len: span_len,
            })?;
            self.stats
                .bytes_read
                .fetch_add(span.len() as u64, Ordering::Relaxed);
            self.stats
                .blocks_read
                .fetch_add((run_end - run_start) as u64, Ordering::Relaxed);
            for (i, loc) in locs[run_start..run_end].iter().enumerate() {
                let rel = (loc.offset - first.offset) as usize;
                let bid = start + (run_start + i) as u64;
                let block = Block::from_bytes(&span[rel..rel + loc.len as usize])
                    .map_err(|e| StorageError::Corrupt(format!("block {bid}: {e}")))?;
                out.push(Arc::new(block));
            }
            run_start = run_end;
        }
        Ok(out)
    }

    /// Reads *one transaction* without materializing its block — the
    /// tuple-granular random read of the layered-index cost model
    /// (Eq. 3). On disk this is a single positioned read of exactly the
    /// tuple's bytes, located via the persistent offset table.
    pub fn read_tx_direct(&self, ptr: TxPtr) -> Result<Transaction> {
        match &self.backend {
            Backend::Memory { blocks } => {
                let (bytes, range) = {
                    let guard = blocks.read();
                    let m = guard
                        .get(ptr.block as usize)
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    let range = *m
                        .tx_ranges
                        .get(ptr.index as usize)
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    (Arc::clone(&m.bytes), range)
                };
                let (off, len) = (range.0 as usize, range.1 as usize);
                self.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(len as u64, Ordering::Relaxed);
                Transaction::from_bytes(&bytes[off..off + len])
                    .map_err(|e| StorageError::Corrupt(format!("tx {:?}: {e}", ptr)))
            }
            Backend::Disk { .. } => {
                let mut txs = self.read_txs_in_block(ptr.block, &[ptr.index])?;
                txs.pop().ok_or(StorageError::NotFound(ptr.block))
            }
        }
    }

    /// Reads the transactions at `indexes` within block `bid` without
    /// materializing the block. On disk the requested tuples are
    /// coalesced into one positioned read covering their contiguous
    /// span, and only the requested tuples are decoded; `bytes_read` is
    /// charged the span (which may include gap bytes between requested
    /// tuples). Results come back in `indexes` order; duplicates are
    /// decoded per occurrence so `txs_read` accounting matches
    /// issuing the pointers one by one.
    pub fn read_txs_in_block(&self, bid: BlockId, indexes: &[u32]) -> Result<Vec<Transaction>> {
        if indexes.is_empty() {
            return Ok(Vec::new());
        }
        match &self.backend {
            Backend::Memory { .. } => indexes
                .iter()
                .map(|&i| {
                    self.read_tx_direct(TxPtr {
                        block: bid,
                        index: i,
                    })
                })
                .collect(),
            Backend::Disk {
                reader,
                locations,
                tx_tables,
                ..
            } => {
                let loc = *locations
                    .read()
                    .get(bid as usize)
                    .ok_or(StorageError::NotFound(bid))?;
                let table = tx_tables
                    .read()
                    .get(bid as usize)
                    .map(Arc::clone)
                    .ok_or(StorageError::NotFound(bid))?;
                let mut lo = u32::MAX;
                let mut hi = 0u32;
                for &i in indexes {
                    let &(off, len) = table.get(i as usize).ok_or(StorageError::NotFound(bid))?;
                    lo = lo.min(off);
                    hi = hi.max(off + len);
                }
                let span = reader.read(Location {
                    segment: loc.segment,
                    offset: loc.offset + lo as u64,
                    len: hi - lo,
                })?;
                self.stats
                    .txs_read
                    .fetch_add(indexes.len() as u64, Ordering::Relaxed);
                self.stats
                    .bytes_read
                    .fetch_add(span.len() as u64, Ordering::Relaxed);
                indexes
                    .iter()
                    .map(|&i| {
                        // invariant: every index was bounds-checked in
                        // the span pass above, so this get always hits.
                        let &(off, len) =
                            table.get(i as usize).ok_or(StorageError::NotFound(bid))?;
                        let rel = (off - lo) as usize;
                        Transaction::from_bytes(&span[rel..rel + len as usize])
                            .map_err(|e| StorageError::Corrupt(format!("tx {bid}/{i}: {e}")))
                    })
                    .collect()
            }
        }
    }

    /// The [`SegmentSet`] backing a disk store, exposing its open/
    /// in-flight instrumentation and read probe to concurrency tests
    /// and benches; `None` on the memory backend.
    pub fn segment_reader(&self) -> Option<&SegmentSet> {
        match &self.backend {
            Backend::Disk { reader, .. } => Some(reader),
            Backend::Memory { .. } => None,
        }
    }

    /// Serialized size of block `bid` in bytes.
    pub fn block_size(&self, bid: BlockId) -> Result<usize> {
        match &self.backend {
            Backend::Disk { locations, .. } => Ok(locations
                .read()
                .get(bid as usize)
                .ok_or(StorageError::NotFound(bid))?
                .len as usize),
            Backend::Memory { blocks } => blocks
                .read()
                .get(bid as usize)
                .map(|m| m.bytes.len())
                .ok_or(StorageError::NotFound(bid)),
        }
    }
}

/// Which cache fronts the store — the two contenders of Fig. 22.
pub enum CacheMode {
    /// No caching; every read hits the backend.
    None,
    /// Cache recently read whole blocks.
    Block(BlockCache),
    /// Cache recently read individual transactions.
    Tx(TxCache),
}

/// A block store fronted by the selected cache.
pub struct CachedStore {
    /// The raw store.
    pub store: Arc<BlockStore>,
    /// Selected caching strategy.
    pub cache: CacheMode,
}

impl CachedStore {
    /// Wraps `store` with `cache`.
    pub fn new(store: Arc<BlockStore>, cache: CacheMode) -> Self {
        CachedStore { store, cache }
    }

    /// Reads a whole block, consulting the block cache when enabled.
    pub fn read_block(&self, bid: BlockId) -> Result<Arc<Block>> {
        if let CacheMode::Block(cache) = &self.cache {
            if let Some(b) = cache.get(bid) {
                return Ok(b);
            }
            let b = self.store.read(bid)?;
            let size = self.store.block_size(bid).unwrap_or(b.byte_len());
            cache.put(bid, Arc::clone(&b), size);
            return Ok(b);
        }
        self.store.read(bid)
    }

    /// Reads one transaction through the selected cache. With the
    /// transaction cache, a hit avoids touching the block entirely —
    /// the behaviour Fig. 22 measures. Misses (and the no-cache mode)
    /// use tuple-granular reads; the block-cache mode reads whole
    /// blocks (that is the strategy being compared).
    pub fn read_tx(&self, ptr: TxPtr) -> Result<Arc<Transaction>> {
        match &self.cache {
            CacheMode::Tx(cache) => {
                if let Some(tx) = cache.get(ptr.as_u64()) {
                    self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                    return Ok(tx);
                }
                let tx = Arc::new(self.store.read_tx_direct(ptr)?);
                cache.put(ptr.as_u64(), Arc::clone(&tx), tx.byte_len());
                Ok(tx)
            }
            CacheMode::Block(_) => {
                let block = self.read_block(ptr.block)?;
                let tx = block
                    .transactions
                    .get(ptr.index as usize)
                    .cloned()
                    .ok_or(StorageError::NotFound(ptr.block))?;
                self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(tx))
            }
            CacheMode::None => Ok(Arc::new(self.store.read_tx_direct(ptr)?)),
        }
    }

    /// Reads many transactions, grouped by containing block, fetching
    /// distinct blocks across workers. Results come back in input
    /// order. Per-pointer read granularity matches [`Self::read_tx`]:
    ///
    /// * block-cache mode reads each distinct block once (instead of
    ///   once per pointer) and extracts every requested tuple from it;
    /// * tx-cache and no-cache modes keep tuple-granular reads per
    ///   pointer, so the cost-model counters ([`IoStats`]) are the
    ///   same as issuing the pointers one by one.
    pub fn read_txs_grouped(&self, ptrs: &[TxPtr]) -> Result<Vec<Arc<Transaction>>> {
        if ptrs.len() <= 1 {
            return ptrs.iter().map(|&p| self.read_tx(p)).collect();
        }
        // Group pointers by block in first-seen order, remembering each
        // pointer's position so output order survives the fan-out.
        let mut group_of: std::collections::HashMap<BlockId, usize> =
            std::collections::HashMap::new();
        let mut groups: Vec<(BlockId, Vec<(usize, TxPtr)>)> = Vec::new();
        for (pos, &ptr) in ptrs.iter().enumerate() {
            let gi = *group_of.entry(ptr.block).or_insert_with(|| {
                groups.push((ptr.block, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push((pos, ptr));
        }
        let fetched =
            sebdb_parallel::par_map(&groups, 1, |(bid, members)| self.read_group(*bid, members));
        let mut out: Vec<Option<Arc<Transaction>>> = vec![None; ptrs.len()];
        for group in fetched {
            for (pos, tx) in group? {
                out[pos] = Some(tx);
            }
        }
        // invariant: every requested pointer position was grouped above
        // and read_group returns one tuple per member, so every slot is
        // filled once the groups land; an unfilled slot means a grouped
        // read silently dropped a member, which is corruption, not a
        // panic.
        out.into_iter()
            .map(|t| {
                t.ok_or_else(|| {
                    StorageError::Corrupt("grouped read left a pointer unresolved".into())
                })
            })
            .collect()
    }

    /// Fetches one block's worth of grouped pointers. In tx-cache and
    /// no-cache modes the members that miss the cache are coalesced
    /// into one span read ([`BlockStore::read_txs_in_block`]) instead
    /// of issuing a pread per pointer; counters stay equivalent to
    /// pointwise reads (one `txs_read` per member, hits included).
    fn read_group(
        &self,
        bid: BlockId,
        members: &[(usize, TxPtr)],
    ) -> Result<Vec<(usize, Arc<Transaction>)>> {
        if let CacheMode::Block(_) = &self.cache {
            let block = self.read_block(bid)?;
            self.store
                .stats
                .txs_read
                .fetch_add(members.len() as u64, Ordering::Relaxed);
            return members
                .iter()
                .map(|&(pos, ptr)| {
                    let tx = block
                        .transactions
                        .get(ptr.index as usize)
                        .cloned()
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    Ok((pos, Arc::new(tx)))
                })
                .collect();
        }
        let mut out: Vec<(usize, Option<Arc<Transaction>>)> = Vec::with_capacity(members.len());
        let mut misses: Vec<(usize, u32)> = Vec::new();
        for &(pos, ptr) in members {
            let hit = match &self.cache {
                CacheMode::Tx(cache) => cache.get(ptr.as_u64()),
                _ => None,
            };
            if hit.is_some() {
                self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
            } else {
                misses.push((out.len(), ptr.index));
            }
            out.push((pos, hit));
        }
        if !misses.is_empty() {
            let indexes: Vec<u32> = misses.iter().map(|&(_, i)| i).collect();
            let fetched = self.store.read_txs_in_block(bid, &indexes)?;
            for (&(slot, index), tx) in misses.iter().zip(fetched) {
                let tx = Arc::new(tx);
                if let CacheMode::Tx(cache) = &self.cache {
                    let ptr = TxPtr { block: bid, index };
                    cache.put(ptr.as_u64(), Arc::clone(&tx), tx.byte_len());
                }
                out[slot].1 = Some(tx);
            }
        }
        out.into_iter()
            .map(|(pos, tx)| {
                let tx = tx.ok_or_else(|| {
                    StorageError::Corrupt(format!("group member unresolved in block {bid}"))
                })?;
                Ok((pos, tx))
            })
            .collect()
    }

    /// Reads a run of consecutive blocks, coalescing physically
    /// contiguous cache misses into span reads of at most
    /// [`readahead_blocks`] blocks each — the sequential-scan readahead
    /// of Figs. 11–12. Results come back in `bids` order.
    pub fn read_blocks_span(&self, bids: &[BlockId]) -> Result<Vec<Arc<Block>>> {
        if bids.len() <= 1 {
            return bids.iter().map(|&b| self.read_block(b)).collect();
        }
        let mut out: Vec<Option<Arc<Block>>> = vec![None; bids.len()];
        let mut misses: Vec<(usize, BlockId)> = Vec::new();
        for (slot, &bid) in bids.iter().enumerate() {
            if let CacheMode::Block(cache) = &self.cache {
                if let Some(b) = cache.get(bid) {
                    out[slot] = Some(b);
                    continue;
                }
            }
            misses.push((slot, bid));
        }
        let window = readahead_blocks().max(1);
        let mut run_start = 0usize;
        while run_start < misses.len() {
            let mut run_end = run_start + 1;
            while run_end < misses.len()
                && run_end - run_start < window
                && misses[run_end].1 == misses[run_end - 1].1 + 1
            {
                run_end += 1;
            }
            let first_bid = misses[run_start].1;
            let blocks = self.store.read_span(first_bid, run_end - run_start)?;
            for (k, b) in blocks.into_iter().enumerate() {
                let (slot, bid) = misses[run_start + k];
                if let CacheMode::Block(cache) = &self.cache {
                    let size = self.store.block_size(bid).unwrap_or(b.byte_len());
                    cache.put(bid, Arc::clone(&b), size);
                }
                out[slot] = Some(b);
            }
            run_start = run_end;
        }
        out.into_iter()
            .zip(bids)
            .map(|(b, &bid)| {
                b.ok_or_else(|| StorageError::Corrupt(format!("span read missed block {bid}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_types::Value;

    fn block(height: u64, prev: Digest, ntx: usize) -> Block {
        let txs = (0..ntx)
            .map(|i| {
                let mut t = Transaction::new(
                    height * 1000 + i as u64,
                    sebdb_crypto::sig::KeyId([1; 8]),
                    "donate",
                    vec![Value::Int(i as i64)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(prev, height, height, txs, |_| vec![0u8; 4])
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sebdb-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_append_read() {
        let s = BlockStore::in_memory();
        let b0 = block(0, Digest::ZERO, 3);
        s.append(&b0).unwrap();
        assert_eq!(s.height(), 1);
        assert_eq!(*s.read(0).unwrap(), b0);
        assert!(s.read(1).is_err());
    }

    #[test]
    fn rejects_out_of_order_append() {
        let s = BlockStore::in_memory();
        let b = block(5, Digest::ZERO, 1);
        assert!(s.append(&b).is_err());
    }

    #[test]
    fn disk_roundtrip_and_restart() {
        let dir = tmpdir("roundtrip");
        let b0 = block(0, Digest::ZERO, 2);
        let b1 = block(1, b0.header.block_hash, 3);
        {
            let s = BlockStore::open(&dir, StoreConfig::default()).unwrap();
            s.append(&b0).unwrap();
            s.append(&b1).unwrap();
            assert_eq!(*s.read(1).unwrap(), b1);
        }
        // Reopen and check the manifest replay.
        let s = BlockStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.height(), 2);
        assert_eq!(*s.read(0).unwrap(), b0);
        assert_eq!(*s.read(1).unwrap(), b1);
        // And we can continue appending.
        let b2 = block(2, b1.header.block_hash, 1);
        s.append(&b2).unwrap();
        assert_eq!(*s.read(2).unwrap(), b2);
    }

    #[test]
    fn disk_small_segments_roll() {
        let dir = tmpdir("roll");
        let cfg = StoreConfig {
            segment_size: 256, // force a roll every block or two
            sync_writes: false,
        };
        let s = BlockStore::open(&dir, cfg.clone()).unwrap();
        let mut prev = Digest::ZERO;
        let mut blocks = Vec::new();
        for h in 0..6 {
            let b = block(h, prev, 2);
            prev = b.header.block_hash;
            s.append(&b).unwrap();
            blocks.push(b);
        }
        for (h, b) in blocks.iter().enumerate() {
            assert_eq!(*s.read(h as u64).unwrap(), *b);
        }
        // More than one segment file must exist.
        let segs = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("seg-")
            })
            .count();
        assert!(segs > 1, "expected multiple segments, got {segs}");
    }

    #[test]
    fn block_cache_avoids_backend_reads() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 2)).unwrap();
        let cached = CachedStore::new(
            Arc::clone(&store),
            CacheMode::Block(BlockCache::new(1 << 20)),
        );
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        assert_eq!(store.stats.snapshot().0, 1, "only first read hits backend");
    }

    #[test]
    fn tx_cache_avoids_block_reads() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 4)).unwrap();
        let cached = CachedStore::new(Arc::clone(&store), CacheMode::Tx(TxCache::new(1 << 20)));
        let ptr = TxPtr { block: 0, index: 2 };
        let a = cached.read_tx(ptr).unwrap();
        let b = cached.read_tx(ptr).unwrap();
        assert_eq!(a, b);
        // Miss uses a tuple-granular read (no block read), hit uses the
        // cache.
        assert_eq!(store.stats.snapshot().0, 0);
        assert_eq!(store.stats.snapshot().2, 2);
    }

    #[test]
    fn no_cache_reads_backend_every_time() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 2)).unwrap();
        let cached = CachedStore::new(Arc::clone(&store), CacheMode::None);
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        assert_eq!(store.stats.snapshot().0, 2);
    }

    #[test]
    fn grouped_reads_match_pointwise_reads_in_every_cache_mode() {
        let store = Arc::new(BlockStore::in_memory());
        let mut prev = Digest::ZERO;
        for h in 0..4 {
            let b = block(h, prev, 5);
            prev = b.header.block_hash;
            store.append(&b).unwrap();
        }
        // Mixed order, repeats, and multiple pointers per block.
        let ptrs: Vec<TxPtr> = [(2, 1), (0, 4), (2, 3), (1, 0), (0, 4), (3, 2), (1, 1)]
            .iter()
            .map(|&(b, i)| TxPtr { block: b, index: i })
            .collect();
        let modes: [fn() -> CacheMode; 3] = [
            || CacheMode::None,
            || CacheMode::Block(BlockCache::new(1 << 20)),
            || CacheMode::Tx(TxCache::new(1 << 20)),
        ];
        for make_mode in modes {
            let pointwise = CachedStore::new(Arc::clone(&store), make_mode());
            let expect: Vec<_> = ptrs
                .iter()
                .map(|&p| pointwise.read_tx(p).unwrap())
                .collect();
            let grouped = CachedStore::new(Arc::clone(&store), make_mode());
            store.stats.reset();
            let got = grouped.read_txs_grouped(&ptrs).unwrap();
            assert_eq!(got, expect);
            // Tuple-read accounting is identical to pointwise reads.
            assert_eq!(store.stats.snapshot().2, ptrs.len() as u64);
        }
        // Out-of-range pointers surface as errors, not panics.
        let grouped = CachedStore::new(Arc::clone(&store), CacheMode::None);
        assert!(grouped
            .read_txs_grouped(&[TxPtr { block: 9, index: 0 }, TxPtr { block: 0, index: 0 }])
            .is_err());
    }

    #[test]
    fn txptr_packing_is_injective_for_small_indices() {
        let a = TxPtr { block: 1, index: 0 };
        let b = TxPtr { block: 0, index: 1 };
        assert_ne!(a.as_u64(), b.as_u64());
    }
}
