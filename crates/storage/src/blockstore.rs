//! The block store: append-only persistence for the chain.
//!
//! Blocks are the *only* copy of on-chain data (§I: "the system only
//! maintains one copy of the data"). The store appends serialized
//! blocks to [`segment`](crate::segment) files, records their
//! [`Location`]s in an append-only manifest for restart, and serves
//! random reads by block id. A memory backend backs unit tests and
//! pure-CPU benchmarks.

use crate::cache::{BlockCache, TxCache};
use crate::segment::{Location, Result, SegmentSet, SegmentWriter, StorageError};
use parking_lot::{Mutex, RwLock};
use sebdb_types::{Block, BlockId, Codec, Transaction};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Points at one transaction inside one block — what the second-level
/// index leaves store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxPtr {
    /// Containing block.
    pub block: BlockId,
    /// Position within the block body.
    pub index: u32,
}

impl TxPtr {
    /// Packs the pointer into a cache key.
    pub fn as_u64(&self) -> u64 {
        (self.block << 24) | self.index as u64
    }
}

/// Block store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Segment file size; the paper's default is 256 MB.
    pub segment_size: u64,
    /// Fsync every appended block (off for benchmarks).
    pub sync_writes: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_size: 256 * 1024 * 1024,
            sync_writes: false,
        }
    }
}

/// Read/write counters the benchmark harness reports (the paper's cost
/// model, Eqs. 1–3, counts block accesses and tuple reads).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Blocks fetched from disk (or the memory backend).
    pub blocks_read: AtomicU64,
    /// Blocks appended.
    pub blocks_written: AtomicU64,
    /// Individual transactions materialized.
    pub txs_read: AtomicU64,
}

impl IoStats {
    /// Snapshot as (blocks_read, blocks_written, txs_read).
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.blocks_read.load(Ordering::Relaxed),
            self.blocks_written.load(Ordering::Relaxed),
            self.txs_read.load(Ordering::Relaxed),
        )
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.txs_read.store(0, Ordering::Relaxed);
    }
}

enum Backend {
    Disk {
        writer: Mutex<SegmentWriter>,
        reader: SegmentSet,
        manifest: Mutex<BufWriter<File>>,
        locations: RwLock<Vec<Location>>,
    },
    /// Blocks kept as *encoded bytes* so every read pays the realistic
    /// decode cost (an in-memory store handing out `Arc<Block>` clones
    /// would make full scans artificially free and erase the access-
    /// path cost differences the paper measures).
    Memory { blocks: RwLock<Vec<MemBlock>> },
}

struct MemBlock {
    bytes: Arc<Vec<u8>>,
    /// Byte range of each transaction within `bytes`, enabling
    /// tuple-granular random reads (the layered index's
    /// `p · (t_S + t_T)` cost, Eq. 3).
    tx_ranges: Arc<Vec<(u32, u32)>>,
}

/// Computes each transaction's byte range within a block's encoding
/// (header ‖ u32 count ‖ transactions).
fn tx_ranges_of(block: &Block) -> Vec<(u32, u32)> {
    let mut enc = sebdb_types::Encoder::new();
    block.header.encode(&mut enc);
    let mut off = (enc.len() + 4) as u32;
    block
        .transactions
        .iter()
        .map(|tx| {
            let len = tx.to_bytes().len() as u32;
            let range = (off, len);
            off += len;
            range
        })
        .collect()
}

/// The append-only block store.
pub struct BlockStore {
    backend: Backend,
    config: StoreConfig,
    /// I/O counters.
    pub stats: IoStats,
}

const MANIFEST: &str = "manifest.idx";
/// One manifest record: bid(8) seg(4) off(8) len(4).
const MANIFEST_REC: usize = 24;

impl BlockStore {
    /// Opens (or creates) a disk-backed store in `dir`, replaying the
    /// manifest to restore block locations.
    pub fn open(dir: &Path, config: StoreConfig) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let locations = Self::replay_manifest(&dir.join(MANIFEST))?;
        let resume = locations
            .last()
            .map(|l| (l.segment, l.offset + l.len as u64));
        let writer = SegmentWriter::open(dir, config.segment_size, resume)?;
        let manifest_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(MANIFEST))?;
        // Drop any torn trailing manifest record.
        manifest_file.set_len((locations.len() * MANIFEST_REC) as u64)?;
        Ok(BlockStore {
            backend: Backend::Disk {
                writer: Mutex::new(writer),
                reader: SegmentSet::new(dir),
                manifest: Mutex::new(BufWriter::new(manifest_file)),
                locations: RwLock::new(locations),
            },
            config,
            stats: IoStats::default(),
        })
    }

    /// Creates a memory-backed store (tests, pure-CPU benchmarks).
    /// Blocks are held encoded; reads decode, so access-path costs stay
    /// realistic.
    pub fn in_memory() -> Self {
        BlockStore {
            backend: Backend::Memory {
                blocks: RwLock::new(Vec::new()),
            },
            config: StoreConfig::default(),
            stats: IoStats::default(),
        }
    }

    fn replay_manifest(path: &PathBuf) -> Result<Vec<Location>> {
        let mut locations = Vec::new();
        let Ok(mut f) = File::open(path) else {
            return Ok(locations);
        };
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        // invariant: chunks_exact(MANIFEST_REC) yields exactly
        // MANIFEST_REC-byte records, so every fixed-width field slice
        // below converts infallibly.
        fn field<const N: usize>(rec: &[u8], at: usize) -> [u8; N] {
            rec[at..at + N]
                .try_into()
                .expect("fixed-width manifest field")
        }
        for (i, rec) in buf.chunks_exact(MANIFEST_REC).enumerate() {
            let bid = u64::from_le_bytes(field(rec, 0));
            if bid != i as u64 {
                return Err(StorageError::Corrupt(format!(
                    "manifest record {i} has bid {bid}"
                )));
            }
            locations.push(Location {
                segment: u32::from_le_bytes(field(rec, 8)),
                offset: u64::from_le_bytes(field(rec, 12)),
                len: u32::from_le_bytes(field(rec, 20)),
            });
        }
        Ok(locations)
    }

    /// Number of stored blocks (= chain height).
    pub fn height(&self) -> u64 {
        match &self.backend {
            Backend::Disk { locations, .. } => locations.read().len() as u64,
            Backend::Memory { blocks } => blocks.read().len() as u64,
        }
    }

    /// Appends a sealed block. The block's height must equal the current
    /// store height (blocks arrive strictly in order).
    pub fn append(&self, block: &Block) -> Result<()> {
        let expect = self.height();
        if block.header.height != expect {
            return Err(StorageError::Corrupt(format!(
                "appending block height {} but store height is {}",
                block.header.height, expect
            )));
        }
        self.stats.blocks_written.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::Disk {
                writer,
                manifest,
                locations,
                ..
            } => {
                let bytes = block.to_bytes();
                let mut w = writer.lock();
                let loc = w.append(&bytes)?;
                if self.config.sync_writes {
                    w.sync()?;
                } else {
                    w.flush()?;
                }
                drop(w);
                let mut rec = [0u8; MANIFEST_REC];
                rec[0..8].copy_from_slice(&block.header.height.to_le_bytes());
                rec[8..12].copy_from_slice(&loc.segment.to_le_bytes());
                rec[12..20].copy_from_slice(&loc.offset.to_le_bytes());
                rec[20..24].copy_from_slice(&loc.len.to_le_bytes());
                let mut m = manifest.lock();
                m.write_all(&rec)?;
                m.flush()?;
                locations.write().push(loc);
            }
            Backend::Memory { blocks } => {
                blocks.write().push(MemBlock {
                    bytes: Arc::new(block.to_bytes()),
                    tx_ranges: Arc::new(tx_ranges_of(block)),
                });
            }
        }
        Ok(())
    }

    /// Reads block `bid` from the backend (no caching here — see
    /// [`CachedStore`]).
    pub fn read(&self, bid: BlockId) -> Result<Arc<Block>> {
        self.stats.blocks_read.fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::Disk {
                reader, locations, ..
            } => {
                let loc = *locations
                    .read()
                    .get(bid as usize)
                    .ok_or(StorageError::NotFound(bid))?;
                let bytes = reader.read(loc)?;
                let block = Block::from_bytes(&bytes)
                    .map_err(|e| StorageError::Corrupt(format!("block {bid}: {e}")))?;
                Ok(Arc::new(block))
            }
            Backend::Memory { blocks } => {
                let bytes = blocks
                    .read()
                    .get(bid as usize)
                    .map(|m| Arc::clone(&m.bytes))
                    .ok_or(StorageError::NotFound(bid))?;
                let block = Block::from_bytes(&bytes)
                    .map_err(|e| StorageError::Corrupt(format!("block {bid}: {e}")))?;
                Ok(Arc::new(block))
            }
        }
    }

    /// Reads *one transaction* without materializing its block — the
    /// tuple-granular random read of the layered-index cost model
    /// (Eq. 3). Falls back to a full block read on backends without a
    /// transaction offset table.
    pub fn read_tx_direct(&self, ptr: TxPtr) -> Result<Transaction> {
        match &self.backend {
            Backend::Memory { blocks } => {
                let (bytes, range) = {
                    let guard = blocks.read();
                    let m = guard
                        .get(ptr.block as usize)
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    let range = *m
                        .tx_ranges
                        .get(ptr.index as usize)
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    (Arc::clone(&m.bytes), range)
                };
                let (off, len) = (range.0 as usize, range.1 as usize);
                self.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                Transaction::from_bytes(&bytes[off..off + len])
                    .map_err(|e| StorageError::Corrupt(format!("tx {:?}: {e}", ptr)))
            }
            Backend::Disk { .. } => {
                self.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                let block = self.read(ptr.block)?;
                block
                    .transactions
                    .get(ptr.index as usize)
                    .cloned()
                    .ok_or(StorageError::NotFound(ptr.block))
            }
        }
    }

    /// Serialized size of block `bid` in bytes.
    pub fn block_size(&self, bid: BlockId) -> Result<usize> {
        match &self.backend {
            Backend::Disk { locations, .. } => Ok(locations
                .read()
                .get(bid as usize)
                .ok_or(StorageError::NotFound(bid))?
                .len as usize),
            Backend::Memory { blocks } => blocks
                .read()
                .get(bid as usize)
                .map(|m| m.bytes.len())
                .ok_or(StorageError::NotFound(bid)),
        }
    }
}

/// Which cache fronts the store — the two contenders of Fig. 22.
pub enum CacheMode {
    /// No caching; every read hits the backend.
    None,
    /// Cache recently read whole blocks.
    Block(BlockCache),
    /// Cache recently read individual transactions.
    Tx(TxCache),
}

/// A block store fronted by the selected cache.
pub struct CachedStore {
    /// The raw store.
    pub store: Arc<BlockStore>,
    /// Selected caching strategy.
    pub cache: CacheMode,
}

impl CachedStore {
    /// Wraps `store` with `cache`.
    pub fn new(store: Arc<BlockStore>, cache: CacheMode) -> Self {
        CachedStore { store, cache }
    }

    /// Reads a whole block, consulting the block cache when enabled.
    pub fn read_block(&self, bid: BlockId) -> Result<Arc<Block>> {
        if let CacheMode::Block(cache) = &self.cache {
            if let Some(b) = cache.get(bid) {
                return Ok(b);
            }
            let b = self.store.read(bid)?;
            let size = self.store.block_size(bid).unwrap_or(b.byte_len());
            cache.put(bid, Arc::clone(&b), size);
            return Ok(b);
        }
        self.store.read(bid)
    }

    /// Reads one transaction through the selected cache. With the
    /// transaction cache, a hit avoids touching the block entirely —
    /// the behaviour Fig. 22 measures. Misses (and the no-cache mode)
    /// use tuple-granular reads; the block-cache mode reads whole
    /// blocks (that is the strategy being compared).
    pub fn read_tx(&self, ptr: TxPtr) -> Result<Arc<Transaction>> {
        match &self.cache {
            CacheMode::Tx(cache) => {
                if let Some(tx) = cache.get(ptr.as_u64()) {
                    self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                    return Ok(tx);
                }
                let tx = Arc::new(self.store.read_tx_direct(ptr)?);
                cache.put(ptr.as_u64(), Arc::clone(&tx), tx.byte_len());
                Ok(tx)
            }
            CacheMode::Block(_) => {
                let block = self.read_block(ptr.block)?;
                let tx = block
                    .transactions
                    .get(ptr.index as usize)
                    .cloned()
                    .ok_or(StorageError::NotFound(ptr.block))?;
                self.store.stats.txs_read.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(tx))
            }
            CacheMode::None => Ok(Arc::new(self.store.read_tx_direct(ptr)?)),
        }
    }

    /// Reads many transactions, grouped by containing block, fetching
    /// distinct blocks across workers. Results come back in input
    /// order. Per-pointer read granularity matches [`Self::read_tx`]:
    ///
    /// * block-cache mode reads each distinct block once (instead of
    ///   once per pointer) and extracts every requested tuple from it;
    /// * tx-cache and no-cache modes keep tuple-granular reads per
    ///   pointer, so the cost-model counters ([`IoStats`]) are the
    ///   same as issuing the pointers one by one.
    pub fn read_txs_grouped(&self, ptrs: &[TxPtr]) -> Result<Vec<Arc<Transaction>>> {
        if ptrs.len() <= 1 {
            return ptrs.iter().map(|&p| self.read_tx(p)).collect();
        }
        // Group pointers by block in first-seen order, remembering each
        // pointer's position so output order survives the fan-out.
        let mut group_of: std::collections::HashMap<BlockId, usize> =
            std::collections::HashMap::new();
        let mut groups: Vec<(BlockId, Vec<(usize, TxPtr)>)> = Vec::new();
        for (pos, &ptr) in ptrs.iter().enumerate() {
            let gi = *group_of.entry(ptr.block).or_insert_with(|| {
                groups.push((ptr.block, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push((pos, ptr));
        }
        let fetched =
            sebdb_parallel::par_map(&groups, 1, |(bid, members)| self.read_group(*bid, members));
        let mut out: Vec<Option<Arc<Transaction>>> = vec![None; ptrs.len()];
        for group in fetched {
            for (pos, tx) in group? {
                out[pos] = Some(tx);
            }
        }
        // invariant: every requested pointer position was grouped above
        // and read_group returns one tuple per member, so every slot is
        // filled once the groups land.
        Ok(out
            .into_iter()
            .map(|t| t.expect("every pointer resolved"))
            .collect())
    }

    /// Fetches one block's worth of grouped pointers.
    fn read_group(
        &self,
        bid: BlockId,
        members: &[(usize, TxPtr)],
    ) -> Result<Vec<(usize, Arc<Transaction>)>> {
        if let CacheMode::Block(_) = &self.cache {
            let block = self.read_block(bid)?;
            self.store
                .stats
                .txs_read
                .fetch_add(members.len() as u64, Ordering::Relaxed);
            return members
                .iter()
                .map(|&(pos, ptr)| {
                    let tx = block
                        .transactions
                        .get(ptr.index as usize)
                        .cloned()
                        .ok_or(StorageError::NotFound(ptr.block))?;
                    Ok((pos, Arc::new(tx)))
                })
                .collect();
        }
        members
            .iter()
            .map(|&(pos, ptr)| Ok((pos, self.read_tx(ptr)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_types::Value;

    fn block(height: u64, prev: Digest, ntx: usize) -> Block {
        let txs = (0..ntx)
            .map(|i| {
                let mut t = Transaction::new(
                    height * 1000 + i as u64,
                    sebdb_crypto::sig::KeyId([1; 8]),
                    "donate",
                    vec![Value::Int(i as i64)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(prev, height, height, txs, |_| vec![0u8; 4])
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sebdb-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_append_read() {
        let s = BlockStore::in_memory();
        let b0 = block(0, Digest::ZERO, 3);
        s.append(&b0).unwrap();
        assert_eq!(s.height(), 1);
        assert_eq!(*s.read(0).unwrap(), b0);
        assert!(s.read(1).is_err());
    }

    #[test]
    fn rejects_out_of_order_append() {
        let s = BlockStore::in_memory();
        let b = block(5, Digest::ZERO, 1);
        assert!(s.append(&b).is_err());
    }

    #[test]
    fn disk_roundtrip_and_restart() {
        let dir = tmpdir("roundtrip");
        let b0 = block(0, Digest::ZERO, 2);
        let b1 = block(1, b0.header.block_hash, 3);
        {
            let s = BlockStore::open(&dir, StoreConfig::default()).unwrap();
            s.append(&b0).unwrap();
            s.append(&b1).unwrap();
            assert_eq!(*s.read(1).unwrap(), b1);
        }
        // Reopen and check the manifest replay.
        let s = BlockStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(s.height(), 2);
        assert_eq!(*s.read(0).unwrap(), b0);
        assert_eq!(*s.read(1).unwrap(), b1);
        // And we can continue appending.
        let b2 = block(2, b1.header.block_hash, 1);
        s.append(&b2).unwrap();
        assert_eq!(*s.read(2).unwrap(), b2);
    }

    #[test]
    fn disk_small_segments_roll() {
        let dir = tmpdir("roll");
        let cfg = StoreConfig {
            segment_size: 256, // force a roll every block or two
            sync_writes: false,
        };
        let s = BlockStore::open(&dir, cfg.clone()).unwrap();
        let mut prev = Digest::ZERO;
        let mut blocks = Vec::new();
        for h in 0..6 {
            let b = block(h, prev, 2);
            prev = b.header.block_hash;
            s.append(&b).unwrap();
            blocks.push(b);
        }
        for (h, b) in blocks.iter().enumerate() {
            assert_eq!(*s.read(h as u64).unwrap(), *b);
        }
        // More than one segment file must exist.
        let segs = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("seg-")
            })
            .count();
        assert!(segs > 1, "expected multiple segments, got {segs}");
    }

    #[test]
    fn block_cache_avoids_backend_reads() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 2)).unwrap();
        let cached = CachedStore::new(
            Arc::clone(&store),
            CacheMode::Block(BlockCache::new(1 << 20)),
        );
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        assert_eq!(store.stats.snapshot().0, 1, "only first read hits backend");
    }

    #[test]
    fn tx_cache_avoids_block_reads() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 4)).unwrap();
        let cached = CachedStore::new(Arc::clone(&store), CacheMode::Tx(TxCache::new(1 << 20)));
        let ptr = TxPtr { block: 0, index: 2 };
        let a = cached.read_tx(ptr).unwrap();
        let b = cached.read_tx(ptr).unwrap();
        assert_eq!(a, b);
        // Miss uses a tuple-granular read (no block read), hit uses the
        // cache.
        assert_eq!(store.stats.snapshot().0, 0);
        assert_eq!(store.stats.snapshot().2, 2);
    }

    #[test]
    fn no_cache_reads_backend_every_time() {
        let store = Arc::new(BlockStore::in_memory());
        store.append(&block(0, Digest::ZERO, 2)).unwrap();
        let cached = CachedStore::new(Arc::clone(&store), CacheMode::None);
        cached.read_block(0).unwrap();
        cached.read_block(0).unwrap();
        assert_eq!(store.stats.snapshot().0, 2);
    }

    #[test]
    fn grouped_reads_match_pointwise_reads_in_every_cache_mode() {
        let store = Arc::new(BlockStore::in_memory());
        let mut prev = Digest::ZERO;
        for h in 0..4 {
            let b = block(h, prev, 5);
            prev = b.header.block_hash;
            store.append(&b).unwrap();
        }
        // Mixed order, repeats, and multiple pointers per block.
        let ptrs: Vec<TxPtr> = [(2, 1), (0, 4), (2, 3), (1, 0), (0, 4), (3, 2), (1, 1)]
            .iter()
            .map(|&(b, i)| TxPtr { block: b, index: i })
            .collect();
        let modes: [fn() -> CacheMode; 3] = [
            || CacheMode::None,
            || CacheMode::Block(BlockCache::new(1 << 20)),
            || CacheMode::Tx(TxCache::new(1 << 20)),
        ];
        for make_mode in modes {
            let pointwise = CachedStore::new(Arc::clone(&store), make_mode());
            let expect: Vec<_> = ptrs
                .iter()
                .map(|&p| pointwise.read_tx(p).unwrap())
                .collect();
            let grouped = CachedStore::new(Arc::clone(&store), make_mode());
            store.stats.reset();
            let got = grouped.read_txs_grouped(&ptrs).unwrap();
            assert_eq!(got, expect);
            // Tuple-read accounting is identical to pointwise reads.
            assert_eq!(store.stats.snapshot().2, ptrs.len() as u64);
        }
        // Out-of-range pointers surface as errors, not panics.
        let grouped = CachedStore::new(Arc::clone(&store), CacheMode::None);
        assert!(grouped
            .read_txs_grouped(&[TxPtr { block: 9, index: 0 }, TxPtr { block: 0, index: 0 }])
            .is_err());
    }

    #[test]
    fn txptr_packing_is_injective_for_small_indices() {
        let a = TxPtr { block: 1, index: 0 };
        let b = TxPtr { block: 0, index: 1 };
        assert_ne!(a.as_u64(), b.as_u64());
    }
}
