//! On-disk paged index checkpoints (DESIGN §13).
//!
//! Every index family can freeze its state at a chain height into one
//! self-validating checkpoint file shaped like an LSM index segment:
//! sorted `(key, value)` entries chunked into ~4 KB **level-1 blocks**,
//! described by a fully-loaded top-level **fence-pointer array** (first
//! key, extent, entry count, checksum per block). Opening a checkpoint
//! touches only the fence/meta tail — O(fences), not O(entries) — and
//! level-1 blocks are loaded lazily through a bounded, sharded
//! [`IndexBlockCache`] tier, so resident memory is O(cache), not
//! O(chain).
//!
//! Durability follows the store's commit-point discipline: a checkpoint
//! is written to a `.tmp` file and published by a single atomic rename,
//! and a published file whose height runs ahead of the block manifest
//! (the real commit point) is discarded on open. Any torn or stale
//! artifact heals by deletion — the family simply replays the chain
//! tail it would have replayed anyway.

use crate::blockstore::{IoStats, WriteStep};
use crate::segment::{read_exact_at, Result, StorageError};
use parking_lot::{Condvar, Mutex};
use sebdb_parallel::Tracked;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Checkpoint file magic, versioned with the format.
pub const INDEX_MAGIC: &[u8; 8] = b"SEBDBIX1";
/// Target payload size of one level-1 index block (one disk page).
pub const INDEX_BLOCK_TARGET: usize = 4 * 1024;
/// Subdirectory of the store holding index checkpoints.
pub const INDEX_CHECKPOINT_DIR: &str = "indexcp";
/// Cache-capacity override: total cached level-1 blocks across all
/// checkpoint files (0 = unbounded, the `cache=∞` reference).
pub const INDEX_CACHE_BLOCKS_ENV: &str = "SEBDB_INDEX_CACHE_BLOCKS";
/// Default bounded capacity when the env var is unset.
pub const DEFAULT_INDEX_CACHE_BLOCKS: usize = 1024;
/// Cache shards (same fan-out as the segment handle cache).
const CACHE_SHARDS: usize = 8;
/// Fixed-size footer: fence_off(8) ‖ fence_count(4) ‖ meta_off(8) ‖
/// entry_count(8) ‖ height(8) ‖ tail_checksum(8) ‖ magic(8).
const FOOTER_LEN: u64 = 52;

/// FNV-1a 64 — the checksum of fence extents and the footer tail.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One frozen index family, ready to write: `entries` sorted strictly
/// ascending by key, an opaque `meta` blob the family interprets, and
/// the chain height the state covers (`[0, height)`).
#[derive(Debug, Clone)]
pub struct IndexCheckpoint {
    /// Family identity (also the on-disk file name, hex-encoded).
    pub family: Vec<u8>,
    /// Chain height covered: the frozen state reflects blocks `< height`.
    pub height: u64,
    /// Opaque family metadata, fully loaded at open.
    pub meta: Vec<u8>,
    /// Sorted `(key, value)` entries.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
}

/// File name of a family's checkpoint: `ix-<hex(family)>.icp`.
pub fn checkpoint_file_name(family: &[u8]) -> String {
    let mut name = String::with_capacity(4 + family.len() * 2 + 4);
    name.push_str("ix-");
    for b in family {
        let hi = b >> 4;
        let lo = b & 0xf;
        for n in [hi, lo] {
            name.push(char::from_digit(u32::from(n), 16).unwrap_or('0'));
        }
    }
    name.push_str(".icp");
    name
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_be_bytes(bytes))
}

fn get_u32(buf: &[u8], at: usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_be_bytes(bytes))
}

fn get_u16(buf: &[u8], at: usize) -> Option<u16> {
    let bytes: [u8; 2] = buf.get(at..at + 2)?.try_into().ok()?;
    Some(u16::from_be_bytes(bytes))
}

fn corrupt(path: &Path, what: &str) -> StorageError {
    StorageError::Corrupt(format!("index checkpoint {}: {what}", path.display()))
}

/// Serializes one entry into a level-1 block body.
fn encode_entry(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    out.extend_from_slice(&(key.len() as u16).to_be_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(value);
}

/// Parses a level-1 block body back into entries.
fn decode_entries(path: &Path, bytes: &[u8], count: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut entries = Vec::with_capacity(count);
    let mut at = 0usize;
    for _ in 0..count {
        let klen = get_u16(bytes, at).ok_or_else(|| corrupt(path, "truncated entry key len"))?;
        at += 2;
        let key = bytes
            .get(at..at + klen as usize)
            .ok_or_else(|| corrupt(path, "truncated entry key"))?
            .to_vec();
        at += klen as usize;
        let vlen = get_u32(bytes, at).ok_or_else(|| corrupt(path, "truncated entry value len"))?;
        at += 4;
        let value = bytes
            .get(at..at + vlen as usize)
            .ok_or_else(|| corrupt(path, "truncated entry value"))?
            .to_vec();
        at += vlen as usize;
        entries.push((key, value));
    }
    if at != bytes.len() {
        return Err(corrupt(path, "level-1 block has trailing bytes"));
    }
    Ok(entries)
}

/// Writes `cp` into `dir` behind the `.tmp` → rename commit point.
/// `fault` is the store's injectable crash hook, consulted before every
/// write boundary (each level-1 block, the fence/footer tail, and the
/// publishing rename).
pub(crate) fn write_checkpoint(
    dir: &Path,
    cp: &IndexCheckpoint,
    sync_writes: bool,
    fault: &dyn Fn(WriteStep) -> Result<()>,
) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let final_path = dir.join(checkpoint_file_name(&cp.family));
    let tmp_path = final_path.with_extension("icp.tmp");

    let mut file = File::create(&tmp_path)?;
    file.write_all(INDEX_MAGIC)?;
    let mut off = INDEX_MAGIC.len() as u64;

    // Level-1 blocks: cut at the target payload size.
    struct FenceRec {
        first_key: Vec<u8>,
        off: u64,
        len: u32,
        count: u32,
        checksum: u64,
    }
    let mut fences: Vec<FenceRec> = Vec::new();
    let mut body = Vec::with_capacity(INDEX_BLOCK_TARGET + 256);
    let mut first_key: Vec<u8> = Vec::new();
    let mut count = 0u32;
    let flush = |file: &mut File,
                 off: &mut u64,
                 body: &mut Vec<u8>,
                 first_key: &mut Vec<u8>,
                 count: &mut u32,
                 fences: &mut Vec<FenceRec>|
     -> Result<()> {
        if body.is_empty() {
            return Ok(());
        }
        fault(WriteStep::IndexBlockWrite(fences.len()))?;
        file.write_all(body)?;
        fences.push(FenceRec {
            first_key: std::mem::take(first_key),
            off: *off,
            len: body.len() as u32,
            count: *count,
            checksum: fnv1a(body),
        });
        *off += body.len() as u64;
        body.clear();
        *count = 0;
        Ok(())
    };
    for (key, value) in &cp.entries {
        if body.is_empty() {
            first_key = key.clone();
        }
        encode_entry(&mut body, key, value);
        count += 1;
        if body.len() >= INDEX_BLOCK_TARGET {
            flush(
                &mut file,
                &mut off,
                &mut body,
                &mut first_key,
                &mut count,
                &mut fences,
            )?;
        }
    }
    flush(
        &mut file,
        &mut off,
        &mut body,
        &mut first_key,
        &mut count,
        &mut fences,
    )?;

    // Fence table + meta + footer, checksummed as one tail so open-time
    // validation is O(fences) without touching any level-1 block.
    fault(WriteStep::IndexFenceWrite)?;
    let fence_off = off;
    let mut tail = Vec::new();
    for f in &fences {
        put_u64(&mut tail, f.off);
        put_u32(&mut tail, f.len);
        put_u32(&mut tail, f.count);
        put_u64(&mut tail, f.checksum);
        tail.extend_from_slice(&(f.first_key.len() as u16).to_be_bytes());
        tail.extend_from_slice(&f.first_key);
    }
    let meta_off = fence_off + tail.len() as u64;
    tail.extend_from_slice(&cp.meta);
    let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
    put_u64(&mut footer, fence_off);
    put_u32(&mut footer, fences.len() as u32);
    put_u64(&mut footer, meta_off);
    put_u64(&mut footer, cp.entries.len() as u64);
    put_u64(&mut footer, cp.height);
    tail.extend_from_slice(&footer);
    let checksum = fnv1a(&tail);
    put_u64(&mut tail, checksum);
    tail.extend_from_slice(INDEX_MAGIC);
    file.write_all(&tail)?;
    file.flush()?;
    if sync_writes {
        file.sync_all()?;
    }
    drop(file);

    // The publishing rename is the checkpoint's commit point.
    fault(WriteStep::IndexPublish)?;
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(())
}

/// Removes stale `.tmp` checkpoint artifacts (torn writers that never
/// reached their publishing rename).
pub(crate) fn sweep_tmp_checkpoints(dir: &Path) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.flatten() {
        let p = entry.path();
        if p.extension().is_some_and(|e| e == "tmp") {
            let _ = std::fs::remove_file(&p);
        }
    }
}

/// One fence-pointer record: the fully-loaded top level of a checkpoint.
#[derive(Debug, Clone)]
struct Fence {
    first_key: Vec<u8>,
    off: u64,
    len: u32,
    /// Global index of this block's first entry (cumulative count).
    start: u64,
    count: u32,
    checksum: u64,
}

/// One lazily-loaded, parsed level-1 index block.
#[derive(Debug)]
pub struct IndexBlock {
    /// The block's sorted entries.
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
    bytes: usize,
}

impl IndexBlock {
    /// Approximate resident size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes
    }
}

/// Bounded, sharded cache of level-1 index blocks, shared by every
/// checkpoint reader of one store. Loads are single-flight: concurrent
/// readers of the same cold block wait on a condvar while one loader
/// performs the pread, so each resident block is read from disk exactly
/// once (the same open-once discipline as the segment handle cache).
pub struct IndexBlockCache {
    shards: Vec<(Mutex<CacheShard>, Condvar)>,
    /// Total block capacity across shards (0 = unbounded).
    capacity: usize,
    stats: Arc<IoStats>,
    next_file_id: AtomicU64,
}

/// One shard: resident blocks, in-flight single-flight keys, and the
/// LRU tick, each under a zero-cost [`Tracked`] marker — the model
/// checker's index-cache suite wraps the same three fields in its
/// race-detecting twin (DESIGN.md §14).
#[derive(Default)]
struct CacheShard {
    map: Tracked<ResidentBlocks>,
    inflight: Tracked<HashSet<(u64, u32)>>,
    tick: Tracked<u64>,
}

/// Resident level-1 blocks keyed by `(family, block_no)`, each tagged
/// with its last-touch LRU tick.
type ResidentBlocks = HashMap<(u64, u32), (Arc<IndexBlock>, u64)>;

impl IndexBlockCache {
    /// A cache holding at most `capacity` blocks (0 = unbounded),
    /// reporting hits/misses into `stats`.
    pub fn new(capacity: usize, stats: Arc<IoStats>) -> Arc<IndexBlockCache> {
        Arc::new(IndexBlockCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| (Mutex::new(CacheShard::default()), Condvar::new()))
                .collect(),
            capacity,
            stats,
            next_file_id: AtomicU64::new(1),
        })
    }

    /// Capacity from the environment (or the default) when the store
    /// config leaves it unset.
    pub fn capacity_from_env() -> usize {
        std::env::var(INDEX_CACHE_BLOCKS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_INDEX_CACHE_BLOCKS)
    }

    /// Configured total block capacity (0 = unbounded).
    pub fn capacity_blocks(&self) -> usize {
        self.capacity
    }

    fn register_file(&self) -> u64 {
        self.next_file_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_of(key: (u64, u32)) -> usize {
        // Fibonacci hash over the packed key, as the block caches do.
        let packed = (key.0 << 32) ^ u64::from(key.1);
        (packed.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize % CACHE_SHARDS
    }

    /// Per-shard capacity: the bound each shard enforces locally.
    fn shard_capacity(&self) -> usize {
        if self.capacity == 0 {
            0
        } else {
            std::cmp::max(1, self.capacity / CACHE_SHARDS)
        }
    }

    /// Returns the cached block or loads it via `load`, single-flight.
    pub fn get_or_load(
        &self,
        file_id: u64,
        block_no: u32,
        load: &dyn Fn() -> Result<IndexBlock>,
    ) -> Result<Arc<IndexBlock>> {
        let key = (file_id, block_no);
        let (lock, cv) = &self.shards[Self::shard_of(key)];
        let mut shard = lock.lock();
        loop {
            let now = shard.tick.with_mut(|t| {
                *t += 1;
                *t
            });
            let hit = shard.map.with_mut(|m| {
                m.get_mut(&key).map(|(block, tick)| {
                    *tick = now;
                    Arc::clone(block)
                })
            });
            if let Some(block) = hit {
                drop(shard);
                self.stats.index_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(block);
            }
            if shard.inflight.with(|i| i.contains(&key)) {
                // Another reader is loading this block: wait rather
                // than issuing a duplicate pread.
                cv.wait(&mut shard);
                continue;
            }
            shard.inflight.with_mut(|i| i.insert(key));
            break;
        }
        drop(shard);

        // The pread + parse happen outside the shard lock.
        let loaded = load();

        let mut shard = lock.lock();
        shard.inflight.with_mut(|i| i.remove(&key));
        let out = match loaded {
            Ok(block) => {
                let block = Arc::new(block);
                let tick = shard.tick.with_mut(|t| {
                    *t += 1;
                    *t
                });
                let cap = self.shard_capacity();
                shard.map.with_mut(|m| {
                    m.insert(key, (Arc::clone(&block), tick));
                    while cap != 0 && m.len() > cap {
                        // Evict the least-recently-used entry (linear
                        // scan: shards are small at realistic
                        // capacities).
                        let Some(victim) = m.iter().min_by_key(|(_, (_, t))| *t).map(|(k, _)| *k)
                        else {
                            break;
                        };
                        m.remove(&victim);
                    }
                });
                self.stats
                    .index_cache_misses
                    .fetch_add(1, Ordering::Relaxed);
                Ok(block)
            }
            Err(e) => Err(e),
        };
        // Waiters must always be woken — on failure they retry the load
        // themselves instead of sleeping forever.
        cv.notify_all();
        drop(shard);
        out
    }

    /// Drops every cached block belonging to `file_id` (a replaced
    /// checkpoint's blocks must never serve a newer reader).
    fn invalidate_file(&self, file_id: u64) {
        for (lock, _) in &self.shards {
            lock.lock()
                .map
                .with_mut(|m| m.retain(|(f, _), _| *f != file_id));
        }
    }

    /// Number of currently cached blocks.
    pub fn resident_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|(l, _)| l.lock().map.with(HashMap::len))
            .sum()
    }

    /// Approximate bytes held by cached blocks.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|(l, _)| {
                l.lock()
                    .map
                    .with(|m| m.values().map(|(b, _)| b.byte_len()).sum::<usize>())
            })
            .sum()
    }
}

/// A reader over one published checkpoint file: the fence array and
/// meta blob are resident; level-1 blocks are served through the
/// store's [`IndexBlockCache`].
pub struct PagedIndexReader {
    file: File,
    path: PathBuf,
    file_id: u64,
    fences: Vec<Fence>,
    meta: Vec<u8>,
    height: u64,
    entry_count: u64,
    cache: Arc<IndexBlockCache>,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for PagedIndexReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedIndexReader")
            .field("path", &self.path)
            .field("height", &self.height)
            .field("fences", &self.fences.len())
            .field("entries", &self.entry_count)
            .finish()
    }
}

impl PagedIndexReader {
    /// Opens and validates a checkpoint: footer magic, tail checksum,
    /// and fence extents (monotone, within the data region). O(fences);
    /// no level-1 block is read.
    pub(crate) fn open(
        path: &Path,
        cache: Arc<IndexBlockCache>,
        stats: Arc<IoStats>,
    ) -> Result<PagedIndexReader> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let header = INDEX_MAGIC.len() as u64;
        if file_len < header + FOOTER_LEN {
            return Err(corrupt(path, "file too short"));
        }
        let mut footer = [0u8; FOOTER_LEN as usize];
        read_exact_at(&file, &mut footer, file_len - FOOTER_LEN)?;
        if &footer[44..52] != INDEX_MAGIC {
            return Err(corrupt(path, "bad footer magic"));
        }
        let fence_off = get_u64(&footer, 0).ok_or_else(|| corrupt(path, "footer"))?;
        let fence_count = get_u32(&footer, 8).ok_or_else(|| corrupt(path, "footer"))?;
        let meta_off = get_u64(&footer, 12).ok_or_else(|| corrupt(path, "footer"))?;
        let entry_count = get_u64(&footer, 20).ok_or_else(|| corrupt(path, "footer"))?;
        let height = get_u64(&footer, 28).ok_or_else(|| corrupt(path, "footer"))?;
        let tail_checksum = get_u64(&footer, 36).ok_or_else(|| corrupt(path, "footer"))?;
        if fence_off < header || fence_off > meta_off || meta_off > file_len - FOOTER_LEN {
            return Err(corrupt(path, "footer offsets out of range"));
        }
        // The checksummed tail spans [fence_off, checksum position).
        let tail_len = (file_len - FOOTER_LEN + 36 - fence_off) as usize;
        let mut tail = vec![0u8; tail_len];
        read_exact_at(&file, &mut tail, fence_off)?;
        if fnv1a(&tail) != tail_checksum {
            return Err(corrupt(path, "tail checksum mismatch"));
        }
        let mut header_magic = [0u8; 8];
        read_exact_at(&file, &mut header_magic, 0)?;
        if &header_magic != INDEX_MAGIC {
            return Err(corrupt(path, "bad header magic"));
        }

        // Parse fences out of the validated tail.
        let mut fences = Vec::with_capacity(fence_count as usize);
        let mut at = 0usize;
        let mut start = 0u64;
        let mut prev_end = header;
        for _ in 0..fence_count {
            let off = get_u64(&tail, at).ok_or_else(|| corrupt(path, "truncated fence"))?;
            let len = get_u32(&tail, at + 8).ok_or_else(|| corrupt(path, "truncated fence"))?;
            let count = get_u32(&tail, at + 12).ok_or_else(|| corrupt(path, "truncated fence"))?;
            let checksum =
                get_u64(&tail, at + 16).ok_or_else(|| corrupt(path, "truncated fence"))?;
            let klen = get_u16(&tail, at + 24).ok_or_else(|| corrupt(path, "truncated fence"))?;
            at += 26;
            let first_key = tail
                .get(at..at + klen as usize)
                .ok_or_else(|| corrupt(path, "truncated fence key"))?
                .to_vec();
            at += klen as usize;
            // invariant-style validation: extents tile the data region
            // in order and never reach into the fence table.
            if off != prev_end || u64::from(len) == 0 || off + u64::from(len) > fence_off {
                return Err(corrupt(path, "fence extent out of range"));
            }
            prev_end = off + u64::from(len);
            fences.push(Fence {
                first_key,
                off,
                len,
                start,
                count,
                checksum,
            });
            start += u64::from(count);
        }
        if start != entry_count {
            return Err(corrupt(path, "fence counts disagree with entry count"));
        }
        // Within the tail, meta spans [meta_off - fence_off, tail end
        // minus the footer's 36 checksummed bytes).
        let meta_at = (meta_off - fence_off) as usize;
        let meta = tail
            .get(meta_at..tail_len - 36)
            .ok_or_else(|| corrupt(path, "meta region out of range"))?
            .to_vec();
        let file_id = cache.register_file();
        Ok(PagedIndexReader {
            file,
            path: path.to_path_buf(),
            file_id,
            fences,
            meta,
            height,
            entry_count,
            cache,
            stats,
        })
    }

    /// The chain height this checkpoint covers (blocks `< height`).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The family's opaque metadata blob.
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// Total entries across all level-1 blocks.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Number of level-1 blocks (== fences).
    pub fn fence_count(&self) -> usize {
        self.fences.len()
    }

    /// Resident bytes of the always-loaded top level (fences + meta).
    pub fn memory_bytes(&self) -> usize {
        self.meta.len()
            + self
                .fences
                .iter()
                .map(|f| f.first_key.len() + 40)
                .sum::<usize>()
    }

    /// Loads level-1 block `i` through the cache (checksum-verified).
    fn block(&self, i: usize) -> Result<Arc<IndexBlock>> {
        let fence = self
            .fences
            .get(i)
            .ok_or_else(|| corrupt(&self.path, "fence index out of range"))?;
        let (off, len, count, checksum) = (fence.off, fence.len, fence.count, fence.checksum);
        self.cache.get_or_load(self.file_id, i as u32, &|| {
            let mut buf = vec![0u8; len as usize];
            read_exact_at(&self.file, &mut buf, off)?;
            if fnv1a(&buf) != checksum {
                return Err(corrupt(&self.path, "level-1 block checksum mismatch"));
            }
            self.stats
                .bytes_read
                .fetch_add(u64::from(len), Ordering::Relaxed);
            let entries = decode_entries(&self.path, &buf, count as usize)?;
            Ok(IndexBlock {
                entries,
                bytes: buf.len(),
            })
        })
    }

    /// Index of the fence whose block may contain `key` (the last fence
    /// with `first_key <= key`), or `None` when `key` precedes all.
    fn fence_for(&self, key: &[u8]) -> Option<usize> {
        let n = self
            .fences
            .partition_point(|f| f.first_key.as_slice() <= key);
        n.checked_sub(1)
    }

    /// Exact-key lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(i) = self.fence_for(key) else {
            return Ok(None);
        };
        let block = self.block(i)?;
        match block
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
        {
            Ok(pos) => Ok(Some(block.entries[pos].1.clone())),
            Err(_) => Ok(None),
        }
    }

    /// Greatest entry with key ≤ `key`.
    pub fn floor(&self, key: &[u8]) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let Some(i) = self.fence_for(key) else {
            return Ok(None);
        };
        let block = self.block(i)?;
        let n = block.entries.partition_point(|(k, _)| k.as_slice() <= key);
        // The fence guarantees first_key <= key, so n >= 1 whenever the
        // block is non-empty (fences never describe empty blocks).
        Ok(n.checked_sub(1).map(|p| block.entries[p].clone()))
    }

    /// The entry at global index `idx` (entries numbered across blocks
    /// in key order).
    pub fn entry_at(&self, idx: u64) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if idx >= self.entry_count {
            return Ok(None);
        }
        let i = self
            .fences
            .partition_point(|f| f.start + u64::from(f.count) <= idx);
        let fence = self
            .fences
            .get(i)
            .ok_or_else(|| corrupt(&self.path, "entry index out of range"))?;
        let block = self.block(i)?;
        Ok(block.entries.get((idx - fence.start) as usize).cloned())
    }

    /// Visits every entry with `lo ≤ key` and (when `hi` is set)
    /// `key ≤ hi`, in key order.
    pub fn scan_range(
        &self,
        lo: &[u8],
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        let start = self.fence_for(lo).unwrap_or(0);
        for i in start..self.fences.len() {
            if let Some(hi) = hi {
                if self.fences[i].first_key.as_slice() > hi {
                    break;
                }
            }
            let block = self.block(i)?;
            for (k, v) in &block.entries {
                if k.as_slice() < lo {
                    continue;
                }
                if let Some(hi) = hi {
                    if k.as_slice() > hi {
                        return Ok(());
                    }
                }
                f(k, v);
            }
        }
        Ok(())
    }

    /// Visits every entry whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8], f: &mut dyn FnMut(&[u8], &[u8])) -> Result<()> {
        let start = self.fence_for(prefix).unwrap_or(0);
        for i in start..self.fences.len() {
            let first = &self.fences[i].first_key;
            if first.as_slice() > prefix && !first.starts_with(prefix) {
                break;
            }
            let block = self.block(i)?;
            for (k, v) in &block.entries {
                if k.as_slice() < prefix {
                    continue;
                }
                if !k.starts_with(prefix) {
                    return Ok(());
                }
                f(k, v);
            }
        }
        Ok(())
    }
}

/// Drops a checkpoint file (healing path: torn, stale, or ahead of the
/// manifest commit point) and invalidates any of its cached blocks.
pub(crate) fn discard_checkpoint(path: &Path, cache: &IndexBlockCache, file_id: Option<u64>) {
    if let Some(id) = file_id {
        cache.invalidate_file(id);
    }
    let _ = std::fs::remove_file(path);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sebdb-ixseg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn no_fault(_: WriteStep) -> Result<()> {
        Ok(())
    }

    fn cp(n: u64) -> IndexCheckpoint {
        IndexCheckpoint {
            family: b"test-family".to_vec(),
            height: n,
            meta: b"meta-blob".to_vec(),
            entries: (0..n)
                .map(|i| {
                    (
                        i.to_be_bytes().to_vec(),
                        format!("value-{i}").into_bytes().repeat(4),
                    )
                })
                .collect(),
        }
    }

    fn open(dir: &Path, family: &[u8], capacity: usize) -> Result<PagedIndexReader> {
        let stats = Arc::new(IoStats::default());
        let cache = IndexBlockCache::new(capacity, Arc::clone(&stats));
        PagedIndexReader::open(&dir.join(checkpoint_file_name(family)), cache, stats)
    }

    #[test]
    fn roundtrip_get_floor_scan() {
        let dir = tmpdir("roundtrip");
        let cp = cp(500);
        write_checkpoint(&dir, &cp, false, &no_fault).unwrap();
        let r = open(&dir, &cp.family, 0).unwrap();
        assert_eq!(r.height(), 500);
        assert_eq!(r.entry_count(), 500);
        assert_eq!(r.meta(), b"meta-blob");
        assert!(r.fence_count() > 1, "500 entries must span several blocks");
        for i in [0u64, 1, 63, 64, 255, 499] {
            assert_eq!(
                r.get(&i.to_be_bytes()).unwrap().unwrap(),
                cp.entries[i as usize].1,
                "entry {i}"
            );
        }
        assert!(r.get(&500u64.to_be_bytes()).unwrap().is_none());
        // floor: exact and between-keys probes.
        let (k, _) = r.floor(&42u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(k, 42u64.to_be_bytes().to_vec());
        // entry_at matches ordinal order.
        let (k, v) = r.entry_at(123).unwrap().unwrap();
        assert_eq!(k, 123u64.to_be_bytes().to_vec());
        assert_eq!(v, cp.entries[123].1);
        assert!(r.entry_at(500).unwrap().is_none());
        // scan_range honours both bounds.
        let mut seen = Vec::new();
        r.scan_range(
            &100u64.to_be_bytes(),
            Some(&110u64.to_be_bytes()),
            &mut |k, _| seen.push(u64::from_be_bytes(k.try_into().unwrap())),
        )
        .unwrap();
        assert_eq!(seen, (100..=110).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_prefix_visits_only_prefix() {
        let dir = tmpdir("prefix");
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for tag in [1u8, 2, 3] {
            for i in 0..200u64 {
                let mut k = vec![tag];
                k.extend_from_slice(&i.to_be_bytes());
                entries.push((k, vec![tag; 8]));
            }
        }
        entries.sort();
        let cp = IndexCheckpoint {
            family: b"prefix".to_vec(),
            height: 1,
            meta: Vec::new(),
            entries,
        };
        write_checkpoint(&dir, &cp, false, &no_fault).unwrap();
        let r = open(&dir, b"prefix", 0).unwrap();
        let mut n = 0usize;
        r.scan_prefix(&[2u8], &mut |k, v| {
            assert_eq!(k[0], 2);
            assert_eq!(v, &[2u8; 8]);
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 200);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        let dir = tmpdir("cache");
        let cp = cp(2000);
        write_checkpoint(&dir, &cp, false, &no_fault).unwrap();
        let stats = Arc::new(IoStats::default());
        let cache = IndexBlockCache::new(8, Arc::clone(&stats));
        let r = PagedIndexReader::open(
            &dir.join(checkpoint_file_name(&cp.family)),
            Arc::clone(&cache),
            Arc::clone(&stats),
        )
        .unwrap();
        assert!(r.fence_count() > 16);
        for i in 0..2000u64 {
            assert!(r.get(&i.to_be_bytes()).unwrap().is_some());
        }
        assert!(cache.resident_blocks() <= 8);
        assert!(cache.resident_bytes() > 0);
        let hits = stats.index_cache_hits.load(Ordering::Relaxed);
        let misses = stats.index_cache_misses.load(Ordering::Relaxed);
        assert!(hits > 0, "sequential probes must hit the cached block");
        assert!(
            misses >= r.fence_count() as u64,
            "every block is cold at least once"
        );
        // Warm re-read of one block: pure hits.
        stats.reset();
        for i in 0..4u64 {
            let _ = r.get(&i.to_be_bytes()).unwrap();
        }
        assert_eq!(stats.index_cache_misses.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_rejected() {
        let dir = tmpdir("torn");
        let cp = cp(300);
        write_checkpoint(&dir, &cp, false, &no_fault).unwrap();
        let path = dir.join(checkpoint_file_name(&cp.family));
        let bytes = std::fs::read(&path).unwrap();
        // Truncate mid-fence-table: the footer (and its magic) vanish.
        std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        assert!(open(&dir, &cp.family, 0).is_err());
        // Flip one payload byte: open still succeeds (tail is intact)…
        let mut flipped = bytes.clone();
        flipped[16] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        let r = open(&dir, &cp.family, 0).unwrap();
        // …but reading the poisoned level-1 block fails its checksum.
        let mut any_err = false;
        for i in 0..300u64 {
            if r.get(&i.to_be_bytes()).is_err() {
                any_err = true;
                break;
            }
        }
        assert!(any_err, "corrupt level-1 block must fail closed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_steps_fire_in_order() {
        let dir = tmpdir("fault");
        let cp = cp(400);
        for step in [
            WriteStep::IndexBlockWrite(0),
            WriteStep::IndexBlockWrite(1),
            WriteStep::IndexFenceWrite,
            WriteStep::IndexPublish,
        ] {
            let err = write_checkpoint(&dir, &cp, false, &|s| {
                if s == step {
                    Err(StorageError::Corrupt(format!(
                        "injected write fault at {s:?}"
                    )))
                } else {
                    Ok(())
                }
            })
            .expect_err("fault must abort the write");
            assert!(format!("{err}").contains("injected write fault"));
            // Nothing published.
            assert!(!dir.join(checkpoint_file_name(&cp.family)).exists());
            sweep_tmp_checkpoints(&dir);
        }
        // A clean retry succeeds after any torn attempt.
        write_checkpoint(&dir, &cp, false, &no_fault).unwrap();
        assert!(open(&dir, &cp.family, 0).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let dir = tmpdir("empty");
        let cp = IndexCheckpoint {
            family: b"empty".to_vec(),
            height: 0,
            meta: b"m".to_vec(),
            entries: Vec::new(),
        };
        write_checkpoint(&dir, &cp, false, &no_fault).unwrap();
        let r = open(&dir, b"empty", 0).unwrap();
        assert_eq!(r.entry_count(), 0);
        assert_eq!(r.fence_count(), 0);
        assert!(r.get(b"x").unwrap().is_none());
        assert!(r.floor(b"x").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
