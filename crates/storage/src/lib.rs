//! # sebdb-storage
//!
//! On-chain persistence for SEBDB (§IV-A): append-only
//! [`segment`] files, the [`blockstore::BlockStore`] keeping the single
//! copy of all block data, and the two LRU [`cache`] strategies the
//! paper compares in §VII-H (block cache vs transaction cache).

#![warn(missing_docs)]

pub mod blockstore;
pub mod cache;
pub mod indexseg;
pub mod segment;

pub use blockstore::{
    partition_of, readahead_blocks, set_readahead_blocks, BlockStore, CacheMode, CachedStore,
    IoStats, StoreConfig, TxPtr, WriteStep, CHAIN_PARTITION, DEFAULT_READAHEAD_BLOCKS,
    READAHEAD_ENV, RELATION_PARTITIONS, STORE_PARTITIONS_ENV,
};
pub use cache::{BlockCache, Lru, TxCache};
pub use indexseg::{
    IndexBlockCache, IndexCheckpoint, PagedIndexReader, DEFAULT_INDEX_CACHE_BLOCKS,
    INDEX_CACHE_BLOCKS_ENV, INDEX_CHECKPOINT_DIR,
};
pub use segment::{Location, ReadGauges, ReadProbe, SegmentSet, SegmentWriter, StorageError};
