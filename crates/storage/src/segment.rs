//! Append-only segment files.
//!
//! §IV-A: blocks are "appended to files, and once a block is appended,
//! it is immutable. The default size of a file is set 256MB … users can
//! configure the size of a file." A [`SegmentWriter`] rolls to a new
//! file when the configured size is exceeded; [`SegmentSet`] serves
//! random reads by `(segment, offset, len)` with positioned I/O over a
//! sharded handle cache, so concurrent readers never contend and never
//! seek.

use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Storage-layer errors.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record failed to decode.
    Corrupt(String),
    /// Asked for a block that is not stored.
    NotFound(u64),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::NotFound(b) => write!(f, "block {b} not found"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Where a record lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Segment file number.
    pub segment: u32,
    /// Byte offset within the segment.
    pub offset: u64,
    /// Record length in bytes.
    pub len: u32,
}

pub(crate) fn segment_path(dir: &Path, n: u32) -> PathBuf {
    dir.join(format!("seg-{n:05}.dat"))
}

/// Appends records, rolling segments at the configured size.
pub struct SegmentWriter {
    dir: PathBuf,
    segment_size: u64,
    current: BufWriter<File>,
    current_n: u32,
    current_len: u64,
}

impl SegmentWriter {
    /// Opens (or resumes) a writer in `dir`. `resume_at` is the
    /// `(segment, length)` to continue from, typically derived from the
    /// manifest on restart.
    pub fn open(dir: &Path, segment_size: u64, resume_at: Option<(u32, u64)>) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let (n, len) = resume_at.unwrap_or((0, 0));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, n))?;
        // Truncate any bytes past the manifest's view (torn final write).
        file.set_len(len)?;
        Ok(SegmentWriter {
            dir: dir.to_owned(),
            segment_size,
            current: BufWriter::new(file),
            current_n: n,
            current_len: len,
        })
    }

    /// Appends one record, returning where it landed. Rolls to a fresh
    /// segment first if this record would overflow the current one
    /// (a segment always holds at least one record, however large).
    pub fn append(&mut self, record: &[u8]) -> Result<Location> {
        if self.current_len > 0 && self.current_len + record.len() as u64 > self.segment_size {
            self.roll()?;
        }
        let loc = Location {
            segment: self.current_n,
            offset: self.current_len,
            len: record.len() as u32,
        };
        self.current.write_all(record)?;
        self.current_len += record.len() as u64;
        Ok(loc)
    }

    /// Flushes buffered writes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.current.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs the current segment.
    pub fn sync(&mut self) -> Result<()> {
        self.current.flush()?;
        self.current.get_ref().sync_data()?;
        Ok(())
    }

    fn roll(&mut self) -> Result<()> {
        self.current.flush()?;
        self.current_n += 1;
        self.current_len = 0;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, self.current_n))?;
        file.set_len(0)?;
        self.current = BufWriter::new(file);
        Ok(())
    }

    /// Current (segment, length) — persisted in the manifest so restarts
    /// can resume.
    pub fn position(&self) -> (u32, u64) {
        (self.current_n, self.current_len)
    }
}

/// Handle-cache shards. Segment `n` lives in shard `n % HANDLE_SHARDS`
/// at slot `n / HANDLE_SHARDS`, so readers of different segments (and
/// readers of the same already-open segment) take disjoint or shared
/// read locks and never serialize on one global mutex.
const HANDLE_SHARDS: usize = 8;

/// Hook run inside every [`SegmentSet`] read while it is in flight
/// (after the in-flight gauge is bumped, before the positioned read).
/// Concurrency tests install one to prove reads overlap; production
/// paths never set it.
pub type ReadProbe = dyn Fn(u64) + Send + Sync;

/// Read instrumentation shared by one or more [`SegmentSet`]s: the
/// open/in-flight counters and the optional read probe. A partitioned
/// store hands the *same* gauges to the segment set of every partition,
/// so open-once and read-overlap assertions hold across the whole
/// store, not per partition.
#[derive(Default)]
pub struct ReadGauges {
    /// `File::open` calls performed (tests pin open-once semantics).
    opens: AtomicU64,
    /// Reads currently between entry and completion.
    in_flight: AtomicU64,
    /// High-water mark of `in_flight` (proves reads overlapped).
    peak_in_flight: AtomicU64,
    read_probe: RwLock<Option<Box<ReadProbe>>>,
}

impl ReadGauges {
    /// Fresh gauges (all counters zero, no probe).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Number of `File::open` calls so far (open-once instrumentation).
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously in-flight reads.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight.load(Ordering::Acquire)
    }

    /// Installs (or clears) a probe run inside every read while it is
    /// in flight — test instrumentation for read concurrency.
    pub fn set_read_probe(&self, probe: Option<Box<ReadProbe>>) {
        *self.read_probe.write() = probe;
    }
}

/// Serves random reads from the segment files.
///
/// Handles are cached in [`HANDLE_SHARDS`] independent `RwLock`ed
/// vectors of `Arc<File>`; the double-checked open under the shard
/// write lock guarantees each segment is opened at most once. Reads
/// use positioned I/O (`read_at`/`seek_read`), which neither moves a
/// cursor nor needs any lock, so any number of readers proceed truly
/// concurrently on the same or different segments.
pub struct SegmentSet {
    dir: PathBuf,
    shards: [RwLock<Vec<Option<Arc<File>>>>; HANDLE_SHARDS],
    gauges: Arc<ReadGauges>,
}

impl SegmentSet {
    /// Creates a reader over `dir` with its own private gauges.
    pub fn new(dir: &Path) -> Self {
        Self::with_gauges(dir, ReadGauges::new())
    }

    /// Creates a reader over `dir` reporting into `gauges` (shared
    /// across the segment sets of a partitioned store).
    pub fn with_gauges(dir: &Path, gauges: Arc<ReadGauges>) -> Self {
        SegmentSet {
            dir: dir.to_owned(),
            shards: std::array::from_fn(|_| RwLock::new(Vec::new())),
            gauges,
        }
    }

    /// Reads the record at `loc`.
    pub fn read(&self, loc: Location) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; loc.len as usize];
        self.read_into(loc, &mut buf)?;
        Ok(buf)
    }

    /// Reads exactly `buf.len()` bytes starting at `loc` into `buf`
    /// with one positioned read (no seek, no lock held across I/O).
    pub fn read_into(&self, loc: Location, buf: &mut [u8]) -> Result<()> {
        let file = self.handle(loc.segment)?;
        let now = self.gauges.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        self.gauges.peak_in_flight.fetch_max(now, Ordering::AcqRel);
        if let Some(probe) = self.gauges.read_probe.read().as_ref() {
            probe(now);
        }
        let res = read_exact_at(&file, buf, loc.offset);
        self.gauges.in_flight.fetch_sub(1, Ordering::AcqRel);
        res?;
        Ok(())
    }

    /// Returns the cached handle for `segment`, opening it at most once
    /// (double-checked under the shard write lock).
    fn handle(&self, segment: u32) -> Result<Arc<File>> {
        let shard = &self.shards[segment as usize % HANDLE_SHARDS];
        let slot = segment as usize / HANDLE_SHARDS;
        if let Some(Some(file)) = shard.read().get(slot) {
            return Ok(Arc::clone(file));
        }
        let mut cache = shard.write();
        if cache.len() <= slot {
            cache.resize_with(slot + 1, || None);
        }
        if let Some(file) = &cache[slot] {
            // Another reader won the open race; reuse its handle.
            return Ok(Arc::clone(file));
        }
        let file = Arc::new(File::open(segment_path(&self.dir, segment))?);
        self.gauges.opens.fetch_add(1, Ordering::Relaxed);
        cache[slot] = Some(Arc::clone(&file));
        Ok(file)
    }

    /// The gauges this set reports into.
    pub fn gauges(&self) -> &Arc<ReadGauges> {
        &self.gauges
    }

    /// Number of `File::open` calls so far (open-once instrumentation).
    pub fn opens(&self) -> u64 {
        self.gauges.opens()
    }

    /// High-water mark of simultaneously in-flight reads.
    pub fn peak_in_flight(&self) -> u64 {
        self.gauges.peak_in_flight()
    }

    /// Installs (or clears) a probe run inside every read while it is
    /// in flight — test instrumentation for read concurrency.
    pub fn set_read_probe(&self, probe: Option<Box<ReadProbe>>) {
        self.gauges.set_read_probe(probe)
    }
}

/// Positioned read: fills `buf` from `offset` without touching any
/// shared cursor.
#[cfg(unix)]
pub(crate) fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Positioned read via `seek_read` (per-call offset; the handle's
/// cursor is moved but never relied upon between calls on Windows —
/// each call passes its own absolute offset).
#[cfg(windows)]
pub(crate) fn read_exact_at(
    file: &File,
    mut buf: &mut [u8],
    mut offset: u64,
) -> std::io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, offset) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "segment read past end of file",
                ))
            }
            Ok(n) => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Fallback for platforms without positioned-read syscalls: a private
/// duplicate of the descriptor is seeked, so the cached handle's state
/// is never mutated.
#[cfg(not(any(unix, windows)))]
pub(crate) fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek};
    let mut dup = file.try_clone()?;
    dup.seek(std::io::SeekFrom::Start(offset))?;
    dup.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sebdb-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_and_read_back() {
        let dir = tmpdir("rw");
        let mut w = SegmentWriter::open(&dir, 1024, None).unwrap();
        let a = w.append(b"hello").unwrap();
        let b = w.append(b"world!").unwrap();
        w.flush().unwrap();
        let r = SegmentSet::new(&dir);
        assert_eq!(r.read(a).unwrap(), b"hello");
        assert_eq!(r.read(b).unwrap(), b"world!");
        assert_eq!(b.offset, 5);
    }

    #[test]
    fn rolls_segments_at_size() {
        let dir = tmpdir("roll");
        let mut w = SegmentWriter::open(&dir, 10, None).unwrap();
        let a = w.append(&[1u8; 8]).unwrap();
        let b = w.append(&[2u8; 8]).unwrap(); // 8+8 > 10 → new segment
        let c = w.append(&[3u8; 20]).unwrap(); // oversized record gets its own segment
        w.flush().unwrap();
        assert_eq!(a.segment, 0);
        assert_eq!(b.segment, 1);
        assert_eq!(c.segment, 2);
        let r = SegmentSet::new(&dir);
        assert_eq!(r.read(c).unwrap(), vec![3u8; 20]);
        assert_eq!(r.read(a).unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn resume_truncates_torn_tail() {
        let dir = tmpdir("resume");
        let mut w = SegmentWriter::open(&dir, 1024, None).unwrap();
        let a = w.append(b"durable").unwrap();
        w.flush().unwrap();
        w.append(b"torn").unwrap();
        w.flush().unwrap();
        drop(w);
        // Resume believing only the first record was committed.
        let mut w2 = SegmentWriter::open(&dir, 1024, Some((0, a.offset + a.len as u64))).unwrap();
        let b = w2.append(b"new").unwrap();
        w2.flush().unwrap();
        assert_eq!(b.offset, 7);
        let r = SegmentSet::new(&dir);
        assert_eq!(r.read(a).unwrap(), b"durable");
        assert_eq!(r.read(b).unwrap(), b"new");
    }

    #[test]
    fn read_missing_segment_errors() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let r = SegmentSet::new(&dir);
        assert!(r
            .read(Location {
                segment: 9,
                offset: 0,
                len: 4
            })
            .is_err());
    }
}
