//! Append-only segment files.
//!
//! §IV-A: blocks are "appended to files, and once a block is appended,
//! it is immutable. The default size of a file is set 256MB … users can
//! configure the size of a file." A [`SegmentWriter`] rolls to a new
//! file when the configured size is exceeded; [`SegmentSet`] serves
//! random reads by `(segment, offset, len)`.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Storage-layer errors.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record failed to decode.
    Corrupt(String),
    /// Asked for a block that is not stored.
    NotFound(u64),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::NotFound(b) => write!(f, "block {b} not found"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for the storage layer.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Where a record lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Segment file number.
    pub segment: u32,
    /// Byte offset within the segment.
    pub offset: u64,
    /// Record length in bytes.
    pub len: u32,
}

fn segment_path(dir: &Path, n: u32) -> PathBuf {
    dir.join(format!("seg-{n:05}.dat"))
}

/// Appends records, rolling segments at the configured size.
pub struct SegmentWriter {
    dir: PathBuf,
    segment_size: u64,
    current: BufWriter<File>,
    current_n: u32,
    current_len: u64,
}

impl SegmentWriter {
    /// Opens (or resumes) a writer in `dir`. `resume_at` is the
    /// `(segment, length)` to continue from, typically derived from the
    /// manifest on restart.
    pub fn open(dir: &Path, segment_size: u64, resume_at: Option<(u32, u64)>) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let (n, len) = resume_at.unwrap_or((0, 0));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, n))?;
        // Truncate any bytes past the manifest's view (torn final write).
        file.set_len(len)?;
        Ok(SegmentWriter {
            dir: dir.to_owned(),
            segment_size,
            current: BufWriter::new(file),
            current_n: n,
            current_len: len,
        })
    }

    /// Appends one record, returning where it landed. Rolls to a fresh
    /// segment first if this record would overflow the current one
    /// (a segment always holds at least one record, however large).
    pub fn append(&mut self, record: &[u8]) -> Result<Location> {
        if self.current_len > 0 && self.current_len + record.len() as u64 > self.segment_size {
            self.roll()?;
        }
        let loc = Location {
            segment: self.current_n,
            offset: self.current_len,
            len: record.len() as u32,
        };
        self.current.write_all(record)?;
        self.current_len += record.len() as u64;
        Ok(loc)
    }

    /// Flushes buffered writes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.current.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs the current segment.
    pub fn sync(&mut self) -> Result<()> {
        self.current.flush()?;
        self.current.get_ref().sync_data()?;
        Ok(())
    }

    fn roll(&mut self) -> Result<()> {
        self.current.flush()?;
        self.current_n += 1;
        self.current_len = 0;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, self.current_n))?;
        file.set_len(0)?;
        self.current = BufWriter::new(file);
        Ok(())
    }

    /// Current (segment, length) — persisted in the manifest so restarts
    /// can resume.
    pub fn position(&self) -> (u32, u64) {
        (self.current_n, self.current_len)
    }
}

/// Serves random reads from the segment files.
pub struct SegmentSet {
    dir: PathBuf,
    /// Cached open file handles, one per segment.
    handles: Mutex<Vec<Option<File>>>,
}

impl SegmentSet {
    /// Creates a reader over `dir`.
    pub fn new(dir: &Path) -> Self {
        SegmentSet {
            dir: dir.to_owned(),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Reads the record at `loc`.
    pub fn read(&self, loc: Location) -> Result<Vec<u8>> {
        let mut handles = self.handles.lock();
        let idx = loc.segment as usize;
        if handles.len() <= idx {
            handles.resize_with(idx + 1, || None);
        }
        let file = match &mut handles[idx] {
            Some(file) => file,
            slot => slot.insert(File::open(segment_path(&self.dir, loc.segment))?),
        };
        file.seek(SeekFrom::Start(loc.offset))?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sebdb-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_and_read_back() {
        let dir = tmpdir("rw");
        let mut w = SegmentWriter::open(&dir, 1024, None).unwrap();
        let a = w.append(b"hello").unwrap();
        let b = w.append(b"world!").unwrap();
        w.flush().unwrap();
        let r = SegmentSet::new(&dir);
        assert_eq!(r.read(a).unwrap(), b"hello");
        assert_eq!(r.read(b).unwrap(), b"world!");
        assert_eq!(b.offset, 5);
    }

    #[test]
    fn rolls_segments_at_size() {
        let dir = tmpdir("roll");
        let mut w = SegmentWriter::open(&dir, 10, None).unwrap();
        let a = w.append(&[1u8; 8]).unwrap();
        let b = w.append(&[2u8; 8]).unwrap(); // 8+8 > 10 → new segment
        let c = w.append(&[3u8; 20]).unwrap(); // oversized record gets its own segment
        w.flush().unwrap();
        assert_eq!(a.segment, 0);
        assert_eq!(b.segment, 1);
        assert_eq!(c.segment, 2);
        let r = SegmentSet::new(&dir);
        assert_eq!(r.read(c).unwrap(), vec![3u8; 20]);
        assert_eq!(r.read(a).unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn resume_truncates_torn_tail() {
        let dir = tmpdir("resume");
        let mut w = SegmentWriter::open(&dir, 1024, None).unwrap();
        let a = w.append(b"durable").unwrap();
        w.flush().unwrap();
        w.append(b"torn").unwrap();
        w.flush().unwrap();
        drop(w);
        // Resume believing only the first record was committed.
        let mut w2 = SegmentWriter::open(&dir, 1024, Some((0, a.offset + a.len as u64))).unwrap();
        let b = w2.append(b"new").unwrap();
        w2.flush().unwrap();
        assert_eq!(b.offset, 7);
        let r = SegmentSet::new(&dir);
        assert_eq!(r.read(a).unwrap(), b"durable");
        assert_eq!(r.read(b).unwrap(), b"new");
    }

    #[test]
    fn read_missing_segment_errors() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let r = SegmentSet::new(&dir);
        assert!(r
            .read(Location {
                segment: 9,
                offset: 0,
                len: 4
            })
            .is_err());
    }
}
