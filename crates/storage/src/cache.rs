//! LRU caches.
//!
//! §IV-A: "Although the storage unit is a block, the cache unit is a
//! transaction type" — and §VII-H compares a *block cache* (recently
//! read blocks) against a *transaction cache* (recently read
//! transactions located via an index). Both are LRU with byte-budget
//! eviction, built on the generic [`Lru`] below.

use parking_lot::Mutex;
use sebdb_parallel::Tracked;
use sebdb_types::{Block, BlockId, Transaction, TxId};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Intrusive-list LRU with byte-size accounting.
///
/// Entries live in a slab; the recency list is threaded through
/// `prev`/`next` slab indices so both lookup and eviction are O(1).
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    bytes: usize,
    capacity_bytes: usize,
    hits: u64,
    misses: u64,
}

struct Entry<K, V> {
    key: K,
    value: V,
    size: usize,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// Creates an LRU with a byte budget.
    pub fn new(capacity_bytes: usize) -> Self {
        Lru {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            capacity_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                if idx != self.head {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                Some(&self.slab[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-promoting, non-counting peek (for tests/introspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }

    /// Inserts `key -> value` accounting `size` bytes, evicting LRU
    /// entries as needed. An entry larger than the whole budget is not
    /// cached at all.
    pub fn put(&mut self, key: K, value: V, size: usize) {
        if size > self.capacity_bytes {
            return;
        }
        if let Some(idx) = self.map.get(&key).copied() {
            self.bytes = self.bytes - self.slab[idx].size + size;
            self.slab[idx].value = value;
            self.slab[idx].size = size;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
        } else {
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = Entry {
                        key: key.clone(),
                        value,
                        size,
                        prev: NIL,
                        next: NIL,
                    };
                    i
                }
                None => {
                    self.slab.push(Entry {
                        key: key.clone(),
                        value,
                        size,
                        prev: NIL,
                        next: NIL,
                    });
                    self.slab.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.push_front(idx);
            self.bytes += size;
        }
        while self.bytes > self.capacity_bytes {
            self.evict_one();
        }
    }

    fn evict_one(&mut self) {
        let idx = self.tail;
        if idx == NIL {
            return;
        }
        self.unlink(idx);
        self.bytes -= self.slab[idx].size;
        let key = self.slab[idx].key.clone();
        self.map.remove(&key);
        self.free.push(idx);
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }
}

/// Lock stripes per concurrent cache. Parallel scan workers hit the
/// cache from many threads at once; striping keeps them from
/// serializing on one mutex. The byte budget is split evenly across
/// shards, so total capacity is unchanged (an entry larger than
/// `capacity / SHARDS` is simply not cached, as before an entry larger
/// than the whole budget was not).
const CACHE_SHARDS: usize = 8;

/// Spreads a 64-bit key over shards (Fibonacci hashing; block ids and
/// packed tx pointers are both sequential-ish, which raw modulo would
/// map to one shard per stripe pattern).
fn shard_of(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % CACHE_SHARDS
}

/// One lock-striped shard: an LRU under a zero-cost [`Tracked`]
/// marker — the model checker's cache suite proves the per-shard lock
/// discipline (DESIGN.md §14).
type Shard<K, V> = Mutex<Tracked<Lru<K, V>>>;

/// Thread-safe block cache: recently read whole blocks, lock-striped
/// across [`CACHE_SHARDS`] independent LRUs.
pub struct BlockCache {
    shards: Vec<Shard<BlockId, Arc<Block>>>,
}

impl BlockCache {
    /// Creates a block cache with a byte budget (split across shards).
    pub fn new(capacity_bytes: usize) -> Self {
        let per_shard = (capacity_bytes / CACHE_SHARDS).max(1);
        BlockCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(Tracked::new(Lru::new(per_shard))))
                .collect(),
        }
    }

    /// Fetches a cached block.
    pub fn get(&self, bid: BlockId) -> Option<Arc<Block>> {
        self.shards[shard_of(bid)]
            .lock()
            .with_mut(|lru| lru.get(&bid).cloned())
    }

    /// Caches a block, charged at its serialized size.
    pub fn put(&self, bid: BlockId, block: Arc<Block>, size: usize) {
        self.shards[shard_of(bid)]
            .lock()
            .with_mut(|lru| lru.put(bid, block, size));
    }

    /// (hits, misses), aggregated over shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.lock().with(Lru::stats);
            (h + sh, m + sm)
        })
    }

    /// Drops all cached blocks.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().with_mut(Lru::clear);
        }
    }
}

/// Thread-safe transaction cache: recently read individual transactions
/// (keyed by tid), the winning strategy for index-driven queries in
/// Fig. 22. Lock-striped like [`BlockCache`].
pub struct TxCache {
    shards: Vec<Shard<TxId, Arc<Transaction>>>,
}

impl TxCache {
    /// Creates a transaction cache with a byte budget (split across
    /// shards).
    pub fn new(capacity_bytes: usize) -> Self {
        let per_shard = (capacity_bytes / CACHE_SHARDS).max(1);
        TxCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(Tracked::new(Lru::new(per_shard))))
                .collect(),
        }
    }

    /// Fetches a cached transaction.
    pub fn get(&self, tid: TxId) -> Option<Arc<Transaction>> {
        self.shards[shard_of(tid)]
            .lock()
            .with_mut(|lru| lru.get(&tid).cloned())
    }

    /// Caches a transaction, charged at its serialized size.
    pub fn put(&self, tid: TxId, tx: Arc<Transaction>, size: usize) {
        self.shards[shard_of(tid)]
            .lock()
            .with_mut(|lru| lru.put(tid, tx, size));
    }

    /// (hits, misses), aggregated over shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.lock().with(Lru::stats);
            (h + sh, m + sm)
        })
    }

    /// Drops all cached transactions.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().with_mut(Lru::clear);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut lru: Lru<u32, String> = Lru::new(100);
        lru.put(1, "one".into(), 10);
        lru.put(2, "two".into(), 10);
        assert_eq!(lru.get(&1), Some(&"one".to_string()));
        assert_eq!(lru.get(&3), None);
        assert_eq!(lru.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(30);
        lru.put(1, 1, 10);
        lru.put(2, 2, 10);
        lru.put(3, 3, 10);
        lru.get(&1); // promote 1; now 2 is LRU
        lru.put(4, 4, 10); // evicts 2
        assert!(lru.peek(&2).is_none());
        assert!(lru.peek(&1).is_some());
        assert!(lru.peek(&3).is_some());
        assert!(lru.peek(&4).is_some());
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut lru: Lru<u32, u32> = Lru::new(10);
        lru.put(1, 1, 11);
        assert!(lru.peek(&1).is_none());
        assert_eq!(lru.bytes(), 0);
    }

    #[test]
    fn update_existing_key_adjusts_bytes() {
        let mut lru: Lru<u32, u32> = Lru::new(100);
        lru.put(1, 1, 10);
        lru.put(1, 2, 30);
        assert_eq!(lru.bytes(), 30);
        assert_eq!(lru.peek(&1), Some(&2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_cascade_on_large_insert() {
        let mut lru: Lru<u32, u32> = Lru::new(30);
        lru.put(1, 1, 10);
        lru.put(2, 2, 10);
        lru.put(3, 3, 10);
        lru.put(4, 4, 25); // must evict 1, 2, 3
        assert_eq!(lru.len(), 1);
        assert!(lru.peek(&4).is_some());
        assert_eq!(lru.bytes(), 25);
    }

    #[test]
    fn clear_resets() {
        let mut lru: Lru<u32, u32> = Lru::new(30);
        lru.put(1, 1, 10);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.bytes(), 0);
        lru.put(2, 2, 10);
        assert!(lru.peek(&2).is_some());
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let mut lru: Lru<u32, u32> = Lru::new(20);
        for i in 0..100 {
            lru.put(i, i, 10);
        }
        // Only two fit at a time; slab should not have grown to 100.
        assert!(lru.len() <= 2);
        assert!(lru.slab.len() <= 3);
    }

    #[test]
    fn sharded_tx_cache_roundtrip_and_stats() {
        let cache = TxCache::new(1 << 20);
        let tx = Arc::new(Transaction::new(
            1,
            sebdb_crypto::sig::KeyId([0; 8]),
            "donate",
            vec![],
        ));
        // Keys landing on different shards all resolve correctly and
        // the aggregated stats see every access.
        for tid in 0..64u64 {
            cache.put(tid, Arc::clone(&tx), 100);
        }
        for tid in 0..64u64 {
            assert!(cache.get(tid).is_some(), "tid={tid}");
        }
        assert!(cache.get(1000).is_none());
        assert_eq!(cache.stats(), (64, 1));
        cache.clear();
        assert!(cache.get(0).is_none());
    }

    #[test]
    fn sharded_cache_capacity_still_bounds_bytes() {
        // 64 entries of 100 bytes vastly exceed a 1000-byte budget;
        // far fewer than 64 survive regardless of sharding.
        let cache = TxCache::new(1000);
        let tx = Arc::new(Transaction::new(
            1,
            sebdb_crypto::sig::KeyId([0; 8]),
            "donate",
            vec![],
        ));
        for tid in 0..64u64 {
            cache.put(tid, Arc::clone(&tx), 100);
        }
        let alive = (0..64u64).filter(|&t| cache.get(t).is_some()).count();
        assert!(
            alive <= 10,
            "budget 1000B holds at most 10 x 100B, saw {alive}"
        );
    }

    #[test]
    fn stress_consistency() {
        let mut lru: Lru<u64, u64> = Lru::new(1000);
        for i in 0..10_000u64 {
            lru.put(i % 157, i, (i % 13 + 1) as usize * 10);
            if i % 3 == 0 {
                lru.get(&(i % 101));
            }
            assert!(lru.bytes() <= 1000);
        }
        // Recompute bytes from the map and compare.
        let total: usize = lru.map.values().map(|&idx| lru.slab[idx].size).sum();
        assert_eq!(total, lru.bytes());
    }
}
