//! Window soundness: for any chain, `blocks_in_window(s, e)` must
//! cover every block holding a transaction with `ts ∈ [s, e]` — the
//! conservativeness the executors' correctness rests on (they
//! re-filter per transaction, so over-approximation is fine but
//! under-approximation loses results).

use proptest::prelude::*;
use sebdb_crypto::sha256::Digest;
use sebdb_crypto::sig::KeyId;
use sebdb_index::BlockLevelIndex;
use sebdb_types::{Block, Transaction};

/// Builds a chain from per-block transaction timestamp lists. Block
/// timestamps are the max of their txs' (packaging happens after the
/// last tx), kept monotone across blocks.
fn chain(per_block_ts: &[Vec<u64>]) -> Vec<Block> {
    let mut prev = Digest::ZERO;
    let mut tid = 1;
    let mut last_block_ts = 0;
    per_block_ts
        .iter()
        .enumerate()
        .map(|(h, ts_list)| {
            let txs: Vec<Transaction> = ts_list
                .iter()
                .map(|&ts| {
                    let mut t = Transaction::new(ts, KeyId([1; 8]), "t", vec![]);
                    t.tid = tid;
                    tid += 1;
                    t
                })
                .collect();
            let block_ts = ts_list
                .iter()
                .copied()
                .max()
                .unwrap_or(last_block_ts)
                .max(last_block_ts);
            last_block_ts = block_ts;
            let b = Block::seal(prev, h as u64, block_ts, txs, |_| vec![]);
            prev = b.header.block_hash;
            b
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn window_covers_all_matching_blocks(
        // Monotone-ish timestamps: each block gets a few offsets on an
        // increasing base.
        bases in proptest::collection::vec(0u64..50, 1..12),
        offsets in proptest::collection::vec(proptest::collection::vec(0u64..30, 0..5), 1..12),
        s in 0u64..400,
        len in 0u64..200,
    ) {
        // Build monotone per-block ts lists.
        let mut acc = 0u64;
        let n = bases.len().min(offsets.len());
        let mut per_block = Vec::with_capacity(n);
        for i in 0..n {
            acc += bases[i];
            let mut ts_list: Vec<u64> = offsets[i].iter().map(|o| acc + o).collect();
            ts_list.sort_unstable();
            // Keep the cross-block invariant: tx ts ≤ its block ts ≤
            // next block's tx ts is NOT required by the system — only
            // block timestamps must be monotone, which `chain` enforces.
            per_block.push(ts_list);
            acc += 30; // next block starts past this one's offsets
        }
        let blocks = chain(&per_block);
        let mut index = BlockLevelIndex::new();
        for b in &blocks {
            index.append(b);
        }
        let e = s + len;
        let range = index.blocks_in_window(s, e);
        for b in &blocks {
            let holds_match = b.transactions.iter().any(|t| t.ts >= s && t.ts <= e);
            if holds_match {
                let (lo, hi) = range.unwrap_or_else(|| panic!(
                    "window [{s},{e}] returned None but block {} has a match",
                    b.header.height
                ));
                prop_assert!(
                    (lo..=hi).contains(&b.header.height),
                    "block {} with ts in [{s},{e}] outside returned range ({lo},{hi})",
                    b.header.height
                );
            }
        }
    }
}
