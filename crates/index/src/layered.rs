//! The layered index (§IV-B, Fig. 4).
//!
//! Two levels:
//!
//! * **First level** describes the distribution of an attribute's
//!   values among blocks. For a *continuous* attribute each block gets
//!   a bitmap over the buckets of a pre-built equal-depth histogram
//!   (bit *k* set iff the block holds a transaction whose value falls
//!   in bucket *k*). For a *discrete* attribute there is one bitmap
//!   per distinct value (bit *i* set iff block *i* holds that value).
//! * **Second level** is one per-block B⁺-tree on the attribute, built
//!   by bulk loading when the block is chained — append-only, never
//!   rebalanced.
//!
//! Queries intersect the first level with a block mask (e.g. a time
//! window from the block-level index) to prune blocks, then use the
//! per-block trees to fetch exactly the matching transactions.
//!
//! **Paged backend** (DESIGN §13): the index can carry a frozen
//! on-disk checkpoint covering blocks `[0, base)`; the structures here
//! then hold only the tail `[base, covered)`, indexed relative to
//! `base`, and every query merges the frozen view (read lazily through
//! the store's index-block cache) with the tail. With no checkpoint
//! attached the index is the original fully-resident structure — the
//! `cache=∞` reference.

use crate::bitmap::Bitmap;
use crate::bptree::BPlusTree;
use crate::histogram::EqualDepthHistogram;
use crate::paged::{
    bid_key, bitmap_bytes, bitmap_from_bytes, bucket_key, column_slug, decode_value_key,
    entries_bytes, entries_from_bytes, family_layered, frozen_bitmap, read_fail, value_key,
    TAG_ALL_BLOCKS, TAG_BLOCK_BUCKETS, TAG_BLOCK_ENTRIES, TAG_VALUE_BLOCKS,
};
use sebdb_storage::{IndexCheckpoint, PagedIndexReader, TxPtr};
use sebdb_types::{Block, BlockId, ColumnRef, Decoder, Encoder, Transaction, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Order of second-level trees: sized so a 4 KB page holds one node of
/// ~64-byte entries (the paper's MB-tree page size, §VII-A).
pub const SECOND_LEVEL_ORDER: usize = 64;

/// A simple predicate over the indexed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPredicate {
    /// `column = value`.
    Eq(Value),
    /// `column BETWEEN lo AND hi` (inclusive).
    Range(Value, Value),
}

impl KeyPredicate {
    /// The (lo, hi) closed interval this predicate covers.
    pub fn bounds(&self) -> (&Value, &Value) {
        match self {
            KeyPredicate::Eq(v) => (v, v),
            KeyPredicate::Range(lo, hi) => (lo, hi),
        }
    }

    /// Whether `v` satisfies the predicate.
    pub fn matches(&self, v: &Value) -> bool {
        let (lo, hi) = self.bounds();
        v >= lo && v <= hi
    }
}

#[derive(Debug)]
enum FirstLevel {
    Continuous {
        hist: EqualDepthHistogram,
        /// Per tail block (slot `bid - base`): bitmap over histogram
        /// buckets (None = block holds no indexed transactions).
        entries: Vec<Option<Bitmap>>,
    },
    Discrete {
        /// Per distinct value: bitmap over tail blocks, bit `i` =
        /// block `base + i`.
        per_value: HashMap<Value, Bitmap>,
    },
}

/// The frozen prefix of a paged layered index.
#[derive(Debug)]
struct Frozen {
    reader: PagedIndexReader,
    /// Blocks `[0, base)` are served from the checkpoint.
    base: u64,
}

/// A layered index on one attribute of one table (or of *all* tables
/// for the system columns `SenID` / `Tname`, which drive tracking).
#[derive(Debug)]
pub struct LayeredIndex {
    /// Table the index covers; `None` indexes every table (system
    /// columns only).
    pub table: Option<String>,
    /// Indexed column.
    pub column: ColumnRef,
    first: FirstLevel,
    /// Per-block second-level trees for the tail, slot = `bid - base`.
    second: Vec<Option<BPlusTree<Value, TxPtr>>>,
    order: usize,
    frozen: Option<Frozen>,
}

/// Checkpoint meta: kind tag (+ histogram bounds when continuous).
fn encode_meta(first: &FirstLevel) -> Vec<u8> {
    let mut enc = Encoder::new();
    match first {
        FirstLevel::Continuous { hist, .. } => {
            enc.put_u8(0);
            enc.put_u32(hist.bounds().len() as u32);
            for b in hist.bounds() {
                enc.put_i64(*b);
            }
        }
        FirstLevel::Discrete { .. } => enc.put_u8(1),
    }
    enc.finish()
}

/// Rebuilds the (empty-tail) first level out of checkpoint meta.
fn decode_meta(meta: &[u8]) -> FirstLevel {
    let mut dec = Decoder::new(meta);
    let parse = |dec: &mut Decoder<'_>| -> Result<FirstLevel, sebdb_types::TypeError> {
        match dec.get_u8("layered meta kind")? {
            0 => {
                let n = dec.get_u32("layered meta bounds")?;
                let mut bounds = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    bounds.push(dec.get_i64("layered meta bound")?);
                }
                Ok(FirstLevel::Continuous {
                    hist: EqualDepthHistogram::from_bounds(bounds),
                    entries: Vec::new(),
                })
            }
            _ => Ok(FirstLevel::Discrete {
                per_value: HashMap::new(),
            }),
        }
    };
    match parse(&mut dec) {
        Ok(f) => f,
        Err(e) => panic!("layered index checkpoint meta failed to decode: {e}"),
    }
}

impl LayeredIndex {
    /// Creates a continuous-attribute index with a pre-sampled
    /// histogram (§IV-B: "created by sampling historical transactions
    /// during index creating").
    pub fn new_continuous(
        table: Option<String>,
        column: ColumnRef,
        hist: EqualDepthHistogram,
    ) -> Self {
        LayeredIndex {
            table,
            column,
            first: FirstLevel::Continuous {
                hist,
                entries: Vec::new(),
            },
            second: Vec::new(),
            order: SECOND_LEVEL_ORDER,
            frozen: None,
        }
    }

    /// Creates a discrete-attribute index.
    pub fn new_discrete(table: Option<String>, column: ColumnRef) -> Self {
        LayeredIndex {
            table,
            column,
            first: FirstLevel::Discrete {
                per_value: HashMap::new(),
            },
            second: Vec::new(),
            order: SECOND_LEVEL_ORDER,
            frozen: None,
        }
    }

    /// Rebuilds an index from a frozen checkpoint: kind and histogram
    /// come from the checkpoint meta, the tail starts empty at the
    /// checkpoint height.
    pub fn from_frozen(table: Option<String>, column: ColumnRef, reader: PagedIndexReader) -> Self {
        let base = reader.height();
        LayeredIndex {
            table,
            column,
            first: decode_meta(reader.meta()),
            second: Vec::new(),
            order: SECOND_LEVEL_ORDER,
            frozen: Some(Frozen { reader, base }),
        }
    }

    /// Freezes the index behind a newly written checkpoint: the tail
    /// it covered is dropped and future queries page it back through
    /// the reader. The reader must cover exactly [`Self::covered`].
    pub fn adopt_frozen(&mut self, reader: PagedIndexReader) {
        assert_eq!(
            reader.height(),
            self.covered(),
            "adopting a checkpoint that does not match the indexed height"
        );
        let base = reader.height();
        match &mut self.first {
            FirstLevel::Continuous { entries, .. } => entries.clear(),
            FirstLevel::Discrete { per_value } => per_value.clear(),
        }
        self.second.clear();
        self.frozen = Some(Frozen { reader, base });
    }

    /// First tail block: blocks below this are frozen.
    fn base(&self) -> u64 {
        self.frozen.as_ref().map(|f| f.base).unwrap_or(0)
    }

    /// Chain height this index has state for (`base + tail length`).
    pub fn covered(&self) -> u64 {
        self.base() + self.second.len() as u64
    }

    /// Height of the frozen prefix: probes into blocks below this page
    /// on-disk index blocks through the index-block cache; `0` when the
    /// index is fully resident. The planner uses this to charge the
    /// paged access path (Eq. 3's transfer term applied to the index
    /// itself).
    pub fn frozen_height(&self) -> u64 {
        self.base()
    }

    /// The family name of this index's checkpoint file.
    pub fn family(&self) -> Vec<u8> {
        family_layered(self.table.as_deref(), &column_slug(&self.column))
    }

    /// Whether `tx` is covered by this index.
    fn covers(&self, tx: &Transaction) -> bool {
        match &self.table {
            Some(t) => tx.tname.eq_ignore_ascii_case(t),
            None => true,
        }
    }

    /// Indexes a newly chained block: appends a first-level entry and
    /// bulk-loads the block's second-level tree.
    pub fn update(&mut self, block: &Block) {
        let rows: Vec<u32> = block
            .transactions
            .iter()
            .enumerate()
            .filter(|(_, tx)| self.covers(tx))
            .map(|(i, _)| i as u32)
            .collect();
        self.update_rows(block, &rows);
    }

    /// Per-relation maintenance entry point: indexes a newly chained
    /// block from a pre-partitioned tuple set. `rows` are the positions
    /// (ascending) of the block's transactions that belong to this
    /// index's relation — the relation-sharded applier partitions each
    /// sealed block by `Tname` once and hands every lane exactly its
    /// rows, so per-table indexes skip the full-block `covers` scan.
    /// Equivalent to [`Self::update`] when `rows` holds exactly the
    /// covered positions, which the caller guarantees.
    pub fn update_rows(&mut self, block: &Block, rows: &[u32]) {
        let bid = block.header.height;
        let base = self.base();
        if bid < base {
            // Already frozen — replay catching up over checkpointed
            // blocks has nothing to do.
            return;
        }
        let slot = (bid - base) as usize;
        if self.second.len() <= slot {
            self.second.resize_with(slot + 1, || None);
            if let FirstLevel::Continuous { entries, .. } = &mut self.first {
                entries.resize_with(slot + 1, || None);
            }
        }

        let mut keyed: Vec<(Value, TxPtr)> = Vec::new();
        for &i in rows {
            let Some(tx) = block.transactions.get(i as usize) else {
                continue;
            };
            let Some(v) = tx.get(self.column) else {
                continue;
            };
            if v == Value::Null {
                continue;
            }
            keyed.push((
                v,
                TxPtr {
                    block: bid as BlockId,
                    index: i,
                },
            ));
        }
        if keyed.is_empty() {
            return;
        }

        match &mut self.first {
            FirstLevel::Continuous { hist, entries } => {
                let mut bucket_map = Bitmap::with_capacity(hist.bucket_count());
                for (v, _) in &keyed {
                    if let Some(rank) = v.numeric_rank() {
                        bucket_map.set(hist.bucket_of(rank));
                    }
                }
                entries[slot] = Some(bucket_map);
            }
            FirstLevel::Discrete { per_value } => {
                for (v, _) in &keyed {
                    per_value.entry(v.clone()).or_default().set(slot);
                }
            }
        }

        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        self.second[slot] = Some(BPlusTree::bulk_load(self.order, keyed));
    }

    /// The frozen block-bucket bitmap of block `bid`, if any
    /// (continuous indexes).
    fn frozen_block_buckets(&self, bid: BlockId) -> Option<Bitmap> {
        let f = self.frozen.as_ref()?;
        if bid >= f.base {
            return None;
        }
        read_fail(
            "layered first level",
            f.reader.get(&bid_key(TAG_BLOCK_BUCKETS, bid)),
        )
        .map(|bytes| bitmap_from_bytes(&bytes))
    }

    /// Block `bid`'s bucket bitmap, wherever it lives (continuous).
    fn block_buckets(&self, bid: BlockId) -> Option<Bitmap> {
        let base = self.base();
        if bid < base {
            return self.frozen_block_buckets(bid);
        }
        let FirstLevel::Continuous { entries, .. } = &self.first else {
            return None;
        };
        entries.get((bid - base) as usize)?.clone()
    }

    /// The absolute block bitmap of one discrete value, merged across
    /// the frozen checkpoint and the tail.
    fn value_blocks(&self, v: &Value) -> Bitmap {
        let mut out = match &self.frozen {
            Some(f) => frozen_bitmap(&f.reader, "layered value bitmap", &value_key(v)),
            None => Bitmap::new(),
        };
        if let FirstLevel::Discrete { per_value } = &self.first {
            if let Some(bits) = per_value.get(v) {
                out.or_assign_shifted(bits, self.base() as usize);
            }
        }
        out
    }

    /// Visits every distinct discrete value with its merged absolute
    /// block bitmap (frozen ∪ tail), each value exactly once.
    fn for_each_value(&self, mut f: impl FnMut(&Value, &Bitmap)) {
        let FirstLevel::Discrete { per_value } = &self.first else {
            return;
        };
        let base = self.base() as usize;
        if let Some(frozen) = &self.frozen {
            let mut visit = |key: &[u8], bytes: &[u8]| {
                let v = decode_value_key(key);
                let mut bits = bitmap_from_bytes(bytes);
                if let Some(tail) = per_value.get(&v) {
                    bits.or_assign_shifted(tail, base);
                }
                f(&v, &bits);
            };
            read_fail(
                "layered value sweep",
                frozen
                    .reader
                    .scan_prefix(&[TAG_VALUE_BLOCKS], &mut |k, v| visit(k, v)),
            );
            // Tail-only values follow; frozen values were all merged
            // above, so skip any tail value the checkpoint already has.
            for (v, tail) in per_value {
                if read_fail(
                    "layered value probe",
                    frozen.reader.get(&value_key(v)).map(|r| r.is_some()),
                ) {
                    continue;
                }
                let mut bits = Bitmap::new();
                bits.or_assign_shifted(tail, base);
                f(v, &bits);
            }
        } else {
            for (v, bits) in per_value {
                f(v, bits);
            }
        }
    }

    /// First-level filter: blocks that may contain values matching
    /// `pred` ("blocks without query results are filtered").
    pub fn candidate_blocks(&self, pred: &KeyPredicate) -> Bitmap {
        match &self.first {
            FirstLevel::Continuous { hist, entries } => {
                let (lo, hi) = pred.bounds();
                let (Some(lo_r), Some(hi_r)) = (lo.numeric_rank(), hi.numeric_rank()) else {
                    // Non-numeric probe on a continuous index: no pruning.
                    return self.all_blocks();
                };
                let range = hist.buckets_for_range(lo_r, hi_r);
                let mut probe = Bitmap::with_capacity(hist.bucket_count());
                probe.set_range(*range.start(), *range.end());
                let mut out = Bitmap::new();
                if let Some(f) = &self.frozen {
                    // The inverted bucket→blocks entries answer the
                    // frozen half in O(buckets in range) block reads.
                    for bucket in range {
                        out.or_assign(&frozen_bitmap(
                            &f.reader,
                            "layered bucket bitmap",
                            &bucket_key(bucket),
                        ));
                    }
                }
                let base = self.base() as usize;
                for (slot, entry) in entries.iter().enumerate() {
                    if let Some(e) = entry {
                        if e.intersects(&probe) {
                            out.set(base + slot);
                        }
                    }
                }
                out
            }
            FirstLevel::Discrete { .. } => match pred {
                KeyPredicate::Eq(v) => self.value_blocks(v),
                KeyPredicate::Range(lo, hi) => {
                    let mut out = Bitmap::new();
                    self.for_each_value(|v, bits| {
                        if v >= lo && v <= hi {
                            out.or_assign(bits);
                        }
                    });
                    out
                }
            },
        }
    }

    /// Blocks containing any indexed transaction — the
    /// `First_level_bitmap(I)` of Algorithms 2 and 3.
    pub fn all_blocks(&self) -> Bitmap {
        let mut out = match &self.frozen {
            Some(f) => frozen_bitmap(&f.reader, "layered all-blocks bitmap", &[TAG_ALL_BLOCKS]),
            None => Bitmap::new(),
        };
        let base = self.base() as usize;
        match &self.first {
            FirstLevel::Continuous { entries, .. } => {
                for (slot, e) in entries.iter().enumerate() {
                    if e.is_some() {
                        out.set(base + slot);
                    }
                }
            }
            FirstLevel::Discrete { per_value } => {
                for bits in per_value.values() {
                    out.or_assign_shifted(bits, base);
                }
            }
        }
        out
    }

    /// Second-level search within one block: pointers to transactions
    /// whose value matches `pred`, in value order.
    pub fn search_block(&self, bid: BlockId, pred: &KeyPredicate) -> Vec<TxPtr> {
        let (lo, hi) = pred.bounds();
        let base = self.base();
        if bid < base {
            let entries = self.frozen_block_entries(bid);
            let start = entries.partition_point(|(v, _)| v < lo);
            let end = entries.partition_point(|(v, _)| v <= hi);
            return entries[start..end].iter().map(|(_, p)| *p).collect();
        }
        let Some(Some(tree)) = self.second.get((bid - base) as usize) else {
            return Vec::new();
        };
        tree.range(Some(lo), Some(hi)).map(|(_, p)| *p).collect()
    }

    /// One frozen block's sorted second-level entries (empty when the
    /// block holds none).
    fn frozen_block_entries(&self, bid: BlockId) -> Vec<(Value, TxPtr)> {
        let Some(f) = &self.frozen else {
            return Vec::new();
        };
        read_fail(
            "layered second level",
            f.reader.get(&bid_key(TAG_BLOCK_ENTRIES, bid)),
        )
        .map(|bytes| entries_from_bytes(&bytes))
        .unwrap_or_default()
    }

    /// All (value, pointer) pairs of one block in value order — the
    /// sorted leaf scan the per-block sort-merge joins rely on
    /// ("transactions are sorted at the leaf level").
    pub fn block_sorted_entries(&self, bid: BlockId) -> Vec<(Value, TxPtr)> {
        let base = self.base();
        if bid < base {
            return self.frozen_block_entries(bid);
        }
        match self.second.get((bid - base) as usize) {
            Some(Some(tree)) => tree.iter().map(|(k, p)| (k.clone(), *p)).collect(),
            _ => Vec::new(),
        }
    }

    /// The numeric (lo, hi) envelope of block `bid`'s first-level entry
    /// (continuous indexes only): the union of its set buckets' bounds.
    /// `None` on either side means unbounded.
    pub fn block_rank_envelope(&self, bid: BlockId) -> Option<(Option<i64>, Option<i64>)> {
        let FirstLevel::Continuous { hist, .. } = &self.first else {
            return None;
        };
        let entry = self.block_buckets(bid)?;
        let mut lo: Option<Option<i64>> = None;
        let mut hi: Option<Option<i64>> = None;
        for bucket in entry.iter_ones() {
            let (bl, bh) = hist.bucket_bounds(bucket);
            if lo.is_none() {
                lo = Some(bl);
            }
            hi = Some(bh);
        }
        match (lo, hi) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        }
    }

    /// Block-pair pruning for on-chain join (Algorithm 2): do blocks
    /// `bid_r` (this index) and `bid_s` (the `other` index) possibly
    /// share join keys?
    pub fn blocks_intersect(&self, bid_r: BlockId, other: &LayeredIndex, bid_s: BlockId) -> bool {
        match (&self.first, &other.first) {
            (FirstLevel::Continuous { hist, .. }, FirstLevel::Continuous { hist: hist_s, .. }) => {
                let (Some(er), Some(es)) = (self.block_buckets(bid_r), other.block_buckets(bid_s))
                else {
                    return false;
                };
                // ∃ bucket k in e_r, m in e_s with overlapping bounds
                // (¬(k.u < m.l ∨ k.l > m.u)).
                for k in er.iter_ones() {
                    let (kl, ku) = hist.bucket_bounds(k);
                    for m in es.iter_ones() {
                        let (ml, mu) = hist_s.bucket_bounds(m);
                        let disjoint_low = matches!((ku, ml), (Some(u), Some(l)) if u <= l);
                        let disjoint_high = matches!((kl, mu), (Some(l), Some(u)) if l >= u);
                        if !(disjoint_low || disjoint_high) {
                            return true;
                        }
                    }
                }
                false
            }
            (FirstLevel::Discrete { .. }, FirstLevel::Discrete { .. }) => {
                // "depends on whether there are join results of each
                // bitmap key": some shared value present in both blocks.
                let mut hit = false;
                self.for_each_value(|v, bits| {
                    if !hit && bits.get(bid_r as usize) && other.value_blocks(v).get(bid_s as usize)
                    {
                        hit = true;
                    }
                });
                hit
            }
            // Mixed continuous/discrete join attributes: cannot prune.
            _ => true,
        }
    }

    /// Generates the candidate block *pairs* for an equi-join of this
    /// index (relation r, masked by `mask_r`) with `other` (relation s,
    /// masked by `mask_s`) — Algorithm 2's `intersect` pruning, driven
    /// from the value side for discrete attributes so cost is
    /// O(values·pairs) instead of O(blocks²·values).
    pub fn join_pairs(
        &self,
        mask_r: &Bitmap,
        other: &LayeredIndex,
        mask_s: &Bitmap,
    ) -> Vec<(BlockId, BlockId)> {
        match (&self.first, &other.first) {
            (FirstLevel::Discrete { .. }, FirstLevel::Discrete { .. }) => {
                // The output is an order-insensitive set (sorted below),
                // so driving from this side is equivalent to driving
                // from the smaller map.
                let mut pairs: HashSet<(BlockId, BlockId)> = HashSet::new();
                self.for_each_value(|v, bits_r| {
                    let bits_s = other.value_blocks(v);
                    if bits_s.is_empty() {
                        return;
                    }
                    for br in bits_r.and(mask_r).iter_ones() {
                        for bs in bits_s.and(mask_s).iter_ones() {
                            pairs.insert((br as BlockId, bs as BlockId));
                        }
                    }
                });
                let mut out: Vec<_> = pairs.into_iter().collect();
                out.sort_unstable();
                out
            }
            _ => {
                // Continuous (or mixed): bucket-envelope check per pair;
                // bucket bitmaps are ≤ histogram depth, so this is cheap.
                let r_blocks = self.all_blocks().and(mask_r);
                let s_blocks = other.all_blocks().and(mask_s);
                let mut out = Vec::new();
                for br in r_blocks.iter_ones() {
                    for bs in s_blocks.iter_ones() {
                        if self.blocks_intersect(br as BlockId, other, bs as BlockId) {
                            out.push((br as BlockId, bs as BlockId));
                        }
                    }
                }
                out
            }
        }
    }

    /// On-off-chain pruning (Algorithm 3): does block `bid` possibly
    /// hold values in the off-chain range `[s_min, s_max]`
    /// (¬(k.u ≤ s_min ∨ k.l ≥ s_max) for some set bucket k)?
    pub fn block_intersects_range(&self, bid: BlockId, s_min: i64, s_max: i64) -> bool {
        match &self.first {
            FirstLevel::Continuous { hist, .. } => {
                let Some(entry) = self.block_buckets(bid) else {
                    return false;
                };
                let hit = entry.iter_ones().any(|k| {
                    let (kl, ku) = hist.bucket_bounds(k);
                    let below = matches!(ku, Some(u) if u <= s_min);
                    let above = matches!(kl, Some(l) if l >= s_max);
                    !(below || above)
                });
                hit
            }
            FirstLevel::Discrete { .. } => true,
        }
    }

    /// Blocks holding any of the given discrete values ("execute OR
    /// operation on bitmaps of unique keys", Algorithm 3's discrete
    /// case).
    pub fn blocks_for_values<'a>(&self, values: impl Iterator<Item = &'a Value>) -> Bitmap {
        let mut out = Bitmap::new();
        for v in values {
            out.or_assign(&self.candidate_blocks(&KeyPredicate::Eq(v.clone())));
        }
        out
    }

    /// The histogram (continuous indexes only).
    pub fn histogram(&self) -> Option<&EqualDepthHistogram> {
        match &self.first {
            FirstLevel::Continuous { hist, .. } => Some(hist),
            FirstLevel::Discrete { .. } => None,
        }
    }

    /// Resident bytes of this index: the in-memory tail structures plus
    /// the frozen checkpoint's always-loaded fence/meta top level
    /// (lazily cached level-1 blocks are accounted by the store's
    /// index-block cache, not per family).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        match &self.first {
            FirstLevel::Continuous { hist, entries } => {
                bytes += hist.bounds().len() * 8;
                for e in entries.iter().flatten() {
                    bytes += e.byte_len();
                }
            }
            FirstLevel::Discrete { per_value } => {
                for (v, bits) in per_value {
                    bytes += crate::paged::value_resident_bytes(v) + bits.byte_len();
                }
            }
        }
        for tree in self.second.iter().flatten() {
            for (v, _) in tree.iter() {
                bytes += crate::paged::value_resident_bytes(v) + std::mem::size_of::<TxPtr>() + 16;
            }
        }
        if let Some(f) = &self.frozen {
            bytes += f.reader.memory_bytes();
        }
        bytes
    }

    /// Freezes the complete state (frozen ∪ tail) into one checkpoint
    /// covering `[0, covered)` — the full-rewrite merge an LSM
    /// compaction would do, run by the indexer lane that owns this
    /// family.
    pub fn checkpoint(&self) -> IndexCheckpoint {
        let mut map: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        if let Some(f) = &self.frozen {
            read_fail(
                "layered checkpoint sweep",
                f.reader.scan_range(&[], None, &mut |k, v| {
                    map.insert(k.to_vec(), v.to_vec());
                }),
            );
        }
        let base = self.base();
        match &self.first {
            FirstLevel::Continuous { hist, entries } => {
                let mut bucket_blocks: Vec<Bitmap> = vec![Bitmap::new(); hist.bucket_count()];
                for (slot, e) in entries.iter().enumerate() {
                    let Some(e) = e else { continue };
                    map.insert(
                        bid_key(TAG_BLOCK_BUCKETS, base + slot as u64),
                        bitmap_bytes(e),
                    );
                    for bucket in e.iter_ones() {
                        bucket_blocks[bucket].set(base as usize + slot);
                    }
                }
                for (bucket, tail_bits) in bucket_blocks.iter().enumerate() {
                    if tail_bits.is_empty() {
                        continue;
                    }
                    let key = bucket_key(bucket);
                    let mut merged = map
                        .get(&key)
                        .map(|b| bitmap_from_bytes(b))
                        .unwrap_or_default();
                    merged.or_assign(tail_bits);
                    map.insert(key, bitmap_bytes(&merged));
                }
            }
            FirstLevel::Discrete { per_value } => {
                for (v, tail_bits) in per_value {
                    let key = value_key(v);
                    let mut merged = map
                        .get(&key)
                        .map(|b| bitmap_from_bytes(b))
                        .unwrap_or_default();
                    merged.or_assign_shifted(tail_bits, base as usize);
                    map.insert(key, bitmap_bytes(&merged));
                }
            }
        }
        for (slot, tree) in self.second.iter().enumerate() {
            let Some(tree) = tree else { continue };
            let entries: Vec<(Value, TxPtr)> = tree.iter().map(|(k, p)| (k.clone(), *p)).collect();
            map.insert(
                bid_key(TAG_BLOCK_ENTRIES, base + slot as u64),
                entries_bytes(&entries),
            );
        }
        map.insert(vec![TAG_ALL_BLOCKS], bitmap_bytes(&self.all_blocks()));
        IndexCheckpoint {
            family: self.family(),
            height: self.covered(),
            meta: encode_meta(&self.first),
            entries: map.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_crypto::sig::KeyId;

    /// Builds a block whose donate transactions carry the given amounts.
    fn block(height: u64, amounts: &[i64], tname: &str) -> Block {
        let txs = amounts
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut t = Transaction::new(
                    height * 100 + i as u64,
                    KeyId([(a % 3) as u8; 8]),
                    tname,
                    vec![Value::str("donor"), Value::str("proj"), Value::decimal(a)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
    }

    fn amount_index() -> LayeredIndex {
        let sample: Vec<i64> = (0..1000)
            .map(|i| Value::decimal(i).numeric_rank().unwrap())
            .collect();
        LayeredIndex::new_continuous(
            Some("donate".into()),
            ColumnRef::App(2),
            EqualDepthHistogram::from_sample(sample, 10),
        )
    }

    #[test]
    fn continuous_first_level_prunes_blocks() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20, 30], "donate"));
        idx.update(&block(1, &[500, 600], "donate"));
        idx.update(&block(2, &[900, 950], "donate"));

        let pred = KeyPredicate::Range(Value::decimal(550), Value::decimal(650));
        let cand = idx.candidate_blocks(&pred);
        assert!(cand.get(1));
        assert!(!cand.get(0), "block 0 (low amounts) should be pruned");
        assert!(!cand.get(2), "block 2 (high amounts) should be pruned");
    }

    #[test]
    fn second_level_finds_exact_pointers() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20, 30, 40], "donate"));
        let ptrs = idx.search_block(
            0,
            &KeyPredicate::Range(Value::decimal(15), Value::decimal(35)),
        );
        assert_eq!(ptrs.len(), 2);
        let idxs: Vec<u32> = ptrs.iter().map(|p| p.index).collect();
        assert_eq!(idxs, vec![1, 2]);
    }

    #[test]
    fn ignores_other_tables() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20], "transfer"));
        assert!(idx.all_blocks().is_empty());
        assert!(idx
            .search_block(0, &KeyPredicate::Eq(Value::decimal(10)))
            .is_empty());
    }

    #[test]
    fn discrete_index_per_value_bitmaps() {
        let mut idx = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        idx.update(&block(0, &[1], "donate"));
        idx.update(&block(1, &[1], "transfer"));
        idx.update(&block(2, &[1], "donate"));

        let cand = idx.candidate_blocks(&KeyPredicate::Eq(Value::str("donate")));
        assert_eq!(cand.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        let none = idx.candidate_blocks(&KeyPredicate::Eq(Value::str("missing")));
        assert!(none.is_empty());
    }

    #[test]
    fn discrete_sender_index_tracks_operators() {
        let mut idx = LayeredIndex::new_discrete(None, ColumnRef::SenId);
        idx.update(&block(0, &[0, 1, 2], "donate")); // senders 0,1,2
        idx.update(&block(1, &[0, 0], "donate")); // sender 0 only
        let sender0 = Value::Bytes(vec![0u8; 8]);
        let cand = idx.candidate_blocks(&KeyPredicate::Eq(sender0));
        assert_eq!(cand.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        let sender1 = Value::Bytes(vec![1u8; 8]);
        let cand = idx.candidate_blocks(&KeyPredicate::Eq(sender1));
        assert_eq!(cand.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn join_pruning_continuous() {
        let mut r = amount_index();
        let mut s = amount_index();
        r.update(&block(0, &[10, 20], "donate")); // low
        r.update(&block(1, &[955], "donate")); // high (same bucket as 950/980)
        s.update(&block(0, &[950, 980], "donate")); // high
        assert!(
            !r.blocks_intersect(0, &s, 0),
            "low block shouldn't intersect high block"
        );
        assert!(r.blocks_intersect(1, &s, 0), "high blocks should intersect");
        assert!(
            !r.blocks_intersect(5, &s, 0),
            "missing block never intersects"
        );
    }

    #[test]
    fn join_pruning_discrete() {
        let mut r = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        let mut s = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        r.update(&block(0, &[1], "donate"));
        s.update(&block(0, &[1], "transfer"));
        assert!(!r.blocks_intersect(0, &s, 0));
        let mut s2 = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        s2.update(&block(0, &[1], "donate"));
        assert!(r.blocks_intersect(0, &s2, 0));
    }

    #[test]
    fn onoff_range_pruning() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20], "donate"));
        idx.update(&block(1, &[900, 950], "donate"));
        let lo = Value::decimal(800).numeric_rank().unwrap();
        let hi = Value::decimal(999).numeric_rank().unwrap();
        assert!(!idx.block_intersects_range(0, lo, hi));
        assert!(idx.block_intersects_range(1, lo, hi));
    }

    #[test]
    fn sorted_entries_are_sorted() {
        let mut idx = amount_index();
        idx.update(&block(0, &[30, 10, 20, 40, 5], "donate"));
        let entries = idx.block_sorted_entries(0);
        assert_eq!(entries.len(), 5);
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(idx.block_sorted_entries(7).is_empty());
    }

    #[test]
    fn rank_envelope() {
        let mut idx = amount_index();
        idx.update(&block(0, &[100, 200], "donate"));
        let (lo, hi) = idx.block_rank_envelope(0).unwrap();
        // Envelope must contain the actual values.
        let v100 = Value::decimal(100).numeric_rank().unwrap();
        let v200 = Value::decimal(200).numeric_rank().unwrap();
        if let Some(lo) = lo {
            assert!(lo < v100);
        }
        if let Some(hi) = hi {
            assert!(hi >= v200);
        }
        assert!(idx.block_rank_envelope(3).is_none());
    }

    #[test]
    fn empty_query_short_circuit() {
        // The paper's benefit (ii): empty queries are answered by the
        // first level alone.
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20], "donate"));
        let pred = KeyPredicate::Range(Value::decimal(5000), Value::decimal(6000));
        assert!(idx.candidate_blocks(&pred).is_empty());
    }

    #[test]
    fn covered_tracks_height_and_checkpoint_is_complete() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20], "donate"));
        idx.update(&block(1, &[500], "donate"));
        assert_eq!(idx.covered(), 2);
        let cp = idx.checkpoint();
        assert_eq!(cp.height, 2);
        assert_eq!(cp.family, family_layered(Some("donate"), "app2"));
        // Sorted, unique keys — the checkpoint writer's contract.
        assert!(cp.entries.windows(2).all(|w| w[0].0 < w[1].0));
        // all-blocks + 2 × (block buckets + block entries) + bucket inversions.
        assert!(cp.entries.len() >= 5);
    }
}
