//! The layered index (§IV-B, Fig. 4).
//!
//! Two levels:
//!
//! * **First level** describes the distribution of an attribute's
//!   values among blocks. For a *continuous* attribute each block gets
//!   a bitmap over the buckets of a pre-built equal-depth histogram
//!   (bit *k* set iff the block holds a transaction whose value falls
//!   in bucket *k*). For a *discrete* attribute there is one bitmap
//!   per distinct value (bit *i* set iff block *i* holds that value).
//! * **Second level** is one per-block B⁺-tree on the attribute, built
//!   by bulk loading when the block is chained — append-only, never
//!   rebalanced.
//!
//! Queries intersect the first level with a block mask (e.g. a time
//! window from the block-level index) to prune blocks, then use the
//! per-block trees to fetch exactly the matching transactions.

use crate::bitmap::Bitmap;
use crate::bptree::BPlusTree;
use crate::histogram::EqualDepthHistogram;
use sebdb_storage::TxPtr;
use sebdb_types::{Block, BlockId, ColumnRef, Transaction, Value};
use std::collections::HashMap;

/// Order of second-level trees: sized so a 4 KB page holds one node of
/// ~64-byte entries (the paper's MB-tree page size, §VII-A).
pub const SECOND_LEVEL_ORDER: usize = 64;

/// A simple predicate over the indexed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPredicate {
    /// `column = value`.
    Eq(Value),
    /// `column BETWEEN lo AND hi` (inclusive).
    Range(Value, Value),
}

impl KeyPredicate {
    /// The (lo, hi) closed interval this predicate covers.
    pub fn bounds(&self) -> (&Value, &Value) {
        match self {
            KeyPredicate::Eq(v) => (v, v),
            KeyPredicate::Range(lo, hi) => (lo, hi),
        }
    }

    /// Whether `v` satisfies the predicate.
    pub fn matches(&self, v: &Value) -> bool {
        let (lo, hi) = self.bounds();
        v >= lo && v <= hi
    }
}

#[derive(Debug)]
enum FirstLevel {
    Continuous {
        hist: EqualDepthHistogram,
        /// Per block: bitmap over histogram buckets (None = block holds
        /// no indexed transactions).
        entries: Vec<Option<Bitmap>>,
    },
    Discrete {
        /// Per distinct value: bitmap over blocks.
        per_value: HashMap<Value, Bitmap>,
    },
}

/// A layered index on one attribute of one table (or of *all* tables
/// for the system columns `SenID` / `Tname`, which drive tracking).
#[derive(Debug)]
pub struct LayeredIndex {
    /// Table the index covers; `None` indexes every table (system
    /// columns only).
    pub table: Option<String>,
    /// Indexed column.
    pub column: ColumnRef,
    first: FirstLevel,
    /// Per-block second-level trees, indexed by block id.
    second: Vec<Option<BPlusTree<Value, TxPtr>>>,
    order: usize,
}

impl LayeredIndex {
    /// Creates a continuous-attribute index with a pre-sampled
    /// histogram (§IV-B: "created by sampling historical transactions
    /// during index creating").
    pub fn new_continuous(
        table: Option<String>,
        column: ColumnRef,
        hist: EqualDepthHistogram,
    ) -> Self {
        LayeredIndex {
            table,
            column,
            first: FirstLevel::Continuous {
                hist,
                entries: Vec::new(),
            },
            second: Vec::new(),
            order: SECOND_LEVEL_ORDER,
        }
    }

    /// Creates a discrete-attribute index.
    pub fn new_discrete(table: Option<String>, column: ColumnRef) -> Self {
        LayeredIndex {
            table,
            column,
            first: FirstLevel::Discrete {
                per_value: HashMap::new(),
            },
            second: Vec::new(),
            order: SECOND_LEVEL_ORDER,
        }
    }

    /// Whether `tx` is covered by this index.
    fn covers(&self, tx: &Transaction) -> bool {
        match &self.table {
            Some(t) => tx.tname.eq_ignore_ascii_case(t),
            None => true,
        }
    }

    /// Indexes a newly chained block: appends a first-level entry and
    /// bulk-loads the block's second-level tree.
    pub fn update(&mut self, block: &Block) {
        let rows: Vec<u32> = block
            .transactions
            .iter()
            .enumerate()
            .filter(|(_, tx)| self.covers(tx))
            .map(|(i, _)| i as u32)
            .collect();
        self.update_rows(block, &rows);
    }

    /// Per-relation maintenance entry point: indexes a newly chained
    /// block from a pre-partitioned tuple set. `rows` are the positions
    /// (ascending) of the block's transactions that belong to this
    /// index's relation — the relation-sharded applier partitions each
    /// sealed block by `Tname` once and hands every lane exactly its
    /// rows, so per-table indexes skip the full-block `covers` scan.
    /// Equivalent to [`Self::update`] when `rows` holds exactly the
    /// covered positions, which the caller guarantees.
    pub fn update_rows(&mut self, block: &Block, rows: &[u32]) {
        let bid = block.header.height as usize;
        if self.second.len() <= bid {
            self.second.resize_with(bid + 1, || None);
            if let FirstLevel::Continuous { entries, .. } = &mut self.first {
                entries.resize_with(bid + 1, || None);
            }
        }

        let mut keyed: Vec<(Value, TxPtr)> = Vec::new();
        for &i in rows {
            let Some(tx) = block.transactions.get(i as usize) else {
                continue;
            };
            let Some(v) = tx.get(self.column) else {
                continue;
            };
            if v == Value::Null {
                continue;
            }
            keyed.push((
                v,
                TxPtr {
                    block: bid as BlockId,
                    index: i,
                },
            ));
        }
        if keyed.is_empty() {
            return;
        }

        match &mut self.first {
            FirstLevel::Continuous { hist, entries } => {
                let mut bucket_map = Bitmap::with_capacity(hist.bucket_count());
                for (v, _) in &keyed {
                    if let Some(rank) = v.numeric_rank() {
                        bucket_map.set(hist.bucket_of(rank));
                    }
                }
                entries[bid] = Some(bucket_map);
            }
            FirstLevel::Discrete { per_value } => {
                for (v, _) in &keyed {
                    per_value.entry(v.clone()).or_default().set(bid);
                }
            }
        }

        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        self.second[bid] = Some(BPlusTree::bulk_load(self.order, keyed));
    }

    /// First-level filter: blocks that may contain values matching
    /// `pred` ("blocks without query results are filtered").
    pub fn candidate_blocks(&self, pred: &KeyPredicate) -> Bitmap {
        match &self.first {
            FirstLevel::Continuous { hist, entries } => {
                let (lo, hi) = pred.bounds();
                let (Some(lo_r), Some(hi_r)) = (lo.numeric_rank(), hi.numeric_rank()) else {
                    // Non-numeric probe on a continuous index: no pruning.
                    return self.all_blocks();
                };
                let range = hist.buckets_for_range(lo_r, hi_r);
                let mut probe = Bitmap::with_capacity(hist.bucket_count());
                probe.set_range(*range.start(), *range.end());
                let mut out = Bitmap::new();
                for (bid, entry) in entries.iter().enumerate() {
                    if let Some(e) = entry {
                        if e.intersects(&probe) {
                            out.set(bid);
                        }
                    }
                }
                out
            }
            FirstLevel::Discrete { per_value } => match pred {
                KeyPredicate::Eq(v) => per_value.get(v).cloned().unwrap_or_default(),
                KeyPredicate::Range(lo, hi) => {
                    let mut out = Bitmap::new();
                    for (v, bits) in per_value {
                        if v >= lo && v <= hi {
                            out.or_assign(bits);
                        }
                    }
                    out
                }
            },
        }
    }

    /// Blocks containing any indexed transaction — the
    /// `First_level_bitmap(I)` of Algorithms 2 and 3.
    pub fn all_blocks(&self) -> Bitmap {
        match &self.first {
            FirstLevel::Continuous { entries, .. } => {
                let mut out = Bitmap::new();
                for (bid, e) in entries.iter().enumerate() {
                    if e.is_some() {
                        out.set(bid);
                    }
                }
                out
            }
            FirstLevel::Discrete { per_value } => {
                let mut out = Bitmap::new();
                for bits in per_value.values() {
                    out.or_assign(bits);
                }
                out
            }
        }
    }

    /// Second-level search within one block: pointers to transactions
    /// whose value matches `pred`, in value order.
    pub fn search_block(&self, bid: BlockId, pred: &KeyPredicate) -> Vec<TxPtr> {
        let Some(Some(tree)) = self.second.get(bid as usize) else {
            return Vec::new();
        };
        let (lo, hi) = pred.bounds();
        tree.range(Some(lo), Some(hi)).map(|(_, p)| *p).collect()
    }

    /// All (value, pointer) pairs of one block in value order — the
    /// sorted leaf scan the per-block sort-merge joins rely on
    /// ("transactions are sorted at the leaf level").
    pub fn block_sorted_entries(&self, bid: BlockId) -> Vec<(Value, TxPtr)> {
        match self.second.get(bid as usize) {
            Some(Some(tree)) => tree.iter().map(|(k, p)| (k.clone(), *p)).collect(),
            _ => Vec::new(),
        }
    }

    /// The numeric (lo, hi) envelope of block `bid`'s first-level entry
    /// (continuous indexes only): the union of its set buckets' bounds.
    /// `None` on either side means unbounded.
    pub fn block_rank_envelope(&self, bid: BlockId) -> Option<(Option<i64>, Option<i64>)> {
        let FirstLevel::Continuous { hist, entries } = &self.first else {
            return None;
        };
        let entry = entries.get(bid as usize)?.as_ref()?;
        let mut lo: Option<Option<i64>> = None;
        let mut hi: Option<Option<i64>> = None;
        for bucket in entry.iter_ones() {
            let (bl, bh) = hist.bucket_bounds(bucket);
            if lo.is_none() {
                lo = Some(bl);
            }
            hi = Some(bh);
        }
        match (lo, hi) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        }
    }

    /// Block-pair pruning for on-chain join (Algorithm 2): do blocks
    /// `bid_r` (this index) and `bid_s` (the `other` index) possibly
    /// share join keys?
    pub fn blocks_intersect(&self, bid_r: BlockId, other: &LayeredIndex, bid_s: BlockId) -> bool {
        match (&self.first, &other.first) {
            (
                FirstLevel::Continuous { hist, entries },
                FirstLevel::Continuous {
                    hist: hist_s,
                    entries: entries_s,
                },
            ) => {
                let (Some(Some(er)), Some(Some(es))) =
                    (entries.get(bid_r as usize), entries_s.get(bid_s as usize))
                else {
                    return false;
                };
                // ∃ bucket k in e_r, m in e_s with overlapping bounds
                // (¬(k.u < m.l ∨ k.l > m.u)).
                for k in er.iter_ones() {
                    let (kl, ku) = hist.bucket_bounds(k);
                    for m in es.iter_ones() {
                        let (ml, mu) = hist_s.bucket_bounds(m);
                        let disjoint_low = matches!((ku, ml), (Some(u), Some(l)) if u <= l);
                        let disjoint_high = matches!((kl, mu), (Some(l), Some(u)) if l >= u);
                        if !(disjoint_low || disjoint_high) {
                            return true;
                        }
                    }
                }
                false
            }
            (FirstLevel::Discrete { per_value }, FirstLevel::Discrete { per_value: pv_s }) => {
                // "depends on whether there are join results of each
                // bitmap key": some shared value present in both blocks.
                per_value.iter().any(|(v, bits)| {
                    bits.get(bid_r as usize) && pv_s.get(v).is_some_and(|b| b.get(bid_s as usize))
                })
            }
            // Mixed continuous/discrete join attributes: cannot prune.
            _ => true,
        }
    }

    /// Generates the candidate block *pairs* for an equi-join of this
    /// index (relation r, masked by `mask_r`) with `other` (relation s,
    /// masked by `mask_s`) — Algorithm 2's `intersect` pruning, driven
    /// from the value side for discrete attributes so cost is
    /// O(values·pairs) instead of O(blocks²·values).
    pub fn join_pairs(
        &self,
        mask_r: &Bitmap,
        other: &LayeredIndex,
        mask_s: &Bitmap,
    ) -> Vec<(BlockId, BlockId)> {
        use std::collections::HashSet;
        match (&self.first, &other.first) {
            (FirstLevel::Discrete { per_value }, FirstLevel::Discrete { per_value: pv_s }) => {
                // Iterate the smaller value map, probe the larger.
                let mut pairs: HashSet<(BlockId, BlockId)> = HashSet::new();
                let (small, large, swapped) = if per_value.len() <= pv_s.len() {
                    (per_value, pv_s, false)
                } else {
                    (pv_s, per_value, true)
                };
                for (v, bits_a) in small {
                    let Some(bits_b) = large.get(v) else { continue };
                    let (bits_r, bits_s) = if swapped {
                        (bits_b, bits_a)
                    } else {
                        (bits_a, bits_b)
                    };
                    for br in bits_r.and(mask_r).iter_ones() {
                        for bs in bits_s.and(mask_s).iter_ones() {
                            pairs.insert((br as BlockId, bs as BlockId));
                        }
                    }
                }
                let mut out: Vec<_> = pairs.into_iter().collect();
                out.sort_unstable();
                out
            }
            _ => {
                // Continuous (or mixed): bucket-envelope check per pair;
                // bucket bitmaps are ≤ histogram depth, so this is cheap.
                let r_blocks = self.all_blocks().and(mask_r);
                let s_blocks = other.all_blocks().and(mask_s);
                let mut out = Vec::new();
                for br in r_blocks.iter_ones() {
                    for bs in s_blocks.iter_ones() {
                        if self.blocks_intersect(br as BlockId, other, bs as BlockId) {
                            out.push((br as BlockId, bs as BlockId));
                        }
                    }
                }
                out
            }
        }
    }

    /// On-off-chain pruning (Algorithm 3): does block `bid` possibly
    /// hold values in the off-chain range `[s_min, s_max]`
    /// (¬(k.u ≤ s_min ∨ k.l ≥ s_max) for some set bucket k)?
    pub fn block_intersects_range(&self, bid: BlockId, s_min: i64, s_max: i64) -> bool {
        match &self.first {
            FirstLevel::Continuous { hist, entries } => {
                let Some(Some(entry)) = entries.get(bid as usize) else {
                    return false;
                };
                entry.iter_ones().any(|k| {
                    let (kl, ku) = hist.bucket_bounds(k);
                    let below = matches!(ku, Some(u) if u <= s_min);
                    let above = matches!(kl, Some(l) if l >= s_max);
                    !(below || above)
                })
            }
            FirstLevel::Discrete { .. } => true,
        }
    }

    /// Blocks holding any of the given discrete values ("execute OR
    /// operation on bitmaps of unique keys", Algorithm 3's discrete
    /// case).
    pub fn blocks_for_values<'a>(&self, values: impl Iterator<Item = &'a Value>) -> Bitmap {
        let mut out = Bitmap::new();
        for v in values {
            out.or_assign(&self.candidate_blocks(&KeyPredicate::Eq(v.clone())));
        }
        out
    }

    /// The histogram (continuous indexes only).
    pub fn histogram(&self) -> Option<&EqualDepthHistogram> {
        match &self.first {
            FirstLevel::Continuous { hist, .. } => Some(hist),
            FirstLevel::Discrete { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_crypto::sig::KeyId;

    /// Builds a block whose donate transactions carry the given amounts.
    fn block(height: u64, amounts: &[i64], tname: &str) -> Block {
        let txs = amounts
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut t = Transaction::new(
                    height * 100 + i as u64,
                    KeyId([(a % 3) as u8; 8]),
                    tname,
                    vec![Value::str("donor"), Value::str("proj"), Value::decimal(a)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
    }

    fn amount_index() -> LayeredIndex {
        let sample: Vec<i64> = (0..1000)
            .map(|i| Value::decimal(i).numeric_rank().unwrap())
            .collect();
        LayeredIndex::new_continuous(
            Some("donate".into()),
            ColumnRef::App(2),
            EqualDepthHistogram::from_sample(sample, 10),
        )
    }

    #[test]
    fn continuous_first_level_prunes_blocks() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20, 30], "donate"));
        idx.update(&block(1, &[500, 600], "donate"));
        idx.update(&block(2, &[900, 950], "donate"));

        let pred = KeyPredicate::Range(Value::decimal(550), Value::decimal(650));
        let cand = idx.candidate_blocks(&pred);
        assert!(cand.get(1));
        assert!(!cand.get(0), "block 0 (low amounts) should be pruned");
        assert!(!cand.get(2), "block 2 (high amounts) should be pruned");
    }

    #[test]
    fn second_level_finds_exact_pointers() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20, 30, 40], "donate"));
        let ptrs = idx.search_block(
            0,
            &KeyPredicate::Range(Value::decimal(15), Value::decimal(35)),
        );
        assert_eq!(ptrs.len(), 2);
        let idxs: Vec<u32> = ptrs.iter().map(|p| p.index).collect();
        assert_eq!(idxs, vec![1, 2]);
    }

    #[test]
    fn ignores_other_tables() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20], "transfer"));
        assert!(idx.all_blocks().is_empty());
        assert!(idx
            .search_block(0, &KeyPredicate::Eq(Value::decimal(10)))
            .is_empty());
    }

    #[test]
    fn discrete_index_per_value_bitmaps() {
        let mut idx = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        idx.update(&block(0, &[1], "donate"));
        idx.update(&block(1, &[1], "transfer"));
        idx.update(&block(2, &[1], "donate"));

        let cand = idx.candidate_blocks(&KeyPredicate::Eq(Value::str("donate")));
        assert_eq!(cand.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        let none = idx.candidate_blocks(&KeyPredicate::Eq(Value::str("missing")));
        assert!(none.is_empty());
    }

    #[test]
    fn discrete_sender_index_tracks_operators() {
        let mut idx = LayeredIndex::new_discrete(None, ColumnRef::SenId);
        idx.update(&block(0, &[0, 1, 2], "donate")); // senders 0,1,2
        idx.update(&block(1, &[0, 0], "donate")); // sender 0 only
        let sender0 = Value::Bytes(vec![0u8; 8]);
        let cand = idx.candidate_blocks(&KeyPredicate::Eq(sender0));
        assert_eq!(cand.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        let sender1 = Value::Bytes(vec![1u8; 8]);
        let cand = idx.candidate_blocks(&KeyPredicate::Eq(sender1));
        assert_eq!(cand.iter_ones().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn join_pruning_continuous() {
        let mut r = amount_index();
        let mut s = amount_index();
        r.update(&block(0, &[10, 20], "donate")); // low
        r.update(&block(1, &[955], "donate")); // high (same bucket as 950/980)
        s.update(&block(0, &[950, 980], "donate")); // high
        assert!(
            !r.blocks_intersect(0, &s, 0),
            "low block shouldn't intersect high block"
        );
        assert!(r.blocks_intersect(1, &s, 0), "high blocks should intersect");
        assert!(
            !r.blocks_intersect(5, &s, 0),
            "missing block never intersects"
        );
    }

    #[test]
    fn join_pruning_discrete() {
        let mut r = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        let mut s = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        r.update(&block(0, &[1], "donate"));
        s.update(&block(0, &[1], "transfer"));
        assert!(!r.blocks_intersect(0, &s, 0));
        let mut s2 = LayeredIndex::new_discrete(None, ColumnRef::Tname);
        s2.update(&block(0, &[1], "donate"));
        assert!(r.blocks_intersect(0, &s2, 0));
    }

    #[test]
    fn onoff_range_pruning() {
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20], "donate"));
        idx.update(&block(1, &[900, 950], "donate"));
        let lo = Value::decimal(800).numeric_rank().unwrap();
        let hi = Value::decimal(999).numeric_rank().unwrap();
        assert!(!idx.block_intersects_range(0, lo, hi));
        assert!(idx.block_intersects_range(1, lo, hi));
    }

    #[test]
    fn sorted_entries_are_sorted() {
        let mut idx = amount_index();
        idx.update(&block(0, &[30, 10, 20, 40, 5], "donate"));
        let entries = idx.block_sorted_entries(0);
        assert_eq!(entries.len(), 5);
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(idx.block_sorted_entries(7).is_empty());
    }

    #[test]
    fn rank_envelope() {
        let mut idx = amount_index();
        idx.update(&block(0, &[100, 200], "donate"));
        let (lo, hi) = idx.block_rank_envelope(0).unwrap();
        // Envelope must contain the actual values.
        let v100 = Value::decimal(100).numeric_rank().unwrap();
        let v200 = Value::decimal(200).numeric_rank().unwrap();
        if let Some(lo) = lo {
            assert!(lo < v100);
        }
        if let Some(hi) = hi {
            assert!(hi >= v200);
        }
        assert!(idx.block_rank_envelope(3).is_none());
    }

    #[test]
    fn empty_query_short_circuit() {
        // The paper's benefit (ii): empty queries are answered by the
        // first level alone.
        let mut idx = amount_index();
        idx.update(&block(0, &[10, 20], "donate"));
        let pred = KeyPredicate::Range(Value::decimal(5000), Value::decimal(6000));
        assert!(idx.candidate_blocks(&pred).is_empty());
    }
}
