//! The block-level B⁺-tree (§IV-B).
//!
//! One tree keyed by `(bid, tid, Ts)`. Because blocks are appended in
//! order, all three key components are strictly increasing together,
//! so the same tree resolves a block id, a transaction id, or a
//! timestamp to the target block ("we go from the root down to the
//! leaf node to get the location of the target block").
//!
//! Paged backend (DESIGN §13): appends only ever touch the rightmost
//! edge, so the resident tail is a plain sorted vector (operationally
//! identical to the B⁺-tree under monotone appends) and the frozen
//! prefix is served from an on-disk checkpoint whose fence-pointer top
//! level plays the role of the tree's internal nodes.

use crate::paged::{family_block, read_fail};
use sebdb_storage::{IndexCheckpoint, PagedIndexReader};
use sebdb_types::{Block, BlockId, Decoder, Encoder, Timestamp, TxId};

/// The composite key `(bid, first_tid, block_ts)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockKey {
    /// Block id.
    pub bid: BlockId,
    /// Id of the first transaction in the block (`TxId::MAX` for an
    /// empty block — it can never match a tid probe).
    pub tid: TxId,
    /// Block packaging timestamp.
    pub ts: Timestamp,
}

fn key_bytes(k: &BlockKey) -> (Vec<u8>, Vec<u8>) {
    // BE bid key keeps byte order = numeric order for the fence search.
    let mut val = Encoder::new();
    val.put_u64(k.tid);
    val.put_u64(k.ts);
    (k.bid.to_be_bytes().to_vec(), val.finish())
}

fn key_from_bytes(key: &[u8], value: &[u8]) -> BlockKey {
    let parse = || -> Result<BlockKey, sebdb_types::TypeError> {
        let bid = u64::from_be_bytes(key.try_into().map_err(|_| {
            sebdb_types::TypeError::UnexpectedEof {
                context: "block index key",
            }
        })?);
        let mut dec = Decoder::new(value);
        Ok(BlockKey {
            bid,
            tid: dec.get_u64("block index tid")?,
            ts: dec.get_u64("block index ts")?,
        })
    };
    match parse() {
        Ok(k) => k,
        Err(e) => panic!("block index checkpoint entry failed to decode: {e}"),
    }
}

/// Block-level index: resolves bid / tid / timestamp probes to blocks.
#[derive(Debug, Default)]
pub struct BlockLevelIndex {
    /// Resident tail, ascending on every key component; holds blocks
    /// `[base, covered)`.
    tail: Vec<BlockKey>,
    frozen: Option<PagedIndexReader>,
    last: Option<BlockKey>,
}

impl BlockLevelIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds an index from a frozen checkpoint; the tail starts
    /// empty at the checkpoint height.
    pub fn from_frozen(reader: PagedIndexReader) -> Self {
        let last = (!reader.meta().is_empty()).then(|| {
            let mut dec = Decoder::new(reader.meta());
            let parse = |d: &mut Decoder<'_>| -> Result<BlockKey, sebdb_types::TypeError> {
                Ok(BlockKey {
                    bid: d.get_u64("block index meta bid")?,
                    tid: d.get_u64("block index meta tid")?,
                    ts: d.get_u64("block index meta ts")?,
                })
            };
            match parse(&mut dec) {
                Ok(k) => k,
                Err(e) => panic!("block index checkpoint meta failed to decode: {e}"),
            }
        });
        BlockLevelIndex {
            tail: Vec::new(),
            frozen: Some(reader),
            last,
        }
    }

    /// Freezes the state covered so far behind a newly written
    /// checkpoint; the reader must cover exactly [`Self::len`] blocks.
    pub fn adopt_frozen(&mut self, reader: PagedIndexReader) {
        assert_eq!(
            reader.height(),
            self.len() as u64,
            "adopting a checkpoint that does not match the indexed height"
        );
        self.tail.clear();
        self.frozen = Some(reader);
    }

    fn frozen_count(&self) -> u64 {
        self.frozen.as_ref().map(|f| f.entry_count()).unwrap_or(0)
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        (self.frozen_count() as usize) + self.tail.len()
    }

    /// True when no block is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the entry for a newly chained block. Panics if the
    /// append violates the monotonicity invariant.
    pub fn append(&mut self, block: &Block) {
        let key = BlockKey {
            bid: block.header.height,
            tid: block.first_tid().unwrap_or(TxId::MAX),
            ts: block.header.timestamp,
        };
        if let Some(last) = &self.last {
            assert!(
                key.bid > last.bid && key.ts >= last.ts,
                "block index append out of order: {key:?} after {last:?}"
            );
        }
        self.tail.push(key);
        self.last = Some(key);
    }

    /// The frozen key at position `i` (`i < frozen_count`).
    fn frozen_at(&self, i: u64) -> BlockKey {
        let f = match &self.frozen {
            Some(f) => f,
            None => panic!("frozen_at without a checkpoint"),
        };
        match read_fail("block index entry", f.entry_at(i)) {
            Some((k, v)) => key_from_bytes(&k, &v),
            None => panic!("block index checkpoint entry {i} out of range"),
        }
    }

    /// Last key (frozen ∪ tail) with `field(key) ≤ probe` — the floor
    /// search the tid/ts probes run. All key components ascend together,
    /// so the tail/frozen split point works for every field.
    fn floor_by(&self, probe: u64, field: fn(&BlockKey) -> u64) -> Option<BlockKey> {
        if let Some(first) = self.tail.first() {
            if field(first) <= probe {
                let i = self.tail.partition_point(|k| field(k) <= probe);
                return Some(self.tail[i - 1]);
            }
        }
        // Probe precedes the tail: binary-search the frozen prefix
        // (O(log n) fence probes through the index-block cache).
        let n = self.frozen_count();
        let (mut lo, mut hi) = (0u64, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if field(&self.frozen_at(mid)) <= probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            None
        } else {
            Some(self.frozen_at(lo - 1))
        }
    }

    /// The block with id `bid`, if indexed.
    pub fn by_bid(&self, bid: BlockId) -> Option<BlockKey> {
        self.floor_by(bid, |k| k.bid).filter(|k| k.bid == bid)
    }

    /// The block containing transaction `tid`: the last block whose
    /// first tid is ≤ `tid`.
    pub fn by_tid(&self, tid: TxId) -> Option<BlockKey> {
        self.floor_by(tid, |k| k.tid)
    }

    /// The last block packaged at or before `ts`.
    pub fn by_ts(&self, ts: Timestamp) -> Option<BlockKey> {
        self.floor_by(ts, |k| k.ts)
    }

    /// Conservative inclusive block-id range for a time window
    /// `[start, end]`: transactions with `ts ∈ [start, end]` can only
    /// live in these blocks (a block's timestamp is an upper bound on
    /// its transactions' timestamps). Returns `None` when the window
    /// is empty or precedes the chain entirely.
    pub fn blocks_in_window(&self, start: Timestamp, end: Timestamp) -> Option<(BlockId, BlockId)> {
        if start > end || self.is_empty() {
            return None;
        }
        let max_bid = self.last?.bid;
        // First block that can contain ts >= start: the successor of the
        // last block with block_ts < start (all of whose txs have ts < start).
        let lo = match start.checked_sub(1).and_then(|s| self.by_ts(s)) {
            Some(k) => k.bid + 1,
            None => 0,
        };
        // Last block that can contain ts <= end: the first block with
        // block_ts >= end could still contain them, but later blocks may
        // too (a tx can sit in the mempool past `end`); we bound by the
        // first block whose *first* timestamp... blocks are packaged in
        // ts order, so any block with block_ts >= end may contain
        // boundary txs; the block after the first such block starts
        // strictly later only if packaging is prompt. Be conservative:
        // include through the first block with block_ts >= end, plus
        // nothing more when timestamps are dense. Executors re-filter
        // per transaction, so correctness only needs an upper bound.
        let hi = match self.by_ts(end) {
            Some(k) => (k.bid + 1).min(max_bid),
            // `end` precedes every block timestamp: only block 0 can
            // hold matching transactions.
            None => 0,
        };
        if lo > hi {
            return None;
        }
        Some((lo, hi))
    }

    /// Resident bytes (tail keys + frozen fence/meta top level).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tail.capacity() * std::mem::size_of::<BlockKey>()
            + self.frozen.as_ref().map(|f| f.memory_bytes()).unwrap_or(0)
    }

    /// Freezes the complete state (frozen ∪ tail) into one checkpoint.
    pub fn checkpoint(&self) -> IndexCheckpoint {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(self.len());
        if let Some(f) = &self.frozen {
            read_fail(
                "block index checkpoint sweep",
                f.scan_range(&[], None, &mut |k, v| {
                    entries.push((k.to_vec(), v.to_vec()));
                }),
            );
        }
        for k in &self.tail {
            let (key, val) = key_bytes(k);
            entries.push((key, val));
        }
        let meta = match &self.last {
            Some(k) => {
                let mut enc = Encoder::new();
                enc.put_u64(k.bid);
                enc.put_u64(k.tid);
                enc.put_u64(k.ts);
                enc.finish()
            }
            None => Vec::new(),
        };
        IndexCheckpoint {
            family: family_block(),
            height: self.len() as u64,
            meta,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::{Transaction, Value};

    /// Chain of `n` blocks, block h holding tids [h*10, h*10+9] and
    /// block timestamp (h+1)*100.
    fn chain(n: u64) -> Vec<Block> {
        let mut prev = Digest::ZERO;
        (0..n)
            .map(|h| {
                let txs: Vec<Transaction> = (0..10)
                    .map(|i| {
                        let mut t = Transaction::new(
                            h * 100 + i * 5,
                            KeyId([0; 8]),
                            "donate",
                            vec![Value::Int(i as i64)],
                        );
                        t.tid = h * 10 + i;
                        t
                    })
                    .collect();
                let b = Block::seal(prev, h, (h + 1) * 100, txs, |_| vec![]);
                prev = b.header.block_hash;
                b
            })
            .collect()
    }

    fn index(n: u64) -> BlockLevelIndex {
        let mut idx = BlockLevelIndex::new();
        for b in chain(n) {
            idx.append(&b);
        }
        idx
    }

    #[test]
    fn lookup_by_bid() {
        let idx = index(10);
        assert_eq!(idx.by_bid(0).unwrap().bid, 0);
        assert_eq!(idx.by_bid(7).unwrap().bid, 7);
        assert!(idx.by_bid(10).is_none());
    }

    #[test]
    fn lookup_by_tid() {
        let idx = index(10);
        // tid 34 lives in block 3 (tids 30..39).
        assert_eq!(idx.by_tid(34).unwrap().bid, 3);
        assert_eq!(idx.by_tid(0).unwrap().bid, 0);
        assert_eq!(idx.by_tid(99).unwrap().bid, 9);
        // Past the end: resolves to the last block.
        assert_eq!(idx.by_tid(1000).unwrap().bid, 9);
    }

    #[test]
    fn lookup_by_ts() {
        let idx = index(10);
        // Block h has ts (h+1)*100.
        assert_eq!(idx.by_ts(100).unwrap().bid, 0);
        assert_eq!(idx.by_ts(150).unwrap().bid, 0);
        assert_eq!(idx.by_ts(1000).unwrap().bid, 9);
        assert!(idx.by_ts(99).is_none());
    }

    #[test]
    fn window_mapping_is_conservative() {
        let idx = index(10);
        // Window covering everything.
        let (lo, hi) = idx.blocks_in_window(0, u64::MAX).unwrap();
        assert_eq!((lo, hi), (0, 9));
        // Window [250, 450]: tx timestamps in block h span [h*100, h*100+45];
        // candidates must include blocks 2,3,4.
        let (lo, hi) = idx.blocks_in_window(250, 450).unwrap();
        assert!(lo <= 2 && hi >= 4, "got ({lo},{hi})");
        // Empty window.
        assert!(idx.blocks_in_window(10, 5).is_none());
    }

    #[test]
    fn empty_index() {
        let idx = BlockLevelIndex::new();
        assert!(idx.by_bid(0).is_none());
        assert!(idx.by_tid(0).is_none());
        assert!(idx.blocks_in_window(0, 100).is_none());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_out_of_order() {
        let blocks = chain(2);
        let mut idx = BlockLevelIndex::new();
        idx.append(&blocks[1]);
        idx.append(&blocks[0]);
    }

    #[test]
    fn monotone_composite_key() {
        // The paper's invariant: bid < bid' implies tid < tid' and ts <= ts'.
        let blocks = chain(20);
        for w in blocks.windows(2) {
            assert!(w[0].header.height < w[1].header.height);
            assert!(w[0].first_tid().unwrap() < w[1].first_tid().unwrap());
            assert!(w[0].header.timestamp <= w[1].header.timestamp);
        }
    }

    #[test]
    fn checkpoint_carries_all_keys() {
        let idx = index(5);
        let cp = idx.checkpoint();
        assert_eq!(cp.height, 5);
        assert_eq!(cp.entries.len(), 5);
        assert_eq!(cp.family, family_block());
        for (i, (k, v)) in cp.entries.iter().enumerate() {
            let key = key_from_bytes(k, v);
            assert_eq!(key.bid, i as u64);
            assert_eq!(key, idx.by_bid(i as u64).unwrap());
        }
        assert!(!cp.meta.is_empty());
    }
}
