//! The block-level B⁺-tree (§IV-B).
//!
//! One tree keyed by `(bid, tid, Ts)`. Because blocks are appended in
//! order, all three key components are strictly increasing together,
//! so the same tree resolves a block id, a transaction id, or a
//! timestamp to the target block ("we go from the root down to the
//! leaf node to get the location of the target block").

use crate::bptree::BPlusTree;
use sebdb_types::{Block, BlockId, Timestamp, TxId};

/// The composite key `(bid, first_tid, block_ts)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockKey {
    /// Block id.
    pub bid: BlockId,
    /// Id of the first transaction in the block (`TxId::MAX` for an
    /// empty block — it can never match a tid probe).
    pub tid: TxId,
    /// Block packaging timestamp.
    pub ts: Timestamp,
}

/// Block-level index: resolves bid / tid / timestamp probes to blocks.
#[derive(Debug, Default)]
pub struct BlockLevelIndex {
    tree: BPlusTree<BlockKey, ()>,
    last: Option<BlockKey>,
}

impl BlockLevelIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no block is indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Appends the entry for a newly chained block. Panics if the
    /// append violates the monotonicity invariant.
    pub fn append(&mut self, block: &Block) {
        let key = BlockKey {
            bid: block.header.height,
            tid: block.first_tid().unwrap_or(TxId::MAX),
            ts: block.header.timestamp,
        };
        if let Some(last) = &self.last {
            assert!(
                key.bid > last.bid && key.ts >= last.ts,
                "block index append out of order: {key:?} after {last:?}"
            );
        }
        self.tree.insert(key, ());
        self.last = Some(key);
    }

    /// The block with id `bid`, if indexed.
    pub fn by_bid(&self, bid: BlockId) -> Option<BlockKey> {
        self.tree
            .floor_by(&bid, |k| k.bid)
            .filter(|(k, _)| k.bid == bid)
            .map(|(k, _)| *k)
    }

    /// The block containing transaction `tid`: the last block whose
    /// first tid is ≤ `tid`.
    pub fn by_tid(&self, tid: TxId) -> Option<BlockKey> {
        self.tree.floor_by(&tid, |k| k.tid).map(|(k, _)| *k)
    }

    /// The last block packaged at or before `ts`.
    pub fn by_ts(&self, ts: Timestamp) -> Option<BlockKey> {
        self.tree.floor_by(&ts, |k| k.ts).map(|(k, _)| *k)
    }

    /// Conservative inclusive block-id range for a time window
    /// `[start, end]`: transactions with `ts ∈ [start, end]` can only
    /// live in these blocks (a block's timestamp is an upper bound on
    /// its transactions' timestamps). Returns `None` when the window
    /// is empty or precedes the chain entirely.
    pub fn blocks_in_window(&self, start: Timestamp, end: Timestamp) -> Option<(BlockId, BlockId)> {
        if start > end || self.is_empty() {
            return None;
        }
        let max_bid = self.last?.bid;
        // First block that can contain ts >= start: the successor of the
        // last block with block_ts < start (all of whose txs have ts < start).
        let lo = match start.checked_sub(1).and_then(|s| self.by_ts(s)) {
            Some(k) => k.bid + 1,
            None => 0,
        };
        // Last block that can contain ts <= end: the first block with
        // block_ts >= end could still contain them, but later blocks may
        // too (a tx can sit in the mempool past `end`); we bound by the
        // first block whose *first* timestamp... blocks are packaged in
        // ts order, so any block with block_ts >= end may contain
        // boundary txs; the block after the first such block starts
        // strictly later only if packaging is prompt. Be conservative:
        // include through the first block with block_ts >= end, plus
        // nothing more when timestamps are dense. Executors re-filter
        // per transaction, so correctness only needs an upper bound.
        let hi = match self.by_ts(end) {
            Some(k) => (k.bid + 1).min(max_bid),
            // `end` precedes every block timestamp: only block 0 can
            // hold matching transactions.
            None => 0,
        };
        if lo > hi {
            return None;
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::{Transaction, Value};

    /// Chain of `n` blocks, block h holding tids [h*10, h*10+9] and
    /// block timestamp (h+1)*100.
    fn chain(n: u64) -> Vec<Block> {
        let mut prev = Digest::ZERO;
        (0..n)
            .map(|h| {
                let txs: Vec<Transaction> = (0..10)
                    .map(|i| {
                        let mut t = Transaction::new(
                            h * 100 + i * 5,
                            KeyId([0; 8]),
                            "donate",
                            vec![Value::Int(i as i64)],
                        );
                        t.tid = h * 10 + i;
                        t
                    })
                    .collect();
                let b = Block::seal(prev, h, (h + 1) * 100, txs, |_| vec![]);
                prev = b.header.block_hash;
                b
            })
            .collect()
    }

    fn index(n: u64) -> BlockLevelIndex {
        let mut idx = BlockLevelIndex::new();
        for b in chain(n) {
            idx.append(&b);
        }
        idx
    }

    #[test]
    fn lookup_by_bid() {
        let idx = index(10);
        assert_eq!(idx.by_bid(0).unwrap().bid, 0);
        assert_eq!(idx.by_bid(7).unwrap().bid, 7);
        assert!(idx.by_bid(10).is_none());
    }

    #[test]
    fn lookup_by_tid() {
        let idx = index(10);
        // tid 34 lives in block 3 (tids 30..39).
        assert_eq!(idx.by_tid(34).unwrap().bid, 3);
        assert_eq!(idx.by_tid(0).unwrap().bid, 0);
        assert_eq!(idx.by_tid(99).unwrap().bid, 9);
        // Past the end: resolves to the last block.
        assert_eq!(idx.by_tid(1000).unwrap().bid, 9);
    }

    #[test]
    fn lookup_by_ts() {
        let idx = index(10);
        // Block h has ts (h+1)*100.
        assert_eq!(idx.by_ts(100).unwrap().bid, 0);
        assert_eq!(idx.by_ts(150).unwrap().bid, 0);
        assert_eq!(idx.by_ts(1000).unwrap().bid, 9);
        assert!(idx.by_ts(99).is_none());
    }

    #[test]
    fn window_mapping_is_conservative() {
        let idx = index(10);
        // Window covering everything.
        let (lo, hi) = idx.blocks_in_window(0, u64::MAX).unwrap();
        assert_eq!((lo, hi), (0, 9));
        // Window [250, 450]: tx timestamps in block h span [h*100, h*100+45];
        // candidates must include blocks 2,3,4.
        let (lo, hi) = idx.blocks_in_window(250, 450).unwrap();
        assert!(lo <= 2 && hi >= 4, "got ({lo},{hi})");
        // Empty window.
        assert!(idx.blocks_in_window(10, 5).is_none());
    }

    #[test]
    fn empty_index() {
        let idx = BlockLevelIndex::new();
        assert!(idx.by_bid(0).is_none());
        assert!(idx.by_tid(0).is_none());
        assert!(idx.blocks_in_window(0, 100).is_none());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_out_of_order() {
        let blocks = chain(2);
        let mut idx = BlockLevelIndex::new();
        idx.append(&blocks[1]);
        idx.append(&blocks[0]);
    }

    #[test]
    fn monotone_composite_key() {
        // The paper's invariant: bid < bid' implies tid < tid' and ts <= ts'.
        let blocks = chain(20);
        for w in blocks.windows(2) {
            assert!(w[0].header.height < w[1].header.height);
            assert!(w[0].first_tid().unwrap() < w[1].first_tid().unwrap());
            assert!(w[0].header.timestamp <= w[1].header.timestamp);
        }
    }
}
