//! Shared plumbing for the paged index backends (DESIGN §13).
//!
//! Every index family can split its state into a **frozen** on-disk
//! checkpoint covering blocks `[0, base)` — served lazily through
//! [`sebdb_storage::PagedIndexReader`] and the store's bounded
//! index-block cache — plus an **in-memory tail** covering
//! `[base, covered)`, indexed relative to `base` so resident memory is
//! O(tail), not O(chain). With no frozen checkpoint attached
//! (`base = 0`) a family degenerates to the original fully-resident
//! structure — the `cache=∞` reference the equivalence suite pins the
//! paged path against.
//!
//! This module holds the pieces all families share: the key-tag
//! namespace inside one checkpoint file, `Value`/bitmap/pointer codecs
//! for checkpoint entries, family naming, and the fail-stop read
//! wrapper (a storage error under an index query has no recovery path
//! mid-plan; the store heals checkpoints at open, so a read failure
//! here means bytes rotted underneath a validated file).

use crate::bitmap::Bitmap;
use sebdb_storage::{PagedIndexReader, StorageError, TxPtr};
use sebdb_types::{ColumnRef, Decoder, Encoder, Value};

/// Key tag: the family's precomputed all-blocks bitmap.
pub const TAG_ALL_BLOCKS: u8 = 0x00;
/// Key tag: `0x01 ‖ bid(u64 BE)` → the block's bucket bitmap
/// (continuous first level).
pub const TAG_BLOCK_BUCKETS: u8 = 0x01;
/// Key tag: `0x02 ‖ enc(Value)` → the value's absolute block bitmap
/// (discrete first level).
pub const TAG_VALUE_BLOCKS: u8 = 0x02;
/// Key tag: `0x03 ‖ bid(u64 BE)` → the block's sorted second-level
/// entry list.
pub const TAG_BLOCK_ENTRIES: u8 = 0x03;
/// Key tag: `0x04 ‖ bucket(u32 BE)` → the bucket's absolute block
/// bitmap (continuous first level, inverted — the candidate-block
/// probe reads O(buckets) entries instead of O(blocks)).
pub const TAG_BUCKET_BLOCKS: u8 = 0x04;
/// Key tag: `0x05 ‖ bid(u64 BE)` → the block's 32-byte MB-tree root.
pub const TAG_BLOCK_ROOT: u8 = 0x05;

/// Unit separator between family-name components.
const FAMILY_SEP: u8 = 0x1f;

/// Family name of the block-level index checkpoint.
pub fn family_block() -> Vec<u8> {
    b"block".to_vec()
}

/// Family name of the table-bitmap index checkpoint.
pub fn family_table() -> Vec<u8> {
    b"table".to_vec()
}

fn family_scoped(prefix: &[u8], table: Option<&str>, column: &str) -> Vec<u8> {
    let mut name = prefix.to_vec();
    name.push(FAMILY_SEP);
    if let Some(t) = table {
        name.extend_from_slice(t.as_bytes());
    }
    name.push(FAMILY_SEP);
    name.extend_from_slice(column.as_bytes());
    name
}

/// Family name of one layered index (`table = None` for the system
/// columns indexed across all tables).
pub fn family_layered(table: Option<&str>, column: &str) -> Vec<u8> {
    family_scoped(b"layered", table, column)
}

/// Family name of one authenticated layered index.
pub fn family_ali(table: Option<&str>, column: &str) -> Vec<u8> {
    family_scoped(b"ali", table, column)
}

/// Stable textual name of a column reference, used in family names
/// (application columns are positional, so the slug is positional too).
pub fn column_slug(c: &ColumnRef) -> String {
    match c {
        ColumnRef::Tid => "tid".into(),
        ColumnRef::Ts => "ts".into(),
        ColumnRef::Sig => "sig".into(),
        ColumnRef::SenId => "sen_id".into(),
        ColumnRef::Tname => "tname".into(),
        ColumnRef::App(i) => format!("app{i}"),
    }
}

/// Resident heap bytes of one `Value` (enum footprint plus any heap
/// payload) — the unit the per-family memory gauges sum over.
pub fn value_resident_bytes(v: &Value) -> usize {
    std::mem::size_of::<Value>()
        + match v {
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            _ => 0,
        }
}

/// Unwraps a frozen-index read. Fail-stop by design: the checkpoint
/// was validated at open and heals by deletion + replay on restart, so
/// a read error mid-query is unrecoverable state rot.
pub fn read_fail<T>(what: &str, r: Result<T, StorageError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("paged {what} read failed: {e}"),
    }
}

/// `tag ‖ bid(u64 BE)` — per-block entry key (BE keeps byte order =
/// numeric order within the tag).
pub fn bid_key(tag: u8, bid: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(tag);
    k.extend_from_slice(&bid.to_be_bytes());
    k
}

/// `0x04 ‖ bucket(u32 BE)` — per-bucket entry key.
pub fn bucket_key(bucket: usize) -> Vec<u8> {
    let mut k = Vec::with_capacity(5);
    k.push(TAG_BUCKET_BLOCKS);
    k.extend_from_slice(&(bucket as u32).to_be_bytes());
    k
}

/// `0x02 ‖ enc(value)` — per-value entry key (tagged `Value` codec;
/// round-trips exactly, equality-preserving).
pub fn value_key(v: &Value) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_value(v);
    let mut k = Vec::with_capacity(9);
    k.push(TAG_VALUE_BLOCKS);
    k.extend_from_slice(&enc.finish());
    k
}

/// Decodes the `Value` out of a [`value_key`]-shaped key.
pub fn decode_value_key(key: &[u8]) -> Value {
    let mut dec = Decoder::new(&key[1..]);
    match dec.get_value() {
        Ok(v) => v,
        Err(e) => panic!("paged index value key failed to decode: {e}"),
    }
}

/// Serializes a bitmap as its raw words, little-endian.
pub fn bitmap_bytes(b: &Bitmap) -> Vec<u8> {
    let mut out = Vec::with_capacity(b.words().len() * 8);
    for w in b.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Rebuilds a bitmap from [`bitmap_bytes`] output.
pub fn bitmap_from_bytes(bytes: &[u8]) -> Bitmap {
    let words = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Bitmap::from_words(words)
}

/// Reads a frozen bitmap entry, or an empty bitmap when absent.
pub fn frozen_bitmap(reader: &PagedIndexReader, what: &str, key: &[u8]) -> Bitmap {
    read_fail(what, reader.get(key))
        .map(|bytes| bitmap_from_bytes(&bytes))
        .unwrap_or_default()
}

/// Serializes a sorted `(Value, TxPtr)` list (one block's second-level
/// entries).
pub fn entries_bytes(entries: &[(Value, TxPtr)]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(entries.len() as u32);
    for (v, p) in entries {
        enc.put_value(v);
        enc.put_u64(p.block);
        enc.put_u32(p.index);
    }
    enc.finish()
}

/// Decodes [`entries_bytes`] output.
pub fn entries_from_bytes(bytes: &[u8]) -> Vec<(Value, TxPtr)> {
    let mut dec = Decoder::new(bytes);
    let parse = |dec: &mut Decoder<'_>| -> Result<Vec<(Value, TxPtr)>, sebdb_types::TypeError> {
        let n = dec.get_u32("paged entries count")?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let v = dec.get_value()?;
            let block = dec.get_u64("paged entry block")?;
            let index = dec.get_u32("paged entry index")?;
            out.push((v, TxPtr { block, index }));
        }
        Ok(out)
    };
    match parse(&mut dec) {
        Ok(v) => v,
        Err(e) => panic!("paged second-level entries failed to decode: {e}"),
    }
}

/// Serializes a sorted [`AuthEntry`] list (one block's MB-tree leaf
/// level, in tree order — rebuilding via `MbTree::build` reproduces
/// the tree byte-identically because the build sort is stable).
pub fn auth_entries_bytes(entries: &[crate::mbtree::AuthEntry]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(entries.len() as u32);
    for e in entries {
        enc.put_value(&e.key);
        enc.put_raw(e.tx_hash.as_bytes());
        enc.put_u64(e.ptr.block);
        enc.put_u32(e.ptr.index);
    }
    enc.finish()
}

/// Decodes [`auth_entries_bytes`] output.
pub fn auth_entries_from_bytes(bytes: &[u8]) -> Vec<crate::mbtree::AuthEntry> {
    use sebdb_crypto::sha256::Digest;
    let mut dec = Decoder::new(bytes);
    let parse =
        |dec: &mut Decoder<'_>| -> Result<Vec<crate::mbtree::AuthEntry>, sebdb_types::TypeError> {
            let n = dec.get_u32("paged auth entries count")?;
            let mut out = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let key = dec.get_value()?;
                let mut hash = [0u8; 32];
                for b in &mut hash {
                    *b = dec.get_u8("paged auth entry hash")?;
                }
                let block = dec.get_u64("paged auth entry block")?;
                let index = dec.get_u32("paged auth entry index")?;
                out.push(crate::mbtree::AuthEntry {
                    key,
                    tx_hash: Digest(hash),
                    ptr: TxPtr { block, index },
                });
            }
            Ok(out)
        };
    match parse(&mut dec) {
        Ok(v) => v,
        Err(e) => panic!("paged auth entries failed to decode: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_key_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(-5),
            Value::decimal(123),
            Value::str("donate"),
            Value::Bool(true),
            Value::Timestamp(99),
            Value::Bytes(vec![1, 2, 3]),
        ] {
            assert_eq!(decode_value_key(&value_key(&v)), v);
        }
    }

    #[test]
    fn bitmap_roundtrip() {
        let b = Bitmap::from_bits([0, 63, 64, 1000]);
        assert_eq!(bitmap_from_bytes(&bitmap_bytes(&b)), b);
        assert!(bitmap_from_bytes(&[]).is_empty());
    }

    #[test]
    fn entries_roundtrip() {
        let entries = vec![
            (Value::decimal(1), TxPtr { block: 7, index: 0 }),
            (Value::decimal(2), TxPtr { block: 7, index: 3 }),
        ];
        assert_eq!(entries_from_bytes(&entries_bytes(&entries)), entries);
    }

    #[test]
    fn family_names_are_distinct() {
        let names = [
            family_block(),
            family_table(),
            family_layered(None, "sen_id"),
            family_layered(Some("donate"), "amount"),
            family_ali(None, "sen_id"),
            family_ali(Some("donate"), "amount"),
        ];
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }
}
