//! # sebdb-index
//!
//! SEBDB's indexing layer (§IV-B and §VI):
//!
//! * [`blockindex::BlockLevelIndex`] — block-level B⁺-tree on
//!   `(bid, tid, Ts)`;
//! * [`tableindex::TableBitmapIndex`] — table-level bitmaps over blocks
//!   (plus sender bitmaps for tracking);
//! * [`layered::LayeredIndex`] — the two-level layered index
//!   (histogram/value bitmaps above, bulk-loaded per-block B⁺-trees
//!   below);
//! * [`mbtree::MbTree`] + [`ali::AuthenticatedLayeredIndex`] — the
//!   authenticated variant for thin clients, with soundness- and
//!   completeness-checking range proofs;
//! * [`cost::CostParams`] — the select cost model (Eqs. 1–3) driving
//!   access-path choice.

#![warn(missing_docs)]

pub mod ali;
pub mod bitmap;
pub mod blockindex;
pub mod bptree;
pub mod cost;
pub mod histogram;
pub mod layered;
pub mod mbtree;
pub mod paged;
pub mod tableindex;

pub use ali::{auxiliary_digest, verify_query_vo, AuthenticatedLayeredIndex, BlockVo, QueryVo};
pub use bitmap::Bitmap;
pub use blockindex::{BlockKey, BlockLevelIndex};
pub use bptree::BPlusTree;
pub use cost::{AccessPath, CostParams};
pub use histogram::EqualDepthHistogram;
pub use layered::{KeyPredicate, LayeredIndex};
pub use mbtree::{AuthEntry, MbTree, RangeProof, VerifyError};
pub use paged::{column_slug, family_ali, family_block, family_layered, family_table};
pub use tableindex::TableBitmapIndex;
