//! Growable bitmaps.
//!
//! The table-level index keeps one bitmap per table over block ids
//! ("the i-th bit indicates whether block i contains transactions of
//! that table", §IV-B); the layered index's first level keeps small
//! bucket bitmaps per block. Both use [`Bitmap`].

/// A growable bitset over `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Bitmap with bits `[0, n)` preallocated (all zero).
    pub fn with_capacity(n: usize) -> Self {
        Bitmap {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Builds a bitmap from set-bit positions.
    pub fn from_bits<I: IntoIterator<Item = usize>>(bits: I) -> Self {
        let mut b = Bitmap::new();
        for i in bits {
            b.set(i);
        }
        b
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (i % 64);
    }

    /// Tests bit `i`.
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self & other`, truncated to the shorter operand.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let n = self.words.len().min(other.words.len());
        Bitmap {
            words: (0..n).map(|i| self.words[i] & other.words[i]).collect(),
        }
    }

    /// `self | other`.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let n = self.words.len().max(other.words.len());
        let w = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
        Bitmap {
            words: (0..n)
                .map(|i| w(&self.words, i) | w(&other.words, i))
                .collect(),
        }
    }

    /// In-place OR.
    pub fn or_assign(&mut self, other: &Bitmap) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// True if `self & other` has any set bit (without materializing).
    pub fn intersects(&self, other: &Bitmap) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Sets all bits in `[lo, hi]` (inclusive). Used to build the
    /// time-window block mask from the block-level index.
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        for i in lo..=hi {
            self.set(i);
        }
    }

    /// Serialized size in bytes (word-granular).
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }

    /// The raw words, low bit = bit 0 (checkpoint serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from raw words (checkpoint deserialization).
    pub fn from_words(words: Vec<u64>) -> Self {
        Bitmap { words }
    }

    /// ORs `other`'s bits into `self` with every position shifted up by
    /// `shift` — merges a base-relative tail bitmap into an
    /// absolute-block view.
    pub fn or_assign_shifted(&mut self, other: &Bitmap, shift: usize) {
        for i in other.iter_ones() {
            self.set(i + shift);
        }
    }
}

impl FromIterator<usize> for Bitmap {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Bitmap::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get() {
        let mut b = Bitmap::new();
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(1000);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(1000));
        assert!(!b.get(1) && !b.get(999) && !b.get(100_000));
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn and_or() {
        let a = Bitmap::from_bits([1, 3, 5, 200]);
        let b = Bitmap::from_bits([3, 5, 7]);
        assert_eq!(a.and(&b), Bitmap::from_bits([3, 5]));
        let or = a.or(&b);
        assert_eq!(or.count_ones(), 5);
        assert!(or.get(200));
        assert!(a.intersects(&b));
        assert!(!Bitmap::from_bits([2]).intersects(&Bitmap::from_bits([3])));
    }

    #[test]
    fn iter_ones_order() {
        let b = Bitmap::from_bits([5, 1, 64, 63, 500]);
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![1, 5, 63, 64, 500]);
    }

    #[test]
    fn set_range_inclusive() {
        let mut b = Bitmap::new();
        b.set_range(10, 15);
        assert_eq!(
            b.iter_ones().collect::<Vec<_>>(),
            vec![10, 11, 12, 13, 14, 15]
        );
    }

    #[test]
    fn empty_checks() {
        assert!(Bitmap::new().is_empty());
        assert!(Bitmap::with_capacity(100).is_empty());
        assert!(!Bitmap::from_bits([0]).is_empty());
    }

    proptest! {
        #[test]
        fn matches_hashset_model(bits in proptest::collection::hash_set(0usize..2000, 0..100),
                                 other in proptest::collection::hash_set(0usize..2000, 0..100)) {
            let a = Bitmap::from_bits(bits.iter().copied());
            let b = Bitmap::from_bits(other.iter().copied());
            let and: std::collections::HashSet<usize> = bits.intersection(&other).copied().collect();
            let or: std::collections::HashSet<usize> = bits.union(&other).copied().collect();
            prop_assert_eq!(a.and(&b).iter_ones().collect::<std::collections::HashSet<_>>(), and.clone());
            prop_assert_eq!(a.or(&b).iter_ones().collect::<std::collections::HashSet<_>>(), or);
            prop_assert_eq!(a.intersects(&b), !and.is_empty());
            prop_assert_eq!(a.count_ones(), bits.len());
        }
    }
}
