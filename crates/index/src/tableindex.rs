//! The table-level bitmap index (§IV-B).
//!
//! One bitmap per table: bit *i* is set iff block *i* contains at least
//! one transaction of that table. "When a new table is generated, a new
//! bitmap is added. When a new block arrives, the bitmap index is
//! updated by setting corresponding bitmaps." The paper also notes the
//! same structure "can be created on SenID for tracking query", so we
//! maintain sender bitmaps alongside.

use crate::bitmap::Bitmap;
use sebdb_crypto::sig::KeyId;
use sebdb_types::Block;
use std::collections::HashMap;

/// Table- and sender-level block bitmaps.
#[derive(Debug, Default)]
pub struct TableBitmapIndex {
    per_table: HashMap<String, Bitmap>,
    per_sender: HashMap<KeyId, Bitmap>,
    blocks_seen: u64,
}

impl TableBitmapIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table so its bitmap exists even before any data
    /// arrives ("when a new table is generated, a new bitmap is added").
    pub fn register_table(&mut self, table: &str) {
        self.per_table
            .entry(table.to_ascii_lowercase())
            .or_default();
    }

    /// Indexes a newly chained block.
    pub fn update(&mut self, block: &Block) {
        let bid = block.header.height as usize;
        for tx in &block.transactions {
            self.per_table
                .entry(tx.tname.to_ascii_lowercase())
                .or_default()
                .set(bid);
            self.per_sender.entry(tx.sender).or_default().set(bid);
        }
        self.blocks_seen = self.blocks_seen.max(block.header.height + 1);
    }

    /// Bitmap of blocks containing tuples of `table` (empty bitmap for
    /// unknown tables).
    pub fn blocks_for_table(&self, table: &str) -> Bitmap {
        self.per_table
            .get(&table.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Bitmap of blocks containing transactions sent by `sender`.
    pub fn blocks_for_sender(&self, sender: &KeyId) -> Bitmap {
        self.per_sender.get(sender).cloned().unwrap_or_default()
    }

    /// Number of blocks observed (for scan fallbacks).
    pub fn blocks_seen(&self) -> u64 {
        self.blocks_seen
    }

    /// Names of tables with at least one bitmap (lowercased).
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.per_table.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_types::{Transaction, Value};

    fn block(height: u64, txs: Vec<(&str, KeyId)>) -> Block {
        let txs = txs
            .into_iter()
            .enumerate()
            .map(|(i, (tname, sender))| {
                let mut t = Transaction::new(height, sender, tname, vec![Value::Int(i as i64)]);
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
    }

    const ORG1: KeyId = KeyId([1; 8]);
    const ORG2: KeyId = KeyId([2; 8]);

    #[test]
    fn tracks_table_distribution() {
        let mut idx = TableBitmapIndex::new();
        idx.update(&block(0, vec![("donate", ORG1), ("transfer", ORG2)]));
        idx.update(&block(1, vec![("donate", ORG1)]));
        idx.update(&block(2, vec![("distribute", ORG2)]));

        assert_eq!(
            idx.blocks_for_table("donate")
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            idx.blocks_for_table("TRANSFER")
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0]
        );
        assert!(idx.blocks_for_table("unknown").is_empty());
        assert_eq!(idx.blocks_seen(), 3);
    }

    #[test]
    fn tracks_sender_distribution() {
        let mut idx = TableBitmapIndex::new();
        idx.update(&block(0, vec![("donate", ORG1)]));
        idx.update(&block(1, vec![("transfer", ORG2)]));
        idx.update(&block(2, vec![("donate", ORG1), ("transfer", ORG1)]));

        assert_eq!(
            idx.blocks_for_sender(&ORG1).iter_ones().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            idx.blocks_for_sender(&ORG2).iter_ones().collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn registered_empty_table_has_empty_bitmap() {
        let mut idx = TableBitmapIndex::new();
        idx.register_table("Donate");
        assert!(idx.blocks_for_table("donate").is_empty());
        assert!(idx.tables().any(|t| t == "donate"));
    }

    #[test]
    fn and_with_window_mask_filters() {
        let mut idx = TableBitmapIndex::new();
        for h in 0..10 {
            let t = if h % 2 == 0 { "donate" } else { "transfer" };
            idx.update(&block(h, vec![(t, ORG1)]));
        }
        let mut window = Bitmap::new();
        window.set_range(3, 7);
        let hits = idx.blocks_for_table("donate").and(&window);
        assert_eq!(hits.iter_ones().collect::<Vec<_>>(), vec![4, 6]);
    }
}
