//! The table-level bitmap index (§IV-B).
//!
//! One bitmap per table: bit *i* is set iff block *i* contains at least
//! one transaction of that table. "When a new table is generated, a new
//! bitmap is added. When a new block arrives, the bitmap index is
//! updated by setting corresponding bitmaps." The paper also notes the
//! same structure "can be created on SenID for tracking query", so we
//! maintain sender bitmaps alongside.
//!
//! Paged backend (DESIGN §13): the resident maps hold base-relative
//! bitmaps for the tail `[base, covered)` only; the frozen prefix keeps
//! absolute bitmaps in an on-disk checkpoint, merged on query.

use crate::bitmap::Bitmap;
use crate::paged::{bitmap_bytes, bitmap_from_bytes, family_table, frozen_bitmap, read_fail};
use sebdb_crypto::sig::KeyId;
use sebdb_storage::{IndexCheckpoint, PagedIndexReader};
use sebdb_types::Block;
use std::collections::{BTreeMap, HashMap};

/// Key tag: `0x00 ‖ lowercased table name` → absolute block bitmap.
const TAG_TABLE: u8 = 0x00;
/// Key tag: `0x01 ‖ sender KeyId` → absolute block bitmap.
const TAG_SENDER: u8 = 0x01;

fn table_key(table_lower: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + table_lower.len());
    k.push(TAG_TABLE);
    k.extend_from_slice(table_lower.as_bytes());
    k
}

fn sender_key(sender: &KeyId) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(TAG_SENDER);
    k.extend_from_slice(&sender.0);
    k
}

/// Table- and sender-level block bitmaps.
#[derive(Debug, Default)]
pub struct TableBitmapIndex {
    /// Tail bitmaps, bit `i` = block `base + i` (lowercased names).
    per_table: HashMap<String, Bitmap>,
    per_sender: HashMap<KeyId, Bitmap>,
    blocks_seen: u64,
    frozen: Option<PagedIndexReader>,
}

impl TableBitmapIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds an index from a frozen checkpoint; the tail starts
    /// empty at the checkpoint height.
    pub fn from_frozen(reader: PagedIndexReader) -> Self {
        TableBitmapIndex {
            per_table: HashMap::new(),
            per_sender: HashMap::new(),
            blocks_seen: reader.height(),
            frozen: Some(reader),
        }
    }

    /// Freezes the state covered so far behind a newly written
    /// checkpoint; the reader must cover exactly [`Self::blocks_seen`].
    pub fn adopt_frozen(&mut self, reader: PagedIndexReader) {
        assert_eq!(
            reader.height(),
            self.blocks_seen,
            "adopting a checkpoint that does not match the indexed height"
        );
        self.per_table.clear();
        self.per_sender.clear();
        self.frozen = Some(reader);
    }

    /// First tail block: blocks below this are frozen.
    fn base(&self) -> u64 {
        self.frozen.as_ref().map(|f| f.height()).unwrap_or(0)
    }

    /// Registers a table so its bitmap exists even before any data
    /// arrives ("when a new table is generated, a new bitmap is added").
    pub fn register_table(&mut self, table: &str) {
        self.per_table
            .entry(table.to_ascii_lowercase())
            .or_default();
    }

    /// Indexes a newly chained block.
    pub fn update(&mut self, block: &Block) {
        let bid = block.header.height;
        let base = self.base();
        if bid >= base {
            let slot = (bid - base) as usize;
            for tx in &block.transactions {
                self.per_table
                    .entry(tx.tname.to_ascii_lowercase())
                    .or_default()
                    .set(slot);
                self.per_sender.entry(tx.sender).or_default().set(slot);
            }
        }
        self.blocks_seen = self.blocks_seen.max(bid + 1);
    }

    /// Merges a frozen absolute bitmap with a relative tail bitmap.
    fn merged(&self, key: &[u8], tail: Option<&Bitmap>) -> Bitmap {
        let mut out = match &self.frozen {
            Some(f) => frozen_bitmap(f, "table bitmap", key),
            None => Bitmap::new(),
        };
        if let Some(tail) = tail {
            out.or_assign_shifted(tail, self.base() as usize);
        }
        out
    }

    /// Bitmap of blocks containing tuples of `table` (empty bitmap for
    /// unknown tables).
    pub fn blocks_for_table(&self, table: &str) -> Bitmap {
        let lower = table.to_ascii_lowercase();
        self.merged(&table_key(&lower), self.per_table.get(&lower))
    }

    /// Bitmap of blocks containing transactions sent by `sender`.
    pub fn blocks_for_sender(&self, sender: &KeyId) -> Bitmap {
        self.merged(&sender_key(sender), self.per_sender.get(sender))
    }

    /// Number of blocks observed (for scan fallbacks).
    pub fn blocks_seen(&self) -> u64 {
        self.blocks_seen
    }

    /// Names of tables with at least one bitmap (lowercased, sorted,
    /// deduplicated across the frozen checkpoint and the tail).
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.per_table.keys().cloned().collect();
        if let Some(f) = &self.frozen {
            read_fail(
                "table bitmap name sweep",
                f.scan_prefix(&[TAG_TABLE], &mut |k, _| {
                    names.push(String::from_utf8_lossy(&k[1..]).into_owned());
                }),
            );
        }
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Resident bytes (tail bitmaps + frozen fence/meta top level).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        for (name, bits) in &self.per_table {
            bytes += name.len() + bits.byte_len();
        }
        for bits in self.per_sender.values() {
            bytes += std::mem::size_of::<KeyId>() + bits.byte_len();
        }
        bytes + self.frozen.as_ref().map(|f| f.memory_bytes()).unwrap_or(0)
    }

    /// Freezes the complete state (frozen ∪ tail) into one checkpoint
    /// covering `[0, blocks_seen)`.
    pub fn checkpoint(&self) -> IndexCheckpoint {
        let mut map: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        if let Some(f) = &self.frozen {
            read_fail(
                "table bitmap checkpoint sweep",
                f.scan_range(&[], None, &mut |k, v| {
                    map.insert(k.to_vec(), v.to_vec());
                }),
            );
        }
        let base = self.base() as usize;
        let mut merge = |key: Vec<u8>, tail: &Bitmap| {
            let mut bits = map
                .get(&key)
                .map(|b| bitmap_from_bytes(b))
                .unwrap_or_default();
            bits.or_assign_shifted(tail, base);
            map.insert(key, bitmap_bytes(&bits));
        };
        for (name, bits) in &self.per_table {
            merge(table_key(name), bits);
        }
        for (sender, bits) in &self.per_sender {
            merge(sender_key(sender), bits);
        }
        IndexCheckpoint {
            family: family_table(),
            height: self.blocks_seen,
            meta: Vec::new(),
            entries: map.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_types::{Transaction, Value};

    fn block(height: u64, txs: Vec<(&str, KeyId)>) -> Block {
        let txs = txs
            .into_iter()
            .enumerate()
            .map(|(i, (tname, sender))| {
                let mut t = Transaction::new(height, sender, tname, vec![Value::Int(i as i64)]);
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
    }

    const ORG1: KeyId = KeyId([1; 8]);
    const ORG2: KeyId = KeyId([2; 8]);

    #[test]
    fn tracks_table_distribution() {
        let mut idx = TableBitmapIndex::new();
        idx.update(&block(0, vec![("donate", ORG1), ("transfer", ORG2)]));
        idx.update(&block(1, vec![("donate", ORG1)]));
        idx.update(&block(2, vec![("distribute", ORG2)]));

        assert_eq!(
            idx.blocks_for_table("donate")
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            idx.blocks_for_table("TRANSFER")
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![0]
        );
        assert!(idx.blocks_for_table("unknown").is_empty());
        assert_eq!(idx.blocks_seen(), 3);
    }

    #[test]
    fn tracks_sender_distribution() {
        let mut idx = TableBitmapIndex::new();
        idx.update(&block(0, vec![("donate", ORG1)]));
        idx.update(&block(1, vec![("transfer", ORG2)]));
        idx.update(&block(2, vec![("donate", ORG1), ("transfer", ORG1)]));

        assert_eq!(
            idx.blocks_for_sender(&ORG1).iter_ones().collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            idx.blocks_for_sender(&ORG2).iter_ones().collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn registered_empty_table_has_empty_bitmap() {
        let mut idx = TableBitmapIndex::new();
        idx.register_table("Donate");
        assert!(idx.blocks_for_table("donate").is_empty());
        assert!(idx.tables().iter().any(|t| t == "donate"));
    }

    #[test]
    fn and_with_window_mask_filters() {
        let mut idx = TableBitmapIndex::new();
        for h in 0..10 {
            let t = if h % 2 == 0 { "donate" } else { "transfer" };
            idx.update(&block(h, vec![(t, ORG1)]));
        }
        let mut window = Bitmap::new();
        window.set_range(3, 7);
        let hits = idx.blocks_for_table("donate").and(&window);
        assert_eq!(hits.iter_ones().collect::<Vec<_>>(), vec![4, 6]);
    }

    #[test]
    fn checkpoint_merges_tables_and_senders() {
        let mut idx = TableBitmapIndex::new();
        idx.update(&block(0, vec![("donate", ORG1)]));
        idx.update(&block(1, vec![("transfer", ORG2)]));
        let cp = idx.checkpoint();
        assert_eq!(cp.height, 2);
        assert_eq!(cp.family, family_table());
        // donate + transfer + two senders.
        assert_eq!(cp.entries.len(), 4);
        assert!(cp.entries.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
