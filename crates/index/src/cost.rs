//! The select cost model (§IV-B, Equations 1–3).
//!
//! The planner uses these estimates to pick among full scan, bitmap
//! index, and layered index:
//!
//! * `C_scan    = n·t_S + (f·n/b)·t_T`        — read every block;
//! * `C_bitmap  = k·t_S + (f·k/b)·t_T, k ≤ n` — read only blocks that
//!   contain the table;
//! * `C_layered = p·t_S + p·t_T`              — one seek + transfer per
//!   matching tuple (random I/O).
//!
//! "If the size of query result is large, using table-level bitmap
//! index may outperform layered index since random I/O is slow."

/// Device/deployment parameters of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Average disk block access (seek) time `t_S`, in µs.
    pub seek_us: f64,
    /// Transfer time per disk block `t_T`, in µs.
    pub transfer_us: f64,
    /// Size of a packaged blockchain block `f`, in bytes.
    pub chain_block_bytes: u64,
    /// Disk block size `b`, in bytes.
    pub disk_block_bytes: u64,
    /// Average tuple size in bytes — what one layered-index random
    /// read actually transfers now that the store serves tuple-granular
    /// preads (rather than a full chain block per tuple).
    pub tuple_bytes: u64,
    /// In-memory probe of one frozen-index fence table, in µs — the
    /// CPU-side part of a paged index-block access (binary search over
    /// the resident fence array).
    pub fence_probe_us: f64,
    /// Expected hit rate of the index-block cache in [0, 1]; misses pay
    /// a seek + one disk-block transfer to page the level-1 block in.
    pub index_cache_hit_rate: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // An HDD-ish profile (the paper's testbed used RAID-5 spinning
        // disks): 4 ms seek, ~0.1 ms transfer of a 4 KB disk block.
        // Tuples average well under one disk block, so a layered read
        // transfers a single disk block.
        CostParams {
            seek_us: 4_000.0,
            transfer_us: 100.0,
            chain_block_bytes: 4 * 1024 * 1024,
            disk_block_bytes: 4 * 1024,
            tuple_bytes: 256,
            fence_probe_us: 1.0,
            index_cache_hit_rate: 0.9,
        }
    }
}

/// Observed index-cache accesses below which [`CostParams::calibrated`]
/// keeps the default hit rate: a handful of cold-start misses would
/// otherwise swing the estimate to an extreme that no steady-state
/// workload exhibits.
pub const CALIBRATION_MIN_SAMPLES: u64 = 64;

/// One-time microprobe of the fence binary search this deployment
/// actually runs: median-of-batches timing of `partition_point` over a
/// fence-sized array, clamped to a sane band. Cached after first use —
/// the planner consults it per query.
fn measured_fence_probe_us() -> f64 {
    use std::sync::OnceLock;
    static MEASURED: OnceLock<f64> = OnceLock::new();
    *MEASURED.get_or_init(|| {
        // The shape of a real fence probe: binary search over ~4k
        // first-key entries (a full level-0 fence table).
        let fences: Vec<u64> = (0..4096u64).map(|i| i * 977).collect();
        let probes_per_batch = 512u32;
        let mut best_us = f64::INFINITY;
        let mut key = 0x9E37_79B9u64;
        for _ in 0..8 {
            let start = std::time::Instant::now();
            let mut live = 0u64;
            for _ in 0..probes_per_batch {
                key = key.wrapping_mul(6364136223846793005).wrapping_add(1);
                let needle = key % (4096 * 977);
                live = live.wrapping_add(fences.partition_point(|&f| f <= needle) as u64);
            }
            let elapsed = start.elapsed().as_secs_f64() * 1e6;
            std::hint::black_box(live);
            // Fastest batch ≈ the uncontended cost; slower ones carry
            // scheduler noise.
            best_us = best_us.min(elapsed / f64::from(probes_per_batch));
        }
        // Clamp: a probe can't round to zero (the term must stay
        // monotone in index_blocks) and a wildly slow reading would
        // poison every plan until restart.
        best_us.clamp(0.05, 50.0)
    })
}

impl CostParams {
    /// Default parameters recalibrated from live `IoStats` index-cache
    /// counters: `index_cache_hit_rate` becomes the observed
    /// `hits / (hits + misses)` once at least
    /// [`CALIBRATION_MIN_SAMPLES`] accesses exist (below that the
    /// default stands), and `fence_probe_us` is replaced by the
    /// once-per-process microprobe measurement of the actual fence
    /// binary search. Everything else keeps its default.
    pub fn calibrated(hits: u64, misses: u64) -> CostParams {
        let mut params = CostParams {
            fence_probe_us: measured_fence_probe_us(),
            ..CostParams::default()
        };
        let total = hits + misses;
        if total >= CALIBRATION_MIN_SAMPLES {
            params.index_cache_hit_rate = hits as f64 / total as f64;
        }
        params
    }
}

/// Access-path choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Scan every block.
    Scan,
    /// Read blocks selected by the table-level bitmap.
    Bitmap,
    /// Read individual tuples via the layered index.
    Layered,
}

impl CostParams {
    /// Eq. (1): full scan over a chain of `n` blocks.
    pub fn cost_scan(&self, n: u64) -> f64 {
        let disk_blocks = (self.chain_block_bytes as f64 / self.disk_block_bytes as f64) * n as f64;
        n as f64 * self.seek_us + disk_blocks * self.transfer_us
    }

    /// Eq. (2): bitmap path reading `k ≤ n` blocks.
    pub fn cost_bitmap(&self, k: u64) -> f64 {
        self.cost_scan(k)
    }

    /// Eq. (3): layered path reading `p` matching tuples at random.
    /// Each random read seeks once and transfers only the disk blocks
    /// covering one tuple (`⌈tuple_bytes/b⌉`, 1 at the defaults) —
    /// tuple-granular preads mean the transfer term no longer scales
    /// with the chain block size.
    pub fn cost_layered(&self, p: u64) -> f64 {
        let blocks_per_tuple = (self.tuple_bytes as f64 / self.disk_block_bytes as f64)
            .ceil()
            .max(1.0);
        p as f64 * (self.seek_us + blocks_per_tuple * self.transfer_us)
    }

    /// Cost of probing `index_blocks` level-1 blocks of a disk-resident
    /// index: every probe binary-searches the resident fence array;
    /// cache misses additionally seek and transfer one disk block
    /// (Eq. 3's per-block transfer term applied to the index itself).
    /// With `index_cache_hit_rate = 1` this degenerates to the
    /// in-memory probe cost — the `cache=∞` reference.
    pub fn cost_index_probe(&self, index_blocks: u64) -> f64 {
        let miss = (1.0 - self.index_cache_hit_rate).clamp(0.0, 1.0);
        index_blocks as f64 * (self.fence_probe_us + miss * (self.seek_us + self.transfer_us))
    }

    /// Eq. (3) on a paged index: the layered tuple reads plus the cost
    /// of paging the index blocks consulted along the way.
    pub fn cost_layered_paged(&self, p: u64, index_blocks: u64) -> f64 {
        self.cost_layered(p) + self.cost_index_probe(index_blocks)
    }

    /// Picks the cheapest path given the chain height `n`, the bitmap
    /// candidate count `k`, and the estimated result cardinality `p`,
    /// with a fully resident layered index (`index_blocks = 0`).
    pub fn choose(&self, n: u64, k: u64, p: u64) -> AccessPath {
        self.choose_paged(n, k, p, 0)
    }

    /// [`Self::choose`] for a disk-resident layered index that must
    /// page in an estimated `index_blocks` level-1 index blocks along
    /// the way. The scan and bitmap paths never consult the layered
    /// index, so only the layered term moves.
    pub fn choose_paged(&self, n: u64, k: u64, p: u64, index_blocks: u64) -> AccessPath {
        let scan = self.cost_scan(n);
        let bitmap = self.cost_bitmap(k);
        let layered = self.cost_layered_paged(p, index_blocks);
        if layered <= bitmap && layered <= scan {
            AccessPath::Layered
        } else if bitmap <= scan {
            AccessPath::Bitmap
        } else {
            AccessPath::Scan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_queries_prefer_layered() {
        let c = CostParams::default();
        // 1000 blocks, table spans 800 of them, 50 matching tuples.
        assert_eq!(c.choose(1000, 800, 50), AccessPath::Layered);
    }

    #[test]
    fn huge_results_prefer_bitmap() {
        let c = CostParams::default();
        // Few blocks hold the table but the result is enormous: random
        // I/O per tuple loses ("random I/O is slow").
        assert_eq!(c.choose(1000, 100, 2_000_000), AccessPath::Bitmap);
    }

    #[test]
    fn scan_only_when_bitmap_covers_everything() {
        let c = CostParams::default();
        let scan = c.cost_scan(100);
        let bitmap_all = c.cost_bitmap(100);
        assert!(
            (scan - bitmap_all).abs() < 1e-9,
            "k = n degenerates to scan"
        );
    }

    #[test]
    fn costs_are_monotone() {
        let c = CostParams::default();
        assert!(c.cost_scan(10) < c.cost_scan(20));
        assert!(c.cost_bitmap(5) < c.cost_bitmap(6));
        assert!(c.cost_layered(100) < c.cost_layered(101));
    }

    #[test]
    fn larger_tuples_raise_layered_cost() {
        let small = CostParams::default();
        let big = CostParams {
            tuple_bytes: 64 * 1024,
            ..CostParams::default()
        };
        assert!(big.cost_layered(100) > small.cost_layered(100));
        // At the defaults a tuple fits in one disk block, so the
        // per-tuple transfer is exactly one t_T.
        assert!((small.cost_layered(1) - (small.seek_us + small.transfer_us)).abs() < 1e-9);
    }

    #[test]
    fn paged_probe_cost_vanishes_at_full_hit_rate() {
        let c = CostParams {
            index_cache_hit_rate: 1.0,
            ..CostParams::default()
        };
        // Only the in-memory fence probes remain.
        assert!((c.cost_index_probe(100) - 100.0 * c.fence_probe_us).abs() < 1e-9);
        let cold = CostParams {
            index_cache_hit_rate: 0.0,
            ..CostParams::default()
        };
        // A cold cache pays a full random read per index block.
        assert!(cold.cost_index_probe(10) > cold.cost_layered(9));
        assert!(
            cold.cost_layered_paged(100, 10) > cold.cost_layered(100),
            "paged path must not be free"
        );
    }

    #[test]
    fn paged_probes_shift_the_crossover() {
        // A cold index cache makes the layered path strictly less
        // attractive: a (n, k, p) point that picks Layered when the
        // index is resident flips once every candidate block also
        // pages an index block at hit rate 0.
        let cold = CostParams {
            index_cache_hit_rate: 0.0,
            ..CostParams::default()
        };
        let (n, k, p) = (10_000, 98, 2_000);
        assert_eq!(cold.choose(n, k, p), AccessPath::Layered);
        assert_eq!(cold.choose_paged(n, k, p, 0), AccessPath::Layered);
        assert_eq!(cold.choose_paged(n, k, p, 100_000), AccessPath::Bitmap);
    }

    #[test]
    fn calibration_tracks_observed_hit_rate() {
        // Enough samples: the observed ratio replaces the default.
        let c = CostParams::calibrated(90, 10);
        assert!((c.index_cache_hit_rate - 0.9).abs() < 1e-9);
        let cold = CostParams::calibrated(0, 100);
        assert!((cold.index_cache_hit_rate - 0.0).abs() < 1e-9);
        // Under the sample floor (including the no-data cold start)
        // the default stands.
        let fresh = CostParams::calibrated(0, 0);
        assert!(
            (fresh.index_cache_hit_rate - CostParams::default().index_cache_hit_rate).abs() < 1e-9
        );
        let sparse = CostParams::calibrated(CALIBRATION_MIN_SAMPLES - 1, 0);
        assert!(
            (sparse.index_cache_hit_rate - CostParams::default().index_cache_hit_rate).abs() < 1e-9
        );
    }

    #[test]
    fn measured_fence_probe_is_sane_and_stable() {
        let a = CostParams::calibrated(0, 0).fence_probe_us;
        let b = CostParams::calibrated(500, 500).fence_probe_us;
        assert!((0.05..=50.0).contains(&a), "probe estimate {a} out of band");
        assert!((a - b).abs() < 1e-12, "microprobe must be cached");
        // Everything but the two calibrated knobs keeps its default.
        let c = CostParams::calibrated(90, 10);
        let d = CostParams::default();
        assert_eq!(c.seek_us, d.seek_us);
        assert_eq!(c.chain_block_bytes, d.chain_block_bytes);
        assert_eq!(c.tuple_bytes, d.tuple_bytes);
    }

    #[test]
    fn crossover_exists() {
        // As p grows with fixed k, layered eventually loses to bitmap —
        // the crossover the paper discusses after Eq. (3).
        let c = CostParams::default();
        let k = 100;
        let small_p = c.choose(1000, k, 10);
        let large_p = c.choose(1000, k, 10_000_000);
        assert_eq!(small_p, AccessPath::Layered);
        assert_eq!(large_p, AccessPath::Bitmap);
    }
}
