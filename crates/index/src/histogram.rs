//! Equal-depth histograms for continuous attributes.
//!
//! §IV-B: "for a continuous attribute, we will generate an equal-depth
//! histogram in advance, and each entry represents range of index keys
//! of a block… created by sampling historical transactions during index
//! creating; the height of histogram is configurable for different
//! precisions."
//!
//! Bucket `i` covers ranks in `(bounds[i-1], bounds[i]]`, with bucket 0
//! open below and the last bucket open above: `(-∞, k₁], (k₁, k₂] …
//! (k_p, ∞)`.

/// An equal-depth (equi-height) histogram over `i64` ranks (see
/// `Value::numeric_rank`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EqualDepthHistogram {
    /// Interior bucket boundaries, ascending: `bounds.len() + 1` buckets.
    bounds: Vec<i64>,
}

impl EqualDepthHistogram {
    /// Builds a histogram with (up to) `buckets` equal-depth buckets
    /// from a sample of ranks. Duplicate boundaries are merged, so the
    /// realized bucket count can be smaller on skewed samples.
    pub fn from_sample(mut sample: Vec<i64>, buckets: usize) -> Self {
        assert!(buckets >= 1, "need at least one bucket");
        if sample.is_empty() || buckets == 1 {
            return EqualDepthHistogram { bounds: Vec::new() };
        }
        sample.sort_unstable();
        let n = sample.len();
        let mut bounds = Vec::with_capacity(buckets - 1);
        for b in 1..buckets {
            // Boundary at the b/buckets quantile.
            let idx = (b * n / buckets).min(n - 1);
            let bound = sample[idx];
            if bounds.last() != Some(&bound) {
                bounds.push(bound);
            }
        }
        EqualDepthHistogram { bounds }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.bounds.len() + 1
    }

    /// The bucket containing `rank`.
    pub fn bucket_of(&self, rank: i64) -> usize {
        // Bucket i covers (bounds[i-1], bounds[i]]; partition on `< rank`
        // so rank == bounds[i] lands in bucket i.
        self.bounds.partition_point(|b| *b < rank)
    }

    /// Inclusive bucket-index range covering `[lo, hi]`.
    pub fn buckets_for_range(&self, lo: i64, hi: i64) -> std::ops::RangeInclusive<usize> {
        self.bucket_of(lo)..=self.bucket_of(hi.max(lo))
    }

    /// The interior boundaries (checkpoint serialization).
    pub fn bounds(&self) -> &[i64] {
        &self.bounds
    }

    /// Rebuilds a histogram from its boundaries (checkpoint
    /// deserialization). Boundaries must be strictly ascending, as
    /// [`Self::bounds`] yields them.
    pub fn from_bounds(bounds: Vec<i64>) -> Self {
        EqualDepthHistogram { bounds }
    }

    /// The rank bounds `(lower_exclusive, upper_inclusive)` of bucket
    /// `i`; `None` means unbounded on that side.
    pub fn bucket_bounds(&self, i: usize) -> (Option<i64>, Option<i64>) {
        let lower = if i == 0 {
            None
        } else {
            Some(self.bounds[i - 1])
        };
        let upper = self.bounds.get(i).copied();
        (lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_sample_splits_evenly() {
        let sample: Vec<i64> = (0..1000).collect();
        let h = EqualDepthHistogram::from_sample(sample, 10);
        assert_eq!(h.bucket_count(), 10);
        assert_eq!(h.bucket_of(0), 0);
        assert_eq!(h.bucket_of(999), 9);
        // Each bucket should hold ~100 ranks.
        let counts: Vec<usize> = {
            let mut c = vec![0usize; h.bucket_count()];
            for r in 0..1000 {
                c[h.bucket_of(r)] += 1;
            }
            c
        };
        for c in counts {
            assert!((80..=120).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn skewed_sample_merges_buckets() {
        let sample = vec![5i64; 100];
        let h = EqualDepthHistogram::from_sample(sample, 10);
        assert!(h.bucket_count() <= 2);
        assert_eq!(h.bucket_of(5), 0);
        // Ranks above the only boundary fall in the last bucket.
        assert_eq!(h.bucket_of(6), h.bucket_count() - 1);
    }

    #[test]
    fn empty_sample_single_bucket() {
        let h = EqualDepthHistogram::from_sample(vec![], 8);
        assert_eq!(h.bucket_count(), 1);
        assert_eq!(h.bucket_of(i64::MIN), 0);
        assert_eq!(h.bucket_of(i64::MAX), 0);
    }

    #[test]
    fn boundary_is_inclusive_above() {
        let sample: Vec<i64> = (0..100).collect();
        let h = EqualDepthHistogram::from_sample(sample, 2);
        let boundary = match h.bucket_bounds(0).1 {
            Some(b) => b,
            None => panic!("expected a boundary"),
        };
        assert_eq!(h.bucket_of(boundary), 0);
        assert_eq!(h.bucket_of(boundary + 1), 1);
    }

    #[test]
    fn range_covers_expected_buckets() {
        let sample: Vec<i64> = (0..1000).collect();
        let h = EqualDepthHistogram::from_sample(sample, 10);
        let r = h.buckets_for_range(0, 999);
        assert_eq!(*r.start(), 0);
        assert_eq!(*r.end(), 9);
        let narrow = h.buckets_for_range(450, 455);
        assert!(narrow.end() - narrow.start() <= 1);
    }

    proptest! {
        #[test]
        fn bucket_of_is_monotone(sample in proptest::collection::vec(any::<i32>(), 1..500),
                                 buckets in 1usize..32,
                                 probes in proptest::collection::vec(any::<i32>(), 2..20)) {
            let h = EqualDepthHistogram::from_sample(sample.iter().map(|&x| x as i64).collect(), buckets);
            let mut sorted = probes.clone();
            sorted.sort();
            let ids: Vec<usize> = sorted.iter().map(|&p| h.bucket_of(p as i64)).collect();
            prop_assert!(ids.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(ids.iter().all(|&i| i < h.bucket_count()));
        }

        #[test]
        fn bounds_are_consistent(sample in proptest::collection::vec(-1000i64..1000, 1..300), buckets in 2usize..16) {
            let h = EqualDepthHistogram::from_sample(sample, buckets);
            for i in 0..h.bucket_count() {
                let (lo, hi) = h.bucket_bounds(i);
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    prop_assert!(lo < hi, "bucket {i}: {lo} >= {hi}");
                }
                // A rank strictly inside the bucket maps back to it.
                if let Some(hi) = hi {
                    prop_assert_eq!(h.bucket_of(hi), i);
                }
            }
        }
    }
}
