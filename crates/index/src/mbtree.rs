//! Merkle B-tree (MB-tree) — the authenticated second level of the ALI
//! (§VI).
//!
//! "MB-tree is a combination of B⁺-tree and Merkle Hash Tree, where
//! each leaf node contains the hash value of \[the\] record, and each
//! internal node stores the hash of the concatenation of its children."
//!
//! Blocks are immutable, so each per-block MB-tree is *static*: built
//! once by bulk loading, fanout `F` per node (the 4 KB page of
//! §VII-A). A range query produces a [`RangeProof`] from which a thin
//! client can re-derive the root and check **soundness** (every result
//! is genuine) and **completeness** (no result is missing — enforced
//! through boundary entries, exactly as in the MB-tree range protocol
//! of Li et al., SIGMOD'06).

use sebdb_crypto::sha256::{Digest, Sha256};
use sebdb_storage::TxPtr;
use sebdb_types::{Encoder, Value};

/// Node fanout: entries per 4 KB page at ~64 B per authenticated entry.
pub const DEFAULT_FANOUT: usize = 64;

/// One authenticated leaf entry: the key, the pointed-to transaction's
/// content hash, and its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthEntry {
    /// Index key (attribute value).
    pub key: Value,
    /// SHA-256 of the transaction's canonical encoding.
    pub tx_hash: Digest,
    /// Where the transaction lives.
    pub ptr: TxPtr,
}

impl AuthEntry {
    /// The leaf digest: `H(0x02 ‖ encode(key) ‖ tx_hash)`.
    pub fn digest(&self) -> Digest {
        let mut enc = Encoder::with_capacity(64);
        enc.put_value(&self.key);
        let key_bytes = enc.finish();
        let mut h = Sha256::new();
        h.update(&[0x02]);
        h.update(&key_bytes);
        h.update(self.tx_hash.as_bytes());
        h.finalize()
    }

    /// Serialized size (for VO accounting).
    pub fn byte_len(&self) -> usize {
        let mut enc = Encoder::new();
        enc.put_value(&self.key);
        enc.len() + 32 + 12
    }
}

fn hash_children(children: &[Digest]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x03]);
    for c in children {
        h.update(c.as_bytes());
    }
    h.finalize()
}

/// A static (bulk-loaded, immutable) MB-tree over one block's entries,
/// sorted by key.
#[derive(Debug, Clone)]
pub struct MbTree {
    fanout: usize,
    /// `levels[0]` = leaf-entry digests; each higher level hashes
    /// `fanout` children. `levels.last()` = `[root]`.
    levels: Vec<Vec<Digest>>,
    entries: Vec<AuthEntry>,
}

/// Verification object for a range query against one MB-tree.
///
/// `fringe[l]` holds, for level `l`, the sibling digests inside the
/// boundary parent nodes: first the digests left of the covered range,
/// then those right of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeProof {
    /// Index of the first revealed entry.
    pub start: usize,
    /// Total number of entries in the tree.
    pub total: usize,
    /// Left boundary entry (first revealed, key < lo), when the range
    /// does not start at entry 0.
    pub left_boundary: Option<AuthEntry>,
    /// Right boundary entry (last revealed, key > hi), when the range
    /// does not end at the last entry.
    pub right_boundary: Option<AuthEntry>,
    /// Per-level (left digests, right digests) inside boundary nodes.
    pub fringe: Vec<(Vec<Digest>, Vec<Digest>)>,
}

impl RangeProof {
    /// VO size in bytes: fringe digests + boundary entries + framing.
    pub fn byte_len(&self) -> usize {
        let fringe: usize = self
            .fringe
            .iter()
            .map(|(l, r)| (l.len() + r.len()) * 32)
            .sum();
        let bounds: usize = self
            .left_boundary
            .iter()
            .map(AuthEntry::byte_len)
            .sum::<usize>()
            + self
                .right_boundary
                .iter()
                .map(AuthEntry::byte_len)
                .sum::<usize>();
        fringe + bounds + 16
    }
}

/// Why a proof failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Reconstructed root does not match the trusted root.
    RootMismatch,
    /// A returned result key falls outside the queried range.
    ResultOutOfRange,
    /// Results are not sorted by key.
    ResultsUnsorted,
    /// A boundary entry's key does not actually bound the range
    /// (completeness violation).
    BadBoundary,
    /// Proof shape is inconsistent (counts, indices).
    Malformed,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VerifyError::RootMismatch => "reconstructed root mismatch",
            VerifyError::ResultOutOfRange => "result key outside query range",
            VerifyError::ResultsUnsorted => "result keys unsorted",
            VerifyError::BadBoundary => "boundary entry does not bound the range",
            VerifyError::Malformed => "malformed proof",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VerifyError {}

impl MbTree {
    /// Bulk-loads a tree from entries sorted by key.
    pub fn build(mut entries: Vec<AuthEntry>, fanout: usize) -> Self {
        assert!(fanout >= 2);
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut levels: Vec<Vec<Digest>> = Vec::new();
        levels.push(entries.iter().map(AuthEntry::digest).collect());
        if levels[0].is_empty() {
            return MbTree {
                fanout,
                levels,
                entries,
            };
        }
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let next: Vec<Digest> = prev.chunks(fanout).map(hash_children).collect();
            levels.push(next);
        }
        MbTree {
            fanout,
            levels,
            entries,
        }
    }

    /// The authenticated root. Empty trees root at [`Digest::ZERO`].
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first().copied())
            .unwrap_or(Digest::ZERO)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries (sorted by key).
    pub fn entries(&self) -> &[AuthEntry] {
        &self.entries
    }

    /// Answers `lo ≤ key ≤ hi`, returning the matching entries and a
    /// proof of soundness + completeness.
    pub fn range_query(&self, lo: &Value, hi: &Value) -> (Vec<AuthEntry>, RangeProof) {
        let n = self.entries.len();
        if n == 0 {
            return (
                Vec::new(),
                RangeProof {
                    start: 0,
                    total: 0,
                    left_boundary: None,
                    right_boundary: None,
                    fringe: Vec::new(),
                },
            );
        }
        let i = self.entries.partition_point(|e| e.key < *lo);
        let j = self.entries.partition_point(|e| e.key <= *hi); // exclusive
        let results: Vec<AuthEntry> = self.entries[i..j].to_vec();

        // Revealed index range [a, b] includes the boundaries.
        let a = i.saturating_sub(1);
        let b = if j < n { j } else { j - 1 }.max(a);
        let left_boundary = (i > 0).then(|| self.entries[a].clone());
        let right_boundary = (j < n).then(|| self.entries[b].clone());

        // Collect fringes level by level.
        let mut fringe = Vec::new();
        let (mut a_l, mut b_l) = (a, b);
        for level in &self.levels[..self.levels.len() - 1] {
            let parent_a = a_l / self.fanout;
            let parent_b = b_l / self.fanout;
            let left_start = parent_a * self.fanout;
            let right_end = ((parent_b + 1) * self.fanout).min(level.len());
            let left: Vec<Digest> = level[left_start..a_l].to_vec();
            let right: Vec<Digest> = level[b_l + 1..right_end].to_vec();
            fringe.push((left, right));
            a_l = parent_a;
            b_l = parent_b;
        }

        (
            results,
            RangeProof {
                start: a,
                total: n,
                left_boundary,
                right_boundary,
                fringe,
            },
        )
    }

    /// Client-side verification: reconstructs the root from the result
    /// entries + proof and checks soundness and completeness against
    /// the trusted `root`.
    pub fn verify_range(
        root: &Digest,
        lo: &Value,
        hi: &Value,
        results: &[AuthEntry],
        proof: &RangeProof,
        fanout: usize,
    ) -> Result<(), VerifyError> {
        if proof.total == 0 {
            // Empty tree: nothing can match; root must be the empty root.
            return if results.is_empty() && *root == Digest::ZERO {
                Ok(())
            } else {
                Err(VerifyError::RootMismatch)
            };
        }
        // Soundness shape checks on results.
        for r in results {
            if r.key < *lo || r.key > *hi {
                return Err(VerifyError::ResultOutOfRange);
            }
        }
        if results.windows(2).any(|w| w[0].key > w[1].key) {
            return Err(VerifyError::ResultsUnsorted);
        }
        // Completeness: boundaries must straddle the range, and absence
        // of a boundary means the revealed range touches the tree edge.
        if let Some(lb) = &proof.left_boundary {
            if lb.key >= *lo {
                return Err(VerifyError::BadBoundary);
            }
        } else if proof.start != 0 {
            return Err(VerifyError::Malformed);
        }
        let revealed: Vec<&AuthEntry> = proof
            .left_boundary
            .iter()
            .chain(results.iter())
            .chain(proof.right_boundary.iter())
            .collect();
        if revealed.is_empty() {
            return Err(VerifyError::Malformed);
        }
        if let Some(rb) = &proof.right_boundary {
            if rb.key <= *hi {
                return Err(VerifyError::BadBoundary);
            }
        } else if proof.start + revealed.len() != proof.total {
            return Err(VerifyError::Malformed);
        }
        // Reconstruct the root.
        let mut digests: Vec<Digest> = revealed.iter().map(|e| e.digest()).collect();
        let mut a = proof.start;
        let mut n = proof.total;
        for (left, right) in &proof.fringe {
            let b = a + digests.len() - 1;
            let parent_a = a / fanout;
            let parent_b = b / fanout;
            // Stitch fringes around the covered digests.
            let mut level: Vec<Digest> =
                Vec::with_capacity(left.len() + digests.len() + right.len());
            level.extend_from_slice(left);
            level.append(&mut digests);
            level.extend_from_slice(right);
            // Check the fringe sizes are consistent with the claimed
            // positions.
            let left_start = parent_a * fanout;
            let right_end = ((parent_b + 1) * fanout).min(n);
            if left.len() != a - left_start || right.len() != right_end - (b + 1) {
                return Err(VerifyError::Malformed);
            }
            // Hash full nodes.
            digests = level.chunks(fanout).map(hash_children).collect();
            a = parent_a;
            n = n.div_ceil(fanout);
        }
        if digests.len() != 1 || digests[0] != *root {
            return Err(VerifyError::RootMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sebdb_crypto::sha256::sha256;

    fn entry(k: i64) -> AuthEntry {
        AuthEntry {
            key: Value::Int(k),
            tx_hash: sha256(&k.to_le_bytes()),
            ptr: TxPtr {
                block: 0,
                index: k as u32,
            },
        }
    }

    fn tree(keys: &[i64], fanout: usize) -> MbTree {
        MbTree::build(keys.iter().map(|&k| entry(k)).collect(), fanout)
    }

    fn check(t: &MbTree, lo: i64, hi: i64) -> Vec<i64> {
        let (results, proof) = t.range_query(&Value::Int(lo), &Value::Int(hi));
        MbTree::verify_range(
            &t.root(),
            &Value::Int(lo),
            &Value::Int(hi),
            &results,
            &proof,
            t.fanout,
        )
        .unwrap_or_else(|e| panic!("verify failed for [{lo},{hi}]: {e}"));
        results
            .iter()
            .map(|e| match &e.key {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn range_query_returns_and_verifies() {
        let t = tree(&(0..100).collect::<Vec<_>>(), 4);
        assert_eq!(check(&t, 10, 20), (10..=20).collect::<Vec<_>>());
        assert_eq!(check(&t, 0, 99), (0..=99).collect::<Vec<_>>());
        assert_eq!(check(&t, 0, 0), vec![0]);
        assert_eq!(check(&t, 99, 99), vec![99]);
    }

    #[test]
    fn empty_result_ranges_verify() {
        let t = tree(&[10, 20, 30, 40, 50], 3);
        assert!(check(&t, 21, 29).is_empty()); // gap
        assert!(check(&t, 0, 5).is_empty()); // before all
        assert!(check(&t, 60, 99).is_empty()); // after all
    }

    #[test]
    fn empty_tree_verifies() {
        let t = tree(&[], 4);
        let (results, proof) = t.range_query(&Value::Int(0), &Value::Int(10));
        assert!(results.is_empty());
        assert!(MbTree::verify_range(
            &t.root(),
            &Value::Int(0),
            &Value::Int(10),
            &results,
            &proof,
            4
        )
        .is_ok());
    }

    #[test]
    fn soundness_dropped_result_detected() {
        let t = tree(&(0..50).collect::<Vec<_>>(), 4);
        let (mut results, proof) = t.range_query(&Value::Int(10), &Value::Int(20));
        results.remove(3); // server drops a result
        assert!(MbTree::verify_range(
            &t.root(),
            &Value::Int(10),
            &Value::Int(20),
            &results,
            &proof,
            4
        )
        .is_err());
    }

    #[test]
    fn soundness_forged_result_detected() {
        let t = tree(&(0..50).collect::<Vec<_>>(), 4);
        let (mut results, proof) = t.range_query(&Value::Int(10), &Value::Int(20));
        results[0].tx_hash = sha256(b"forged");
        assert_eq!(
            MbTree::verify_range(
                &t.root(),
                &Value::Int(10),
                &Value::Int(20),
                &results,
                &proof,
                4
            ),
            Err(VerifyError::RootMismatch)
        );
    }

    #[test]
    fn completeness_truncated_tail_detected() {
        let t = tree(&(0..50).collect::<Vec<_>>(), 4);
        let (results, mut proof) = t.range_query(&Value::Int(10), &Value::Int(20));
        // Server pretends the range ended earlier by moving the right
        // boundary into the range.
        proof.right_boundary = Some(entry(15));
        let truncated: Vec<AuthEntry> = results[..5].to_vec();
        assert!(MbTree::verify_range(
            &t.root(),
            &Value::Int(10),
            &Value::Int(20),
            &truncated,
            &proof,
            4
        )
        .is_err());
    }

    #[test]
    fn tampered_boundary_detected() {
        let t = tree(&(0..50).collect::<Vec<_>>(), 4);
        let (results, mut proof) = t.range_query(&Value::Int(10), &Value::Int(20));
        proof.left_boundary = Some(entry(8)); // real boundary is 9
        assert_eq!(
            MbTree::verify_range(
                &t.root(),
                &Value::Int(10),
                &Value::Int(20),
                &results,
                &proof,
                4
            ),
            Err(VerifyError::RootMismatch)
        );
    }

    #[test]
    fn wrong_root_detected() {
        let t = tree(&(0..50).collect::<Vec<_>>(), 4);
        let (results, proof) = t.range_query(&Value::Int(10), &Value::Int(20));
        let other = tree(&(0..51).collect::<Vec<_>>(), 4);
        assert_eq!(
            MbTree::verify_range(
                &other.root(),
                &Value::Int(10),
                &Value::Int(20),
                &results,
                &proof,
                4
            ),
            Err(VerifyError::RootMismatch)
        );
    }

    #[test]
    fn duplicate_keys_supported() {
        let t = tree(&[5, 5, 5, 7, 7, 9], 3);
        assert_eq!(check(&t, 5, 5), vec![5, 5, 5]);
        assert_eq!(check(&t, 6, 8), vec![7, 7]);
    }

    #[test]
    fn vo_size_grows_with_tree_not_range() {
        let small = tree(&(0..64).collect::<Vec<_>>(), 4);
        let large = tree(&(0..4096).collect::<Vec<_>>(), 4);
        let (_, p_small) = small.range_query(&Value::Int(10), &Value::Int(12));
        let (_, p_large) = large.range_query(&Value::Int(10), &Value::Int(12));
        assert!(
            p_large.byte_len() > p_small.byte_len(),
            "deeper tree → larger VO"
        );
        // And a VO is far smaller than shipping the whole tree.
        assert!(p_large.byte_len() < 4096 * 32 / 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_trees_verify(
            mut keys in proptest::collection::vec(-100i64..100, 0..200),
            lo in -120i64..120,
            len in 0i64..60,
            fanout in 2usize..9,
        ) {
            keys.sort_unstable();
            let t = tree(&keys, fanout);
            let hi = lo + len;
            let (results, proof) = t.range_query(&Value::Int(lo), &Value::Int(hi));
            prop_assert!(MbTree::verify_range(&t.root(), &Value::Int(lo), &Value::Int(hi), &results, &proof, fanout).is_ok());
            let want: Vec<i64> = keys.iter().copied().filter(|k| *k >= lo && *k <= hi).collect();
            let got: Vec<i64> = results.iter().map(|e| match &e.key { Value::Int(i) => *i, _ => unreachable!() }).collect();
            prop_assert_eq!(got, want);
        }
    }
}
