//! ALI — the Authenticated Layered Index (§VI).
//!
//! The layered index with the per-block second-level B⁺-tree replaced
//! by an [`MbTree`]. "Since each block maintains the second level
//! index, each block height corresponds to a snapshot": a query at
//! height `h` touches only blocks `< h`, and the auxiliary full node's
//! digest is the hash of the concatenation of the MB-tree roots of
//! exactly the blocks the query must visit.

use crate::bitmap::Bitmap;
use crate::histogram::EqualDepthHistogram;
use crate::layered::KeyPredicate;
use crate::mbtree::{AuthEntry, MbTree, RangeProof, VerifyError, DEFAULT_FANOUT};
use sebdb_crypto::sha256::{Digest, Sha256};
use sebdb_storage::TxPtr;
use sebdb_types::{Block, BlockId, ColumnRef, Value};
use std::collections::HashMap;

/// Authenticated layered index over one attribute.
#[derive(Debug)]
pub struct AuthenticatedLayeredIndex {
    /// Table filter (`None` = all tables, for system columns).
    pub table: Option<String>,
    /// Indexed column.
    pub column: ColumnRef,
    fanout: usize,
    first_continuous: Option<(EqualDepthHistogram, Vec<Option<Bitmap>>)>,
    first_discrete: Option<HashMap<Value, Bitmap>>,
    /// Per-block MB-trees.
    trees: Vec<Option<MbTree>>,
}

/// The verification object returned by a full node for one
/// authenticated query (phase 1 of §VI's protocol).
#[derive(Debug, Clone)]
pub struct QueryVo {
    /// Chain height when the query executed — the snapshot.
    pub height: BlockId,
    /// Blocks the query visited (ascending), with their per-block
    /// results and range proofs.
    pub per_block: Vec<BlockVo>,
}

/// One visited block's contribution to the VO.
#[derive(Debug, Clone)]
pub struct BlockVo {
    /// Visited block.
    pub block: BlockId,
    /// Matching entries in this block.
    pub results: Vec<AuthEntry>,
    /// Proof tying the results to the block's MB-tree root.
    pub proof: RangeProof,
    /// The MB-tree root the proof reconstructs to (also covered by the
    /// auxiliary digest).
    pub mb_root: Digest,
}

impl QueryVo {
    /// Total VO size in bytes (Fig. 17's metric).
    pub fn byte_len(&self) -> usize {
        8 + self
            .per_block
            .iter()
            .map(|b| {
                8 + 32
                    + b.proof.byte_len()
                    + b.results.iter().map(AuthEntry::byte_len).sum::<usize>()
            })
            .sum::<usize>()
    }

    /// All matching transaction pointers across blocks.
    pub fn result_ptrs(&self) -> Vec<TxPtr> {
        self.per_block
            .iter()
            .flat_map(|b| b.results.iter().map(|e| e.ptr))
            .collect()
    }
}

/// Hashes the MB-roots of the visited blocks into the auxiliary
/// digest ("the auxiliary full node … generates a digest according to
/// the roots of MB-trees the query visited").
pub fn auxiliary_digest(roots: &[(BlockId, Digest)]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x04]);
    for (bid, root) in roots {
        h.update(&bid.to_le_bytes());
        h.update(root.as_bytes());
    }
    h.finalize()
}

impl AuthenticatedLayeredIndex {
    /// Continuous-attribute ALI.
    pub fn new_continuous(
        table: Option<String>,
        column: ColumnRef,
        hist: EqualDepthHistogram,
    ) -> Self {
        AuthenticatedLayeredIndex {
            table,
            column,
            fanout: DEFAULT_FANOUT,
            first_continuous: Some((hist, Vec::new())),
            first_discrete: None,
            trees: Vec::new(),
        }
    }

    /// Discrete-attribute ALI.
    pub fn new_discrete(table: Option<String>, column: ColumnRef) -> Self {
        AuthenticatedLayeredIndex {
            table,
            column,
            fanout: DEFAULT_FANOUT,
            first_continuous: None,
            first_discrete: Some(HashMap::new()),
            trees: Vec::new(),
        }
    }

    /// MB-tree fanout (needed by clients to verify).
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Indexes a newly chained block.
    pub fn update(&mut self, block: &Block) {
        let rows: Vec<u32> = block
            .transactions
            .iter()
            .enumerate()
            .filter(|(_, tx)| match &self.table {
                Some(t) => tx.tname.eq_ignore_ascii_case(t),
                None => true,
            })
            .map(|(i, _)| i as u32)
            .collect();
        self.update_rows(block, &rows);
    }

    /// Per-relation maintenance entry point: indexes a newly chained
    /// block from a pre-partitioned tuple set (see
    /// [`crate::LayeredIndex::update_rows`]). `rows` are the ascending
    /// positions of the block's transactions belonging to this index's
    /// relation; the caller guarantees they are exactly the covered
    /// positions, making this equivalent to [`Self::update`].
    pub fn update_rows(&mut self, block: &Block, rows: &[u32]) {
        let bid = block.header.height as usize;
        if self.trees.len() <= bid {
            self.trees.resize_with(bid + 1, || None);
            if let Some((_, entries)) = &mut self.first_continuous {
                entries.resize_with(bid + 1, || None);
            }
        }
        let mut auth_entries: Vec<AuthEntry> = Vec::new();
        for &i in rows {
            let Some(tx) = block.transactions.get(i as usize) else {
                continue;
            };
            let Some(v) = tx.get(self.column) else {
                continue;
            };
            if v == Value::Null {
                continue;
            }
            auth_entries.push(AuthEntry {
                key: v,
                tx_hash: tx.hash(),
                ptr: TxPtr {
                    block: bid as BlockId,
                    index: i,
                },
            });
        }
        if auth_entries.is_empty() {
            return;
        }
        if let Some((hist, entries)) = &mut self.first_continuous {
            let mut bucket_map = Bitmap::with_capacity(hist.bucket_count());
            for e in &auth_entries {
                if let Some(rank) = e.key.numeric_rank() {
                    bucket_map.set(hist.bucket_of(rank));
                }
            }
            entries[bid] = Some(bucket_map);
        }
        if let Some(per_value) = &mut self.first_discrete {
            for e in &auth_entries {
                per_value.entry(e.key.clone()).or_default().set(bid);
            }
        }
        self.trees[bid] = Some(MbTree::build(auth_entries, self.fanout));
    }

    /// First-level pruning, as in the plain layered index.
    pub fn candidate_blocks(&self, pred: &KeyPredicate) -> Bitmap {
        if let Some((hist, entries)) = &self.first_continuous {
            let (lo, hi) = pred.bounds();
            let (Some(lo_r), Some(hi_r)) = (lo.numeric_rank(), hi.numeric_rank()) else {
                let mut out = Bitmap::new();
                for (bid, e) in entries.iter().enumerate() {
                    if e.is_some() {
                        out.set(bid);
                    }
                }
                return out;
            };
            let range = hist.buckets_for_range(lo_r, hi_r);
            let mut probe = Bitmap::with_capacity(hist.bucket_count());
            probe.set_range(*range.start(), *range.end());
            let mut out = Bitmap::new();
            for (bid, e) in entries.iter().enumerate() {
                if let Some(e) = e {
                    if e.intersects(&probe) {
                        out.set(bid);
                    }
                }
            }
            return out;
        }
        if let Some(per_value) = &self.first_discrete {
            return match pred {
                KeyPredicate::Eq(v) => per_value.get(v).cloned().unwrap_or_default(),
                KeyPredicate::Range(lo, hi) => {
                    let mut out = Bitmap::new();
                    for (v, bits) in per_value {
                        if v >= lo && v <= hi {
                            out.or_assign(bits);
                        }
                    }
                    out
                }
            };
        }
        Bitmap::new()
    }

    /// The MB-tree root of block `bid` (ZERO if the block has no
    /// indexed entries).
    pub fn mb_root(&self, bid: BlockId) -> Digest {
        match self.trees.get(bid as usize) {
            Some(Some(t)) => t.root(),
            _ => Digest::ZERO,
        }
    }

    /// Phase 1 (full node): execute `pred` over blocks `mask ∩
    /// candidates` below `height`, producing the VO.
    pub fn authenticated_query(
        &self,
        pred: &KeyPredicate,
        window_mask: Option<&Bitmap>,
        height: BlockId,
    ) -> QueryVo {
        let mut cand = self.candidate_blocks(pred);
        if let Some(mask) = window_mask {
            cand = cand.and(mask);
        }
        let (lo, hi) = pred.bounds();
        let mut per_block = Vec::new();
        for bid in cand.iter_ones() {
            if bid as BlockId >= height {
                break;
            }
            let Some(Some(tree)) = self.trees.get(bid) else {
                continue;
            };
            let (results, proof) = tree.range_query(lo, hi);
            per_block.push(BlockVo {
                block: bid as BlockId,
                results,
                proof,
                mb_root: tree.root(),
            });
        }
        QueryVo { height, per_block }
    }

    /// Phase 2 (auxiliary full node): recompute the digest for the same
    /// query at the snapshot `height` the client relays.
    pub fn auxiliary_query(
        &self,
        pred: &KeyPredicate,
        window_mask: Option<&Bitmap>,
        height: BlockId,
    ) -> Digest {
        let mut cand = self.candidate_blocks(pred);
        if let Some(mask) = window_mask {
            cand = cand.and(mask);
        }
        let roots: Vec<(BlockId, Digest)> = cand
            .iter_ones()
            .take_while(|&bid| (bid as BlockId) < height)
            .map(|bid| (bid as BlockId, self.mb_root(bid as BlockId)))
            .collect();
        auxiliary_digest(&roots)
    }
}

/// Client-side verification of a [`QueryVo`] against the auxiliary
/// digest: checks every per-block proof (soundness + completeness
/// within the block) and that the block set + roots hash to `digest`
/// (no visited block omitted).
pub fn verify_query_vo(
    vo: &QueryVo,
    pred: &KeyPredicate,
    digest: &Digest,
    fanout: usize,
) -> Result<(), VerifyError> {
    let (lo, hi) = pred.bounds();
    let mut roots = Vec::with_capacity(vo.per_block.len());
    for b in &vo.per_block {
        MbTree::verify_range(&b.mb_root, lo, hi, &b.results, &b.proof, fanout)?;
        roots.push((b.block, b.mb_root));
    }
    if auxiliary_digest(&roots) != *digest {
        return Err(VerifyError::RootMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::Transaction;

    fn block(height: u64, amounts: &[i64]) -> Block {
        let txs = amounts
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut t = Transaction::new(
                    height * 100 + i as u64,
                    KeyId([1; 8]),
                    "donate",
                    vec![Value::str("d"), Value::str("p"), Value::decimal(a)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
    }

    fn ali_with_blocks(blocks: &[&[i64]]) -> AuthenticatedLayeredIndex {
        let sample: Vec<i64> = (0..1000)
            .map(|i| Value::decimal(i).numeric_rank().unwrap())
            .collect();
        let mut ali = AuthenticatedLayeredIndex::new_continuous(
            Some("donate".into()),
            ColumnRef::App(2),
            EqualDepthHistogram::from_sample(sample, 10),
        );
        for (h, amounts) in blocks.iter().enumerate() {
            ali.update(&block(h as u64, amounts));
        }
        ali
    }

    #[test]
    fn two_phase_protocol_end_to_end() {
        let ali = ali_with_blocks(&[&[10, 20, 500], &[510, 520], &[900, 950]]);
        let pred = KeyPredicate::Range(Value::decimal(490), Value::decimal(530));
        // Phase 1: full node.
        let vo = ali.authenticated_query(&pred, None, 3);
        assert_eq!(vo.result_ptrs().len(), 3); // 500, 510, 520
                                               // Phase 2: auxiliary node.
        let digest = ali.auxiliary_query(&pred, None, 3);
        // Client verifies.
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn snapshot_height_limits_blocks() {
        let ali = ali_with_blocks(&[&[100], &[100], &[100]]);
        let pred = KeyPredicate::Eq(Value::decimal(100));
        let vo = ali.authenticated_query(&pred, None, 2);
        assert_eq!(vo.per_block.len(), 2, "height 2 snapshot sees blocks 0,1");
        let digest = ali.auxiliary_query(&pred, None, 2);
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn omitted_block_detected_by_digest() {
        let ali = ali_with_blocks(&[&[100], &[100], &[100]]);
        let pred = KeyPredicate::Eq(Value::decimal(100));
        let mut vo = ali.authenticated_query(&pred, None, 3);
        vo.per_block.remove(1); // malicious full node hides a block
        let digest = ali.auxiliary_query(&pred, None, 3);
        assert!(verify_query_vo(&vo, &pred, &digest, ali.fanout()).is_err());
    }

    #[test]
    fn tampered_result_detected() {
        let ali = ali_with_blocks(&[&[100, 200]]);
        let pred = KeyPredicate::Range(Value::decimal(50), Value::decimal(250));
        let mut vo = ali.authenticated_query(&pred, None, 1);
        vo.per_block[0].results[0].tx_hash = sebdb_crypto::sha256(b"fake");
        let digest = ali.auxiliary_query(&pred, None, 1);
        assert!(verify_query_vo(&vo, &pred, &digest, ali.fanout()).is_err());
    }

    #[test]
    fn dropped_result_within_block_detected() {
        let ali = ali_with_blocks(&[&[100, 110, 120]]);
        let pred = KeyPredicate::Range(Value::decimal(90), Value::decimal(130));
        let mut vo = ali.authenticated_query(&pred, None, 1);
        vo.per_block[0].results.remove(1);
        let digest = ali.auxiliary_query(&pred, None, 1);
        assert!(verify_query_vo(&vo, &pred, &digest, ali.fanout()).is_err());
    }

    #[test]
    fn window_mask_respected_by_both_phases() {
        let ali = ali_with_blocks(&[&[100], &[100], &[100]]);
        let pred = KeyPredicate::Eq(Value::decimal(100));
        let mut mask = Bitmap::new();
        mask.set(1);
        let vo = ali.authenticated_query(&pred, Some(&mask), 3);
        assert_eq!(vo.per_block.len(), 1);
        let digest = ali.auxiliary_query(&pred, Some(&mask), 3);
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn discrete_ali_tracking_query() {
        let mut ali = AuthenticatedLayeredIndex::new_discrete(None, ColumnRef::SenId);
        ali.update(&block(0, &[1, 2]));
        ali.update(&block(1, &[3]));
        let sender = Value::Bytes(vec![1u8; 8]);
        let pred = KeyPredicate::Eq(sender);
        let vo = ali.authenticated_query(&pred, None, 2);
        assert_eq!(vo.result_ptrs().len(), 3);
        let digest = ali.auxiliary_query(&pred, None, 2);
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn vo_size_accounting_positive() {
        let ali = ali_with_blocks(&[&[100, 200, 300]]);
        let pred = KeyPredicate::Range(Value::decimal(50), Value::decimal(350));
        let vo = ali.authenticated_query(&pred, None, 1);
        assert!(vo.byte_len() > 0);
    }
}
