//! ALI — the Authenticated Layered Index (§VI).
//!
//! The layered index with the per-block second-level B⁺-tree replaced
//! by an [`MbTree`]. "Since each block maintains the second level
//! index, each block height corresponds to a snapshot": a query at
//! height `h` touches only blocks `< h`, and the auxiliary full node's
//! digest is the hash of the concatenation of the MB-tree roots of
//! exactly the blocks the query must visit.
//!
//! Paged backend (DESIGN §13): frozen blocks keep their sorted leaf
//! entries and 32-byte MB-roots in the checkpoint. Roots answer
//! auxiliary/pruning queries without touching leaf data; a frozen
//! block's tree is rebuilt from its stored leaves only when a VO must
//! be produced for it (`MbTree::build` sorts stably over the already
//! sorted list, so the rebuilt tree is byte-identical).

use crate::bitmap::Bitmap;
use crate::histogram::EqualDepthHistogram;
use crate::layered::KeyPredicate;
use crate::mbtree::{AuthEntry, MbTree, RangeProof, VerifyError, DEFAULT_FANOUT};
use crate::paged::{
    auth_entries_bytes, auth_entries_from_bytes, bid_key, bitmap_bytes, bitmap_from_bytes,
    bucket_key, column_slug, decode_value_key, family_ali, frozen_bitmap, read_fail, value_key,
    TAG_ALL_BLOCKS, TAG_BLOCK_BUCKETS, TAG_BLOCK_ENTRIES, TAG_BLOCK_ROOT, TAG_VALUE_BLOCKS,
};
use sebdb_crypto::sha256::{Digest, Sha256};
use sebdb_storage::{IndexCheckpoint, PagedIndexReader, TxPtr};
use sebdb_types::{Block, BlockId, ColumnRef, Decoder, Encoder, Value};
use std::collections::{BTreeMap, HashMap};

/// Authenticated layered index over one attribute.
#[derive(Debug)]
pub struct AuthenticatedLayeredIndex {
    /// Table filter (`None` = all tables, for system columns).
    pub table: Option<String>,
    /// Indexed column.
    pub column: ColumnRef,
    fanout: usize,
    /// Continuous first level; bitmaps are tail-relative
    /// (slot = bid − base).
    first_continuous: Option<(EqualDepthHistogram, Vec<Option<Bitmap>>)>,
    /// Discrete first level; bitmaps are tail-relative.
    first_discrete: Option<HashMap<Value, Bitmap>>,
    /// Per-block MB-trees for the tail (slot = bid − base).
    trees: Vec<Option<MbTree>>,
    frozen: Option<(PagedIndexReader, u64)>,
}

/// The verification object returned by a full node for one
/// authenticated query (phase 1 of §VI's protocol).
#[derive(Debug, Clone)]
pub struct QueryVo {
    /// Chain height when the query executed — the snapshot.
    pub height: BlockId,
    /// Blocks the query visited (ascending), with their per-block
    /// results and range proofs.
    pub per_block: Vec<BlockVo>,
}

/// One visited block's contribution to the VO.
#[derive(Debug, Clone)]
pub struct BlockVo {
    /// Visited block.
    pub block: BlockId,
    /// Matching entries in this block.
    pub results: Vec<AuthEntry>,
    /// Proof tying the results to the block's MB-tree root.
    pub proof: RangeProof,
    /// The MB-tree root the proof reconstructs to (also covered by the
    /// auxiliary digest).
    pub mb_root: Digest,
}

impl QueryVo {
    /// Total VO size in bytes (Fig. 17's metric).
    pub fn byte_len(&self) -> usize {
        8 + self
            .per_block
            .iter()
            .map(|b| {
                8 + 32
                    + b.proof.byte_len()
                    + b.results.iter().map(AuthEntry::byte_len).sum::<usize>()
            })
            .sum::<usize>()
    }

    /// All matching transaction pointers across blocks.
    pub fn result_ptrs(&self) -> Vec<TxPtr> {
        self.per_block
            .iter()
            .flat_map(|b| b.results.iter().map(|e| e.ptr))
            .collect()
    }
}

/// Hashes the MB-roots of the visited blocks into the auxiliary
/// digest ("the auxiliary full node … generates a digest according to
/// the roots of MB-trees the query visited").
pub fn auxiliary_digest(roots: &[(BlockId, Digest)]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x04]);
    for (bid, root) in roots {
        h.update(&bid.to_le_bytes());
        h.update(root.as_bytes());
    }
    h.finalize()
}

/// Checkpoint meta: fanout + kind tag (+ histogram bounds when
/// continuous).
fn encode_meta(fanout: usize, continuous: Option<&EqualDepthHistogram>) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(fanout as u32);
    match continuous {
        Some(hist) => {
            enc.put_u8(0);
            enc.put_u32(hist.bounds().len() as u32);
            for b in hist.bounds() {
                enc.put_i64(*b);
            }
        }
        None => enc.put_u8(1),
    }
    enc.finish()
}

/// Rebuilds `(fanout, continuous histogram)` out of checkpoint meta.
fn decode_meta(meta: &[u8]) -> (usize, Option<EqualDepthHistogram>) {
    let mut dec = Decoder::new(meta);
    let parse = |dec: &mut Decoder<'_>| -> Result<
        (usize, Option<EqualDepthHistogram>),
        sebdb_types::TypeError,
    > {
        let fanout = dec.get_u32("ali meta fanout")? as usize;
        match dec.get_u8("ali meta kind")? {
            0 => {
                let n = dec.get_u32("ali meta bounds")?;
                let mut bounds = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    bounds.push(dec.get_i64("ali meta bound")?);
                }
                Ok((fanout, Some(EqualDepthHistogram::from_bounds(bounds))))
            }
            _ => Ok((fanout, None)),
        }
    };
    match parse(&mut dec) {
        Ok(v) => v,
        Err(e) => panic!("ali checkpoint meta failed to decode: {e}"),
    }
}

impl AuthenticatedLayeredIndex {
    /// Continuous-attribute ALI.
    pub fn new_continuous(
        table: Option<String>,
        column: ColumnRef,
        hist: EqualDepthHistogram,
    ) -> Self {
        AuthenticatedLayeredIndex {
            table,
            column,
            fanout: DEFAULT_FANOUT,
            first_continuous: Some((hist, Vec::new())),
            first_discrete: None,
            trees: Vec::new(),
            frozen: None,
        }
    }

    /// Discrete-attribute ALI.
    pub fn new_discrete(table: Option<String>, column: ColumnRef) -> Self {
        AuthenticatedLayeredIndex {
            table,
            column,
            fanout: DEFAULT_FANOUT,
            first_continuous: None,
            first_discrete: Some(HashMap::new()),
            trees: Vec::new(),
            frozen: None,
        }
    }

    /// Rebuilds an ALI from a frozen checkpoint; fanout and kind come
    /// from the checkpoint meta, the tail starts empty.
    pub fn from_frozen(table: Option<String>, column: ColumnRef, reader: PagedIndexReader) -> Self {
        let (fanout, hist) = decode_meta(reader.meta());
        let base = reader.height();
        AuthenticatedLayeredIndex {
            table,
            column,
            fanout,
            first_discrete: hist.is_none().then(HashMap::new),
            first_continuous: hist.map(|h| (h, Vec::new())),
            trees: Vec::new(),
            frozen: Some((reader, base)),
        }
    }

    /// Freezes the state covered so far behind a newly written
    /// checkpoint; the reader must cover exactly [`Self::covered`].
    pub fn adopt_frozen(&mut self, reader: PagedIndexReader) {
        assert_eq!(
            reader.height(),
            self.covered(),
            "adopting a checkpoint that does not match the indexed height"
        );
        let base = reader.height();
        if let Some((_, entries)) = &mut self.first_continuous {
            entries.clear();
        }
        if let Some(per_value) = &mut self.first_discrete {
            per_value.clear();
        }
        self.trees.clear();
        self.frozen = Some((reader, base));
    }

    /// First tail block: blocks below this are frozen.
    fn base(&self) -> u64 {
        self.frozen.as_ref().map(|(_, b)| *b).unwrap_or(0)
    }

    /// Chain height this index has state for (`base + tail length`).
    pub fn covered(&self) -> u64 {
        self.base() + self.trees.len() as u64
    }

    /// The family name of this index's checkpoint file.
    pub fn family(&self) -> Vec<u8> {
        family_ali(self.table.as_deref(), &column_slug(&self.column))
    }

    /// MB-tree fanout (needed by clients to verify).
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Indexes a newly chained block.
    pub fn update(&mut self, block: &Block) {
        let rows: Vec<u32> = block
            .transactions
            .iter()
            .enumerate()
            .filter(|(_, tx)| match &self.table {
                Some(t) => tx.tname.eq_ignore_ascii_case(t),
                None => true,
            })
            .map(|(i, _)| i as u32)
            .collect();
        self.update_rows(block, &rows);
    }

    /// Per-relation maintenance entry point: indexes a newly chained
    /// block from a pre-partitioned tuple set (see
    /// [`crate::LayeredIndex::update_rows`]). `rows` are the ascending
    /// positions of the block's transactions belonging to this index's
    /// relation; the caller guarantees they are exactly the covered
    /// positions, making this equivalent to [`Self::update`].
    pub fn update_rows(&mut self, block: &Block, rows: &[u32]) {
        let bid = block.header.height;
        let base = self.base();
        if bid < base {
            return;
        }
        let slot = (bid - base) as usize;
        if self.trees.len() <= slot {
            self.trees.resize_with(slot + 1, || None);
            if let Some((_, entries)) = &mut self.first_continuous {
                entries.resize_with(slot + 1, || None);
            }
        }
        let mut auth_entries: Vec<AuthEntry> = Vec::new();
        for &i in rows {
            let Some(tx) = block.transactions.get(i as usize) else {
                continue;
            };
            let Some(v) = tx.get(self.column) else {
                continue;
            };
            if v == Value::Null {
                continue;
            }
            auth_entries.push(AuthEntry {
                key: v,
                tx_hash: tx.hash(),
                ptr: TxPtr {
                    block: bid as BlockId,
                    index: i,
                },
            });
        }
        if auth_entries.is_empty() {
            return;
        }
        if let Some((hist, entries)) = &mut self.first_continuous {
            let mut bucket_map = Bitmap::with_capacity(hist.bucket_count());
            for e in &auth_entries {
                if let Some(rank) = e.key.numeric_rank() {
                    bucket_map.set(hist.bucket_of(rank));
                }
            }
            entries[slot] = Some(bucket_map);
        }
        if let Some(per_value) = &mut self.first_discrete {
            for e in &auth_entries {
                per_value.entry(e.key.clone()).or_default().set(slot);
            }
        }
        self.trees[slot] = Some(MbTree::build(auth_entries, self.fanout));
    }

    /// Blocks with any indexed entries (frozen ∪ tail), absolute.
    fn all_blocks(&self) -> Bitmap {
        let mut out = match &self.frozen {
            Some((r, _)) => frozen_bitmap(r, "ali all-blocks bitmap", &[TAG_ALL_BLOCKS]),
            None => Bitmap::new(),
        };
        let base = self.base() as usize;
        for (slot, t) in self.trees.iter().enumerate() {
            if t.is_some() {
                out.set(base + slot);
            }
        }
        out
    }

    /// First-level pruning, as in the plain layered index.
    pub fn candidate_blocks(&self, pred: &KeyPredicate) -> Bitmap {
        let base = self.base() as usize;
        if let Some((hist, entries)) = &self.first_continuous {
            let (lo, hi) = pred.bounds();
            let (Some(lo_r), Some(hi_r)) = (lo.numeric_rank(), hi.numeric_rank()) else {
                // Non-numeric probe on a continuous index: no pruning.
                return self.all_blocks();
            };
            let range = hist.buckets_for_range(lo_r, hi_r);
            let mut probe = Bitmap::with_capacity(hist.bucket_count());
            probe.set_range(*range.start(), *range.end());
            let mut out = Bitmap::new();
            if let Some((r, _)) = &self.frozen {
                for bucket in range {
                    out.or_assign(&frozen_bitmap(r, "ali bucket bitmap", &bucket_key(bucket)));
                }
            }
            for (slot, e) in entries.iter().enumerate() {
                if let Some(e) = e {
                    if e.intersects(&probe) {
                        out.set(base + slot);
                    }
                }
            }
            return out;
        }
        if let Some(per_value) = &self.first_discrete {
            return match pred {
                KeyPredicate::Eq(v) => {
                    let mut out = match &self.frozen {
                        Some((r, _)) => frozen_bitmap(r, "ali value bitmap", &value_key(v)),
                        None => Bitmap::new(),
                    };
                    if let Some(bits) = per_value.get(v) {
                        out.or_assign_shifted(bits, base);
                    }
                    out
                }
                KeyPredicate::Range(lo, hi) => {
                    let mut out = Bitmap::new();
                    if let Some((r, _)) = &self.frozen {
                        read_fail(
                            "ali value sweep",
                            r.scan_prefix(&[TAG_VALUE_BLOCKS], &mut |k, bytes| {
                                let v = decode_value_key(k);
                                if &v >= lo && &v <= hi {
                                    out.or_assign(&bitmap_from_bytes(bytes));
                                }
                            }),
                        );
                    }
                    for (v, bits) in per_value {
                        if v >= lo && v <= hi {
                            out.or_assign_shifted(bits, base);
                        }
                    }
                    out
                }
            };
        }
        Bitmap::new()
    }

    /// The MB-tree root of block `bid` (ZERO if the block has no
    /// indexed entries). Frozen blocks answer from their stored root
    /// without touching leaf data.
    pub fn mb_root(&self, bid: BlockId) -> Digest {
        let base = self.base();
        if bid < base {
            let Some((r, _)) = &self.frozen else {
                return Digest::ZERO;
            };
            return match read_fail("ali mb root", r.get(&bid_key(TAG_BLOCK_ROOT, bid))) {
                Some(bytes) => {
                    let mut d = [0u8; 32];
                    d.copy_from_slice(&bytes[..32]);
                    Digest(d)
                }
                None => Digest::ZERO,
            };
        }
        match self.trees.get((bid - base) as usize) {
            Some(Some(t)) => t.root(),
            _ => Digest::ZERO,
        }
    }

    /// Rebuilds one frozen block's MB-tree from its stored leaf level.
    fn frozen_tree(&self, bid: BlockId) -> Option<MbTree> {
        let (r, _) = self.frozen.as_ref()?;
        read_fail("ali block entries", r.get(&bid_key(TAG_BLOCK_ENTRIES, bid)))
            .map(|bytes| MbTree::build(auth_entries_from_bytes(&bytes), self.fanout))
    }

    /// Phase 1 (full node): execute `pred` over blocks `mask ∩
    /// candidates` below `height`, producing the VO.
    pub fn authenticated_query(
        &self,
        pred: &KeyPredicate,
        window_mask: Option<&Bitmap>,
        height: BlockId,
    ) -> QueryVo {
        let mut cand = self.candidate_blocks(pred);
        if let Some(mask) = window_mask {
            cand = cand.and(mask);
        }
        let (lo, hi) = pred.bounds();
        let base = self.base();
        let mut per_block = Vec::new();
        for bid in cand.iter_ones() {
            if bid as BlockId >= height {
                break;
            }
            let rebuilt;
            let tree = if (bid as BlockId) < base {
                match self.frozen_tree(bid as BlockId) {
                    Some(t) => {
                        rebuilt = t;
                        &rebuilt
                    }
                    None => continue,
                }
            } else {
                match self.trees.get(bid - base as usize) {
                    Some(Some(t)) => t,
                    _ => continue,
                }
            };
            let (results, proof) = tree.range_query(lo, hi);
            per_block.push(BlockVo {
                block: bid as BlockId,
                results,
                proof,
                mb_root: tree.root(),
            });
        }
        QueryVo { height, per_block }
    }

    /// Phase 2 (auxiliary full node): recompute the digest for the same
    /// query at the snapshot `height` the client relays.
    pub fn auxiliary_query(
        &self,
        pred: &KeyPredicate,
        window_mask: Option<&Bitmap>,
        height: BlockId,
    ) -> Digest {
        let mut cand = self.candidate_blocks(pred);
        if let Some(mask) = window_mask {
            cand = cand.and(mask);
        }
        let roots: Vec<(BlockId, Digest)> = cand
            .iter_ones()
            .take_while(|&bid| (bid as BlockId) < height)
            .map(|bid| (bid as BlockId, self.mb_root(bid as BlockId)))
            .collect();
        auxiliary_digest(&roots)
    }

    /// Resident bytes (tail structures + frozen fence/meta top level).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        if let Some((hist, entries)) = &self.first_continuous {
            bytes += hist.bounds().len() * 8;
            for e in entries.iter().flatten() {
                bytes += e.byte_len();
            }
        }
        if let Some(per_value) = &self.first_discrete {
            for (v, bits) in per_value {
                bytes += crate::paged::value_resident_bytes(v) + bits.byte_len();
            }
        }
        for tree in self.trees.iter().flatten() {
            for e in tree.entries() {
                bytes += crate::paged::value_resident_bytes(&e.key) + 32 + 16;
            }
            // Interior digest levels: ≈ n/(fanout-1) digests.
            bytes += tree.len() * 32 / self.fanout.saturating_sub(1).max(1);
        }
        if let Some((r, _)) = &self.frozen {
            bytes += r.memory_bytes();
        }
        bytes
    }

    /// Freezes the complete state (frozen ∪ tail) into one checkpoint
    /// covering `[0, covered)`.
    pub fn checkpoint(&self) -> IndexCheckpoint {
        let mut map: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        if let Some((r, _)) = &self.frozen {
            read_fail(
                "ali checkpoint sweep",
                r.scan_range(&[], None, &mut |k, v| {
                    map.insert(k.to_vec(), v.to_vec());
                }),
            );
        }
        let base = self.base();
        if let Some((hist, entries)) = &self.first_continuous {
            let mut bucket_blocks: Vec<Bitmap> = vec![Bitmap::new(); hist.bucket_count()];
            for (slot, e) in entries.iter().enumerate() {
                let Some(e) = e else { continue };
                map.insert(
                    bid_key(TAG_BLOCK_BUCKETS, base + slot as u64),
                    bitmap_bytes(e),
                );
                for bucket in e.iter_ones() {
                    bucket_blocks[bucket].set(base as usize + slot);
                }
            }
            for (bucket, tail_bits) in bucket_blocks.iter().enumerate() {
                if tail_bits.is_empty() {
                    continue;
                }
                let key = bucket_key(bucket);
                let mut merged = map
                    .get(&key)
                    .map(|b| bitmap_from_bytes(b))
                    .unwrap_or_default();
                merged.or_assign(tail_bits);
                map.insert(key, bitmap_bytes(&merged));
            }
        }
        if let Some(per_value) = &self.first_discrete {
            for (v, tail_bits) in per_value {
                let key = value_key(v);
                let mut merged = map
                    .get(&key)
                    .map(|b| bitmap_from_bytes(b))
                    .unwrap_or_default();
                merged.or_assign_shifted(tail_bits, base as usize);
                map.insert(key, bitmap_bytes(&merged));
            }
        }
        for (slot, tree) in self.trees.iter().enumerate() {
            let Some(tree) = tree else { continue };
            let bid = base + slot as u64;
            map.insert(
                bid_key(TAG_BLOCK_ENTRIES, bid),
                auth_entries_bytes(tree.entries()),
            );
            map.insert(
                bid_key(TAG_BLOCK_ROOT, bid),
                tree.root().as_bytes().to_vec(),
            );
        }
        map.insert(vec![TAG_ALL_BLOCKS], bitmap_bytes(&self.all_blocks()));
        IndexCheckpoint {
            family: self.family(),
            height: self.covered(),
            meta: encode_meta(self.fanout, self.first_continuous.as_ref().map(|(h, _)| h)),
            entries: map.into_iter().collect(),
        }
    }
}

/// Client-side verification of a [`QueryVo`] against the auxiliary
/// digest: checks every per-block proof (soundness + completeness
/// within the block) and that the block set + roots hash to `digest`
/// (no visited block omitted).
pub fn verify_query_vo(
    vo: &QueryVo,
    pred: &KeyPredicate,
    digest: &Digest,
    fanout: usize,
) -> Result<(), VerifyError> {
    let (lo, hi) = pred.bounds();
    let mut roots = Vec::with_capacity(vo.per_block.len());
    for b in &vo.per_block {
        MbTree::verify_range(&b.mb_root, lo, hi, &b.results, &b.proof, fanout)?;
        roots.push((b.block, b.mb_root));
    }
    if auxiliary_digest(&roots) != *digest {
        return Err(VerifyError::RootMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::Transaction;

    fn block(height: u64, amounts: &[i64]) -> Block {
        let txs = amounts
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut t = Transaction::new(
                    height * 100 + i as u64,
                    KeyId([1; 8]),
                    "donate",
                    vec![Value::str("d"), Value::str("p"), Value::decimal(a)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
    }

    fn ali_with_blocks(blocks: &[&[i64]]) -> AuthenticatedLayeredIndex {
        let sample: Vec<i64> = (0..1000)
            .map(|i| Value::decimal(i).numeric_rank().unwrap())
            .collect();
        let mut ali = AuthenticatedLayeredIndex::new_continuous(
            Some("donate".into()),
            ColumnRef::App(2),
            EqualDepthHistogram::from_sample(sample, 10),
        );
        for (h, amounts) in blocks.iter().enumerate() {
            ali.update(&block(h as u64, amounts));
        }
        ali
    }

    #[test]
    fn two_phase_protocol_end_to_end() {
        let ali = ali_with_blocks(&[&[10, 20, 500], &[510, 520], &[900, 950]]);
        let pred = KeyPredicate::Range(Value::decimal(490), Value::decimal(530));
        // Phase 1: full node.
        let vo = ali.authenticated_query(&pred, None, 3);
        assert_eq!(vo.result_ptrs().len(), 3); // 500, 510, 520
                                               // Phase 2: auxiliary node.
        let digest = ali.auxiliary_query(&pred, None, 3);
        // Client verifies.
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn snapshot_height_limits_blocks() {
        let ali = ali_with_blocks(&[&[100], &[100], &[100]]);
        let pred = KeyPredicate::Eq(Value::decimal(100));
        let vo = ali.authenticated_query(&pred, None, 2);
        assert_eq!(vo.per_block.len(), 2, "height 2 snapshot sees blocks 0,1");
        let digest = ali.auxiliary_query(&pred, None, 2);
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn omitted_block_detected_by_digest() {
        let ali = ali_with_blocks(&[&[100], &[100], &[100]]);
        let pred = KeyPredicate::Eq(Value::decimal(100));
        let mut vo = ali.authenticated_query(&pred, None, 3);
        vo.per_block.remove(1); // malicious full node hides a block
        let digest = ali.auxiliary_query(&pred, None, 3);
        assert!(verify_query_vo(&vo, &pred, &digest, ali.fanout()).is_err());
    }

    #[test]
    fn tampered_result_detected() {
        let ali = ali_with_blocks(&[&[100, 200]]);
        let pred = KeyPredicate::Range(Value::decimal(50), Value::decimal(250));
        let mut vo = ali.authenticated_query(&pred, None, 1);
        vo.per_block[0].results[0].tx_hash = sebdb_crypto::sha256(b"fake");
        let digest = ali.auxiliary_query(&pred, None, 1);
        assert!(verify_query_vo(&vo, &pred, &digest, ali.fanout()).is_err());
    }

    #[test]
    fn dropped_result_within_block_detected() {
        let ali = ali_with_blocks(&[&[100, 110, 120]]);
        let pred = KeyPredicate::Range(Value::decimal(90), Value::decimal(130));
        let mut vo = ali.authenticated_query(&pred, None, 1);
        vo.per_block[0].results.remove(1);
        let digest = ali.auxiliary_query(&pred, None, 1);
        assert!(verify_query_vo(&vo, &pred, &digest, ali.fanout()).is_err());
    }

    #[test]
    fn window_mask_respected_by_both_phases() {
        let ali = ali_with_blocks(&[&[100], &[100], &[100]]);
        let pred = KeyPredicate::Eq(Value::decimal(100));
        let mut mask = Bitmap::new();
        mask.set(1);
        let vo = ali.authenticated_query(&pred, Some(&mask), 3);
        assert_eq!(vo.per_block.len(), 1);
        let digest = ali.auxiliary_query(&pred, Some(&mask), 3);
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn discrete_ali_tracking_query() {
        let mut ali = AuthenticatedLayeredIndex::new_discrete(None, ColumnRef::SenId);
        ali.update(&block(0, &[1, 2]));
        ali.update(&block(1, &[3]));
        let sender = Value::Bytes(vec![1u8; 8]);
        let pred = KeyPredicate::Eq(sender);
        let vo = ali.authenticated_query(&pred, None, 2);
        assert_eq!(vo.result_ptrs().len(), 3);
        let digest = ali.auxiliary_query(&pred, None, 2);
        verify_query_vo(&vo, &pred, &digest, ali.fanout()).unwrap();
    }

    #[test]
    fn vo_size_accounting_positive() {
        let ali = ali_with_blocks(&[&[100, 200, 300]]);
        let pred = KeyPredicate::Range(Value::decimal(50), Value::decimal(350));
        let vo = ali.authenticated_query(&pred, None, 1);
        assert!(vo.byte_len() > 0);
    }

    #[test]
    fn checkpoint_captures_roots_and_entries() {
        let ali = ali_with_blocks(&[&[100, 200], &[300]]);
        let cp = ali.checkpoint();
        assert_eq!(cp.height, 2);
        assert_eq!(cp.family, family_ali(Some("donate"), "app2"));
        assert!(cp.entries.windows(2).all(|w| w[0].0 < w[1].0));
        // Per block: buckets + entries + root; plus all-blocks + bucket
        // inversions.
        assert!(cp.entries.len() >= 7);
        // Leaf lists round-trip through the codec.
        let (_, bytes) = cp
            .entries
            .iter()
            .find(|(k, _)| k[0] == TAG_BLOCK_ENTRIES)
            .unwrap();
        let entries = auth_entries_from_bytes(bytes);
        assert_eq!(MbTree::build(entries, ali.fanout()).root(), ali.mb_root(0));
    }
}
