//! An in-memory B⁺-tree.
//!
//! Used twice in SEBDB (§IV-B): as the *block-level* index over
//! `(bid, tid, Ts)` and as the per-block *second level* of the layered
//! index. Supports point lookups, range scans over linked leaves,
//! ordered insertion, and O(n) bulk loading (blocks are immutable, so
//! their per-block trees are built once with full leaves — "leaf nodes
//! are kept full").

/// Default maximum number of keys per node.
pub const DEFAULT_ORDER: usize = 64;

/// A B⁺-tree mapping `K` to `V`. Duplicate keys are allowed; a range
/// scan yields them all in insertion order.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    order: usize,
    root: Node<K, V>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
    },
    Internal {
        /// `separators[i]` is the smallest key in `children[i + 1]`.
        separators: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K: Ord + Clone, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BPlusTree<K, V> {
    /// Empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Empty tree with a custom order (max keys per node, ≥ 3).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+-tree order must be at least 3");
        BPlusTree {
            order,
            root: Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bulk loads from entries already sorted by key (panics in debug
    /// builds if unsorted). Leaves are packed full — the append-only
    /// pattern of §IV-B.
    pub fn bulk_load(order: usize, entries: Vec<(K, V)>) -> Self {
        assert!(order >= 3);
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        let len = entries.len();
        if len == 0 {
            return Self::with_order(order);
        }
        // Build full leaves.
        let mut nodes: Vec<Node<K, V>> = Vec::new();
        let mut firsts: Vec<K> = Vec::new();
        let mut it = entries.into_iter().peekable();
        while it.peek().is_some() {
            let mut keys = Vec::with_capacity(order);
            let mut values = Vec::with_capacity(order);
            for _ in 0..order {
                match it.next() {
                    Some((k, v)) => {
                        keys.push(k);
                        values.push(v);
                    }
                    None => break,
                }
            }
            firsts.push(keys[0].clone());
            nodes.push(Node::Leaf { keys, values });
        }
        // Build internal levels until a single root remains.
        while nodes.len() > 1 {
            let mut parents: Vec<Node<K, V>> = Vec::new();
            let mut parent_firsts: Vec<K> = Vec::new();
            let fanout = order + 1;
            while !nodes.is_empty() {
                let take = fanout.min(nodes.len());
                let children: Vec<Node<K, V>> = nodes.drain(..take).collect();
                let mut chunk_firsts: Vec<K> = firsts.drain(..take).collect();
                parent_firsts.push(chunk_firsts[0].clone());
                let seps: Vec<K> = chunk_firsts.drain(1..).collect();
                parents.push(Node::Internal {
                    separators: seps,
                    children,
                });
            }
            nodes = parents;
            firsts = parent_firsts;
        }
        BPlusTree {
            order,
            root: nodes.pop().unwrap(),
            len,
        }
    }

    /// Inserts an entry (duplicates allowed; a duplicate goes after
    /// existing equal keys).
    pub fn insert(&mut self, key: K, value: V) {
        self.len += 1;
        if let Some((sep, right)) = insert_rec(&mut self.root, key, value, self.order) {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    separators: vec![sep],
                    children: Vec::new(),
                },
            );
            if let Node::Internal { children, .. } = &mut self.root {
                children.push(old_root);
                children.push(right);
            }
        }
    }

    /// All values with key exactly `key`.
    pub fn get_all(&self, key: &K) -> Vec<&V> {
        self.range(Some(key), Some(key)).map(|(_, v)| v).collect()
    }

    /// First value with key exactly `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.range(Some(key), Some(key)).next().map(|(_, v)| v)
    }

    /// The entry with the greatest key ≤ `key` (predecessor search; the
    /// block-level index uses this to find "the block containing
    /// timestamp t").
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        let mut node = &self.root;
        let mut best: Option<(&K, &V)> = None;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    // partition_point gives #keys <= key
                    let n = keys.partition_point(|k| k <= key);
                    if n > 0 {
                        best = Some((&keys[n - 1], &values[n - 1]));
                    }
                    return best;
                }
                Node::Internal {
                    separators,
                    children,
                } => {
                    let idx = separators.partition_point(|s| s <= key);
                    // Entries < separators[idx] live in children[..=idx];
                    // descend into the rightmost candidate.
                    node = &children[idx];
                    if idx > 0 {
                        // A floor certainly exists in an earlier subtree;
                        // remember the rightmost entry of children[idx-1]
                        // in case the descent finds nothing.
                        if let Some(kv) = rightmost(&children[idx - 1]) {
                            best = Some(kv);
                        }
                    }
                }
            }
        }
    }

    /// Like [`BPlusTree::floor`], but compares through a *monotone*
    /// projection `f` of the key. The block-level index key
    /// `(bid, tid, Ts)` has all three components increasing together
    /// (§IV-B), so one tree answers floor searches by any component.
    pub fn floor_by<T: Ord>(&self, probe: &T, f: impl Fn(&K) -> T) -> Option<(&K, &V)> {
        let mut node = &self.root;
        let mut best: Option<(&K, &V)> = None;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    let n = keys.partition_point(|k| f(k) <= *probe);
                    if n > 0 {
                        best = Some((&keys[n - 1], &values[n - 1]));
                    }
                    return best;
                }
                Node::Internal {
                    separators,
                    children,
                } => {
                    let idx = separators.partition_point(|s| f(s) <= *probe);
                    node = &children[idx];
                    if idx > 0 {
                        if let Some(kv) = rightmost(&children[idx - 1]) {
                            best = Some(kv);
                        }
                    }
                }
            }
        }
    }

    /// Iterates entries with `lo ≤ key ≤ hi` in key order. `None`
    /// bounds are open. Bounds are cloned into the iterator.
    pub fn range(&self, lo: Option<&K>, hi: Option<&K>) -> RangeIter<'_, K, V> {
        RangeIter {
            stack: vec![(&self.root, 0usize)],
            hi: hi.cloned(),
            lo: lo.cloned(),
        }
        .init()
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(None, None)
    }

    /// Tree height (leaf = 1); exposed for tests and cost accounting.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }
}

fn rightmost<K, V>(node: &Node<K, V>) -> Option<(&K, &V)> {
    match node {
        Node::Leaf { keys, values } => keys.last().map(|k| (k, values.last().unwrap())),
        Node::Internal { children, .. } => rightmost(children.last().unwrap()),
    }
}

/// On overflow returns `(separator, right_sibling)` to push up.
fn insert_rec<K: Ord + Clone, V: Clone>(
    node: &mut Node<K, V>,
    key: K,
    value: V,
    order: usize,
) -> Option<(K, Node<K, V>)> {
    match node {
        Node::Leaf { keys, values } => {
            let pos = keys.partition_point(|k| k <= &key);
            keys.insert(pos, key);
            values.insert(pos, value);
            if keys.len() <= order {
                return None;
            }
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid);
            let right_values = values.split_off(mid);
            let sep = right_keys[0].clone();
            Some((
                sep,
                Node::Leaf {
                    keys: right_keys,
                    values: right_values,
                },
            ))
        }
        Node::Internal {
            separators,
            children,
        } => {
            let idx = separators.partition_point(|s| s <= &key);
            let split = insert_rec(&mut children[idx], key, value, order)?;
            separators.insert(idx, split.0);
            children.insert(idx + 1, split.1);
            if separators.len() <= order {
                return None;
            }
            let mid = separators.len() / 2;
            let sep = separators[mid].clone();
            let right_seps = separators.split_off(mid + 1);
            separators.pop(); // the promoted separator
            let right_children = children.split_off(mid + 1);
            Some((
                sep,
                Node::Internal {
                    separators: right_seps,
                    children: right_children,
                },
            ))
        }
    }
}

/// In-order iterator over a key range.
pub struct RangeIter<'a, K, V> {
    stack: Vec<(&'a Node<K, V>, usize)>,
    lo: Option<K>,
    hi: Option<K>,
}

impl<'a, K: Ord + Clone, V> RangeIter<'a, K, V> {
    fn init(mut self) -> Self {
        // Position the stack at the first entry >= lo.
        let mut new_stack = Vec::new();
        let mut node_idx = self.stack.pop();
        while let Some((node, _)) = node_idx {
            match node {
                Node::Leaf { keys, .. } => {
                    let start = match &self.lo {
                        Some(lo) => keys.partition_point(|k| k < lo),
                        None => 0,
                    };
                    new_stack.push((node, start));
                    break;
                }
                Node::Internal {
                    separators,
                    children,
                } => {
                    // `<` (not `<=`): duplicates equal to a separator may
                    // live at the tail of the left child.
                    let idx = match &self.lo {
                        Some(lo) => separators.partition_point(|s| s < lo),
                        None => 0,
                    };
                    new_stack.push((node, idx));
                    node_idx = Some((&children[idx], 0));
                }
            }
        }
        self.stack = new_stack;
        self
    }

    fn advance(&mut self) {
        // Pop exhausted frames and descend into the next subtree.
        while let Some((node, idx)) = self.stack.pop() {
            match node {
                Node::Leaf { .. } => continue,
                Node::Internal {
                    separators,
                    children,
                } => {
                    let next = idx + 1;
                    if next < children.len() {
                        self.stack.push((node, next));
                        // Descend to the leftmost leaf of children[next].
                        let mut n = &children[next];
                        loop {
                            match n {
                                Node::Leaf { .. } => {
                                    self.stack.push((n, 0));
                                    return;
                                }
                                Node::Internal { children, .. } => {
                                    self.stack.push((n, 0));
                                    n = &children[0];
                                }
                            }
                        }
                    }
                    let _ = separators;
                }
            }
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = self.stack.last_mut()?;
            if let Node::Leaf { keys, values } = node {
                if *idx < keys.len() {
                    let k = &keys[*idx];
                    if let Some(hi) = &self.hi {
                        if k > hi {
                            return None;
                        }
                    }
                    let v = &values[*idx];
                    *idx += 1;
                    return Some((k, v));
                }
                // Leaf exhausted: climb and move right.
                self.advance();
                if self.stack.is_empty() {
                    return None;
                }
            } else {
                // Shouldn't happen: stack top is always a leaf between calls.
                self.advance();
                if self.stack.is_empty() {
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_and_get() {
        let mut t = BPlusTree::with_order(4);
        for i in [5, 1, 9, 3, 7, 2, 8, 6, 4, 0] {
            t.insert(i, i * 10);
        }
        assert_eq!(t.len(), 10);
        for i in 0..10 {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        assert_eq!(t.get(&42), None);
    }

    #[test]
    fn range_scan() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100 {
            t.insert(i, i);
        }
        let got: Vec<i32> = t.range(Some(&10), Some(&20)).map(|(k, _)| *k).collect();
        assert_eq!(got, (10..=20).collect::<Vec<_>>());
        let all: Vec<i32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        let none: Vec<i32> = t.range(Some(&200), Some(&300)).map(|(k, _)| *k).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BPlusTree::with_order(3);
        for i in 0..20 {
            t.insert(7, i);
        }
        t.insert(6, 100);
        t.insert(8, 200);
        assert_eq!(t.get_all(&7).len(), 20);
        assert_eq!(t.len(), 22);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let entries: Vec<(i32, i32)> = (0..500).map(|i| (i, i * 2)).collect();
        let bulk = BPlusTree::bulk_load(8, entries.clone());
        let mut ins = BPlusTree::with_order(8);
        for (k, v) in entries {
            ins.insert(k, v);
        }
        let a: Vec<(i32, i32)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(i32, i32)> = ins.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
        assert_eq!(bulk.len(), 500);
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let t: BPlusTree<i32, i32> = BPlusTree::bulk_load(4, vec![]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_load(4, vec![(1, 10)]);
        assert_eq!(t.get(&1), Some(&10));
    }

    #[test]
    fn floor_lookup() {
        let mut t = BPlusTree::with_order(4);
        for i in (0..100).step_by(10) {
            t.insert(i, i);
        }
        assert_eq!(t.floor(&25), Some((&20, &20)));
        assert_eq!(t.floor(&20), Some((&20, &20)));
        assert_eq!(t.floor(&0), Some((&0, &0)));
        assert_eq!(t.floor(&-1), None);
        assert_eq!(t.floor(&1000), Some((&90, &90)));
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BPlusTree::with_order(4);
        assert_eq!(t.height(), 1);
        for i in 0..1000 {
            t.insert(i, i);
        }
        assert!(t.height() >= 4, "height {}", t.height());
        assert!(t.height() <= 8, "height {}", t.height());
    }

    proptest! {
        #[test]
        fn matches_btreemap_semantics(ops in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..400)) {
            let mut tree = BPlusTree::with_order(5);
            let mut model: Vec<(u16, u16)> = Vec::new();
            for (k, v) in ops {
                tree.insert(k, v);
                model.push((k, v));
            }
            model.sort_by_key(|(k, _)| *k);
            let got: Vec<u16> = tree.iter().map(|(k, _)| *k).collect();
            let want: Vec<u16> = model.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn range_matches_filter(keys in proptest::collection::vec(any::<u16>(), 0..300), lo in any::<u16>(), hi in any::<u16>()) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let mut tree = BPlusTree::with_order(4);
            for k in &keys {
                tree.insert(*k, ());
            }
            let mut want: Vec<u16> = keys.iter().copied().filter(|k| *k >= lo && *k <= hi).collect();
            want.sort();
            let got: Vec<u16> = tree.range(Some(&lo), Some(&hi)).map(|(k, _)| *k).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn bulk_load_various_orders(n in 0usize..600, order in 3usize..32) {
            let entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            let t = BPlusTree::bulk_load(order, entries);
            prop_assert_eq!(t.len(), n);
            let got: Vec<usize> = t.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
        }
    }
}
