//! Round-based push–pull gossip (§III-B: "We choose Gossip as basic
//! network facility … for block propagation and data recovery").
//!
//! The cluster is simulated deterministically: [`GossipCluster::step`]
//! runs one synchronous round in which every node pushes the ids of its
//! items to `fanout` random peers and answers pulls for items a peer is
//! missing. Dissemination completes in O(log n) rounds with high
//! probability — asserted in the tests.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

use crate::sim::NodeId;

/// An item being disseminated (id → payload).
pub type ItemId = u64;

#[derive(Debug, Default)]
struct GossipState<T> {
    items: HashMap<ItemId, T>,
    /// Nodes this node believes are alive (for peer selection).
    down: bool,
}

/// A deterministic, round-stepped gossip cluster.
pub struct GossipCluster<T> {
    nodes: Vec<GossipState<T>>,
    fanout: usize,
    rng: StdRng,
    rounds: u64,
    messages: u64,
}

impl<T: Clone> GossipCluster<T> {
    /// `n` nodes gossiping to `fanout` peers per round.
    pub fn new(n: usize, fanout: usize, seed: u64) -> Self {
        assert!(n >= 1 && fanout >= 1);
        GossipCluster {
            nodes: (0..n)
                .map(|_| GossipState {
                    items: HashMap::new(),
                    down: false,
                })
                .collect(),
            fanout,
            rng: StdRng::seed_from_u64(seed),
            rounds: 0,
            messages: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Injects an item at `node` (e.g. a freshly packaged block).
    pub fn seed_item(&mut self, node: NodeId, id: ItemId, payload: T) {
        self.nodes[node].items.insert(id, payload);
    }

    /// Marks a node down: it neither pushes nor receives.
    pub fn set_down(&mut self, node: NodeId, down: bool) {
        self.nodes[node].down = down;
    }

    /// Does `node` hold item `id`?
    pub fn has(&self, node: NodeId, id: ItemId) -> bool {
        self.nodes[node].items.contains_key(&id)
    }

    /// Fetches `node`'s copy of `id`.
    pub fn get(&self, node: NodeId, id: ItemId) -> Option<&T> {
        self.nodes[node].items.get(&id)
    }

    /// Fraction of live nodes holding `id`.
    pub fn coverage(&self, id: ItemId) -> f64 {
        let live: Vec<&GossipState<T>> = self.nodes.iter().filter(|n| !n.down).collect();
        if live.is_empty() {
            return 0.0;
        }
        live.iter().filter(|n| n.items.contains_key(&id)).count() as f64 / live.len() as f64
    }

    /// Runs one synchronous push–pull round; returns the number of item
    /// transfers performed.
    pub fn step(&mut self) -> usize {
        self.rounds += 1;
        let n = self.nodes.len();
        let mut transfers: Vec<(NodeId, ItemId, T)> = Vec::new();
        let peer_ids: Vec<NodeId> = (0..n).collect();
        for from in 0..n {
            if self.nodes[from].down || self.nodes[from].items.is_empty() {
                continue;
            }
            // Pick fanout random peers.
            let mut peers = peer_ids.clone();
            peers.retain(|&p| p != from && !self.nodes[p].down);
            peers.shuffle(&mut self.rng);
            peers.truncate(self.fanout);
            for to in peers {
                self.messages += 1;
                // Push phase: offer ids; transfer what `to` is missing.
                let missing: Vec<ItemId> = self.nodes[from]
                    .items
                    .keys()
                    .filter(|id| !self.nodes[to].items.contains_key(id))
                    .copied()
                    .collect();
                for id in missing {
                    transfers.push((to, id, self.nodes[from].items[&id].clone()));
                }
                // Pull phase (anti-entropy): `to` offers back what `from`
                // is missing.
                let back: Vec<ItemId> = self.nodes[to]
                    .items
                    .keys()
                    .filter(|id| !self.nodes[from].items.contains_key(id))
                    .copied()
                    .collect();
                for id in back {
                    transfers.push((from, id, self.nodes[to].items[&id].clone()));
                }
            }
        }
        let count = transfers.len();
        for (to, id, payload) in transfers {
            self.nodes[to].items.insert(id, payload);
        }
        count
    }

    /// Steps until every live node holds `id` (or `max_rounds` passes);
    /// returns the number of rounds used, or `None` on timeout.
    pub fn disseminate(&mut self, id: ItemId, max_rounds: usize) -> Option<usize> {
        for r in 0..max_rounds {
            if self.coverage(id) >= 1.0 {
                return Some(r);
            }
            self.step();
        }
        (self.coverage(id) >= 1.0).then_some(max_rounds)
    }

    /// `(rounds, messages)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.rounds, self.messages)
    }

    /// Item ids held by `node`.
    pub fn items_of(&self, node: NodeId) -> HashSet<ItemId> {
        self.nodes[node].items.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_disseminates() {
        let mut g: GossipCluster<String> = GossipCluster::new(16, 2, 42);
        g.seed_item(0, 1, "block-1".into());
        let rounds = g.disseminate(1, 32).expect("should disseminate");
        assert!(rounds <= 12, "took {rounds} rounds for 16 nodes");
        for node in 0..16 {
            assert_eq!(g.get(node, 1), Some(&"block-1".to_string()));
        }
    }

    #[test]
    fn dissemination_is_logarithmic_ish() {
        // 64 nodes, fanout 3: should complete well under 64 rounds.
        let mut g: GossipCluster<u8> = GossipCluster::new(64, 3, 7);
        g.seed_item(5, 99, 1);
        let rounds = g.disseminate(99, 64).expect("should disseminate");
        assert!(rounds <= 16, "took {rounds} rounds");
    }

    #[test]
    fn down_nodes_catch_up_after_recovery() {
        let mut g: GossipCluster<u8> = GossipCluster::new(8, 2, 1);
        g.set_down(3, true);
        g.seed_item(0, 1, 1);
        g.disseminate(1, 32).unwrap();
        assert!(!g.has(3, 1), "down node must not receive");
        // Recovery: anti-entropy fills the gap.
        g.set_down(3, false);
        g.disseminate(1, 32).unwrap();
        assert!(g.has(3, 1), "recovered node must catch up");
    }

    #[test]
    fn pull_recovers_old_items() {
        // A node that was down while several items spread pulls them
        // all back — the "data recovery" role from §III-B.
        let mut g: GossipCluster<u64> = GossipCluster::new(6, 2, 3);
        g.set_down(5, true);
        for id in 1..=5 {
            g.seed_item(0, id, id * 10);
            g.disseminate(id, 32).unwrap();
        }
        g.set_down(5, false);
        for _ in 0..16 {
            g.step();
        }
        assert_eq!(g.items_of(5).len(), 5);
    }

    #[test]
    fn multiple_sources_merge() {
        let mut g: GossipCluster<u8> = GossipCluster::new(10, 2, 9);
        g.seed_item(1, 100, 1);
        g.seed_item(8, 200, 2);
        for _ in 0..20 {
            g.step();
        }
        for node in 0..10 {
            assert!(
                g.has(node, 100) && g.has(node, 200),
                "node {node} incomplete"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut g: GossipCluster<u8> = GossipCluster::new(12, 2, seed);
            g.seed_item(0, 1, 1);
            g.disseminate(1, 64).unwrap()
        };
        assert_eq!(run(5), run(5));
    }
}
