//! # sebdb-network
//!
//! The simulated network substrate (§III-B): a point-to-point
//! [`sim::SimNet`] transport with configurable latency and loss, a
//! deterministic round-stepped [`gossip::GossipCluster`] for block
//! propagation and data recovery, and gossip-style heartbeat
//! [`membership`] for failure detection. Substitutes for the paper's
//! physical 4-node cluster (DESIGN.md §4).

#![warn(missing_docs)]

pub mod gossip;
pub mod membership;
pub mod sim;

pub use gossip::{GossipCluster, ItemId};
pub use membership::{MemberState, MembershipView};
pub use sim::{Envelope, NetConfig, NodeId, SimNet};
