//! Heartbeat-based membership and failure detection.
//!
//! §III-B cites gossip's use "in distributed databases for failure
//! detection and membership protocol" (Dynamo, Cassandra). This is the
//! classic gossip-style heartbeat table: each node increments its own
//! counter every tick and merges tables with peers; a member whose
//! counter hasn't advanced for `suspect_after` ticks is suspected, and
//! after `fail_after` ticks it is declared failed.

use crate::sim::NodeId;
use std::collections::HashMap;

/// A member's health as judged by one observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Heartbeats advancing normally.
    Alive,
    /// Stale, not yet written off.
    Suspect,
    /// Declared failed.
    Failed,
}

#[derive(Debug, Clone, Copy)]
struct HeartbeatEntry {
    counter: u64,
    /// Local tick at which `counter` last advanced.
    last_advance: u64,
}

/// One node's view of cluster membership.
#[derive(Debug)]
pub struct MembershipView {
    /// This node.
    pub me: NodeId,
    table: HashMap<NodeId, HeartbeatEntry>,
    clock: u64,
    suspect_after: u64,
    fail_after: u64,
}

impl MembershipView {
    /// Creates a view for `me` with the given staleness thresholds
    /// (in ticks).
    pub fn new(me: NodeId, suspect_after: u64, fail_after: u64) -> Self {
        assert!(suspect_after < fail_after);
        let mut table = HashMap::new();
        table.insert(
            me,
            HeartbeatEntry {
                counter: 0,
                last_advance: 0,
            },
        );
        MembershipView {
            me,
            table,
            clock: 0,
            suspect_after,
            fail_after,
        }
    }

    /// Advances local time one tick and beats our own heart.
    pub fn tick(&mut self) {
        self.clock += 1;
        let clock = self.clock;
        let e = self.table.get_mut(&self.me).unwrap();
        e.counter += 1;
        e.last_advance = clock;
    }

    /// The heartbeat table to gossip to a peer.
    pub fn digest(&self) -> HashMap<NodeId, u64> {
        self.table.iter().map(|(id, e)| (*id, e.counter)).collect()
    }

    /// Merges a peer's digest: any counter newer than ours refreshes
    /// that member.
    pub fn merge(&mut self, digest: &HashMap<NodeId, u64>) {
        for (&id, &counter) in digest {
            let e = self.table.entry(id).or_insert(HeartbeatEntry {
                counter: 0,
                last_advance: self.clock,
            });
            if counter > e.counter {
                e.counter = counter;
                e.last_advance = self.clock;
            }
        }
    }

    /// This observer's judgement of `node`.
    pub fn state_of(&self, node: NodeId) -> MemberState {
        match self.table.get(&node) {
            None => MemberState::Failed,
            Some(e) => {
                let stale = self.clock.saturating_sub(e.last_advance);
                if stale >= self.fail_after {
                    MemberState::Failed
                } else if stale >= self.suspect_after {
                    MemberState::Suspect
                } else {
                    MemberState::Alive
                }
            }
        }
    }

    /// Members currently judged alive.
    pub fn alive_members(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .table
            .keys()
            .copied()
            .filter(|&id| self.state_of(id) == MemberState::Alive)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `ticks` rounds over `n` fully-meshed views, with nodes in
    /// `dead` not ticking or gossiping from `die_at` onwards.
    fn run(n: usize, ticks: u64, dead: &[NodeId], die_at: u64) -> Vec<MembershipView> {
        let mut views: Vec<MembershipView> = (0..n).map(|i| MembershipView::new(i, 3, 8)).collect();
        for t in 0..ticks {
            for (i, view) in views.iter_mut().enumerate() {
                if dead.contains(&i) && t >= die_at {
                    continue;
                }
                view.tick();
            }
            // Full-mesh digest exchange.
            let digests: Vec<_> = views.iter().map(|v| v.digest()).collect();
            for (i, view) in views.iter_mut().enumerate() {
                if dead.contains(&i) && t >= die_at {
                    continue;
                }
                for (j, d) in digests.iter().enumerate() {
                    if i != j && !(dead.contains(&j) && t >= die_at) {
                        view.merge(d);
                    }
                }
            }
        }
        views
    }

    #[test]
    fn healthy_cluster_all_alive() {
        let views = run(4, 10, &[], 0);
        for v in &views {
            assert_eq!(v.alive_members(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn dead_node_is_suspected_then_failed() {
        let views = run(4, 20, &[2], 5);
        let v = &views[0];
        assert_eq!(v.state_of(2), MemberState::Failed);
        assert_eq!(v.alive_members(), vec![0, 1, 3]);
    }

    #[test]
    fn briefly_stale_node_is_suspect_not_failed() {
        let views = run(4, 9, &[2], 5);
        // 4 ticks of staleness: past suspect_after=3, before fail_after=8.
        assert_eq!(views[0].state_of(2), MemberState::Suspect);
    }

    #[test]
    fn unknown_node_is_failed() {
        let v = MembershipView::new(0, 3, 8);
        assert_eq!(v.state_of(99), MemberState::Failed);
    }

    #[test]
    fn merge_refreshes_liveness() {
        let mut a = MembershipView::new(0, 3, 8);
        let mut b = MembershipView::new(1, 3, 8);
        // b ticks 5 times; a ticks 5 times without hearing from b.
        for _ in 0..5 {
            a.tick();
            b.tick();
        }
        assert_eq!(a.state_of(1), MemberState::Failed); // never heard of b
        a.merge(&b.digest());
        assert_eq!(a.state_of(1), MemberState::Alive);
    }
}
