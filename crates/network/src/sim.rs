//! Simulated point-to-point transport.
//!
//! Stands in for the paper's 1 Gbps cluster LAN (DESIGN.md §4): every
//! node gets a mailbox; sends are delivered by a background pump thread
//! after a configurable latency, with optional seeded message drop for
//! fault-injection tests. With zero latency and zero drop the transport
//! is synchronous and deterministic.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a node on the simulated network.
pub type NodeId = usize;

/// Network behaviour knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way delivery latency.
    pub latency: Duration,
    /// Probability a message is silently dropped (0.0 = reliable).
    pub drop_probability: f64,
    /// RNG seed for drops.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            drop_probability: 0.0,
            seed: 0,
        }
    }
}

/// An envelope delivered to a mailbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

struct Pending<M> {
    due: Instant,
    seq: u64,
    to: NodeId,
    env: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (due, seq).
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Shared<M> {
    mailboxes: Mutex<Vec<Sender<Envelope<M>>>>,
    queue: Mutex<BinaryHeap<Pending<M>>>,
    /// Wakes the pump when a packet is queued or the net shuts down,
    /// so the delivery loop parks on deadlines instead of polling.
    wakeup: Condvar,
    rng: Mutex<StdRng>,
    config: NetConfig,
    seq: AtomicU64,
    stopped: AtomicBool,
    sent: AtomicU64,
    dropped: AtomicU64,
}

/// The simulated network. Cloneable handle.
pub struct SimNet<M> {
    shared: Arc<Shared<M>>,
    pump: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl<M: Send + 'static> SimNet<M> {
    /// Creates a network with `config`.
    pub fn new(config: NetConfig) -> Arc<Self> {
        let shared = Arc::new(Shared {
            mailboxes: Mutex::new(Vec::new()),
            queue: Mutex::new(BinaryHeap::new()),
            wakeup: Condvar::new(),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            config,
            seq: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        let net = Arc::new(SimNet {
            shared,
            pump: Mutex::new(None),
        });
        if !net.shared.config.latency.is_zero() {
            let shared = Arc::clone(&net.shared);
            let handle = sebdb_parallel::spawn_service("net-pump", move || pump_loop(shared));
            *net.pump.lock() = Some(handle);
        }
        net
    }

    /// Registers a node, returning its id and mailbox receiver.
    pub fn register(&self) -> (NodeId, Receiver<Envelope<M>>) {
        let (tx, rx) = unbounded();
        let mut boxes = self.shared.mailboxes.lock();
        boxes.push(tx);
        (boxes.len() - 1, rx)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.shared.mailboxes.lock().len()
    }

    /// Sends `msg` from `from` to `to`. Lossy/slow per config.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) {
        self.shared.sent.fetch_add(1, Ordering::Relaxed);
        if self.shared.config.drop_probability > 0.0 {
            let roll: f64 = self.shared.rng.lock().gen();
            if roll < self.shared.config.drop_probability {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let env = Envelope { from, msg };
        if self.shared.config.latency.is_zero() {
            if let Some(tx) = self.shared.mailboxes.lock().get(to) {
                let _ = tx.send(env);
            }
        } else {
            let due = Instant::now() + self.shared.config.latency;
            self.shared.queue.lock().push(Pending {
                due,
                seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
                to,
                env,
            });
            self.shared.wakeup.notify_one();
        }
    }

    /// `(sent, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.shared.sent.load(Ordering::Relaxed),
            self.shared.dropped.load(Ordering::Relaxed),
        )
    }
}

impl<M: Send + Clone + 'static> SimNet<M> {
    /// Sends `msg` from `from` to every other registered node.
    pub fn broadcast(&self, from: NodeId, msg: M) {
        let n = self.node_count();
        for to in 0..n {
            if to != from {
                self.send(from, to, msg.clone());
            }
        }
    }
}

impl<M> Drop for SimNet<M> {
    fn drop(&mut self) {
        self.shared.stopped.store(true, Ordering::Relaxed);
        self.shared.wakeup.notify_all();
        if let Some(h) = self.pump.lock().take() {
            let _ = h.join();
        }
    }
}

fn pump_loop<M: Send + 'static>(shared: Arc<Shared<M>>) {
    while !shared.stopped.load(Ordering::Relaxed) {
        let now = Instant::now();
        let mut due: Vec<(NodeId, Envelope<M>)> = Vec::new();
        let mut next_due: Option<Instant> = None;
        {
            let mut q = shared.queue.lock();
            while let Some(p) = q.peek() {
                if p.due <= now {
                    let p = q.pop().unwrap();
                    due.push((p.to, p.env));
                } else {
                    next_due = Some(p.due);
                    break;
                }
            }
        }
        for (to, env) in due {
            if let Some(tx) = shared.mailboxes.lock().get(to) {
                let _ = tx.send(env);
            }
        }
        // Park until the earliest pending delivery is due, or until a
        // send/shutdown notifies the condvar — a new packet may become
        // the earliest, and Drop must not wait out a full deadline.
        let wait = match next_due {
            Some(t) => t.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        if wait.is_zero() {
            continue;
        }
        let mut q = shared.queue.lock();
        if shared.stopped.load(Ordering::Relaxed) {
            break;
        }
        // Re-check under the lock: a packet queued between the drain
        // above and this reacquisition must cut the wait short.
        let wait = match q.peek() {
            Some(p) => p.due.saturating_duration_since(Instant::now()),
            None => wait,
        };
        if !wait.is_zero() {
            let _ = shared.wakeup.wait_for(&mut q, wait);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_is_synchronous() {
        let net: Arc<SimNet<u32>> = SimNet::new(NetConfig::default());
        let (a, _rx_a) = net.register();
        let (b, rx_b) = net.register();
        net.send(a, b, 42);
        assert_eq!(rx_b.try_recv().unwrap(), Envelope { from: a, msg: 42 });
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let net: Arc<SimNet<&'static str>> = SimNet::new(NetConfig::default());
        let receivers: Vec<_> = (0..4).map(|_| net.register()).collect();
        net.broadcast(0, "block");
        assert!(receivers[0].1.try_recv().is_err());
        for (id, rx) in &receivers[1..] {
            let env = rx
                .try_recv()
                .unwrap_or_else(|_| panic!("node {id} missed broadcast"));
            assert_eq!(env.msg, "block");
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let net: Arc<SimNet<u32>> = SimNet::new(NetConfig {
            latency: Duration::from_millis(20),
            ..NetConfig::default()
        });
        let (a, _) = net.register();
        let (b, rx_b) = net.register();
        let start = Instant::now();
        net.send(a, b, 7);
        assert!(rx_b.try_recv().is_err(), "must not arrive instantly");
        let env = rx_b.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(env.msg, 7);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn drops_are_counted_and_seeded() {
        let net: Arc<SimNet<u32>> = SimNet::new(NetConfig {
            drop_probability: 0.5,
            seed: 7,
            ..NetConfig::default()
        });
        let (a, _) = net.register();
        let (b, rx_b) = net.register();
        for i in 0..1000 {
            net.send(a, b, i);
        }
        let (sent, dropped) = net.stats();
        assert_eq!(sent, 1000);
        assert!((300..700).contains(&dropped), "dropped {dropped}");
        let delivered = rx_b.try_iter().count() as u64;
        assert_eq!(delivered, sent - dropped);
    }

    #[test]
    fn ordering_preserved_at_equal_latency() {
        let net: Arc<SimNet<u32>> = SimNet::new(NetConfig {
            latency: Duration::from_millis(5),
            ..NetConfig::default()
        });
        let (a, _) = net.register();
        let (b, rx_b) = net.register();
        for i in 0..50 {
            net.send(a, b, i);
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(rx_b.recv_timeout(Duration::from_secs(2)).unwrap().msg);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
