//! The view engine's non-negotiable equivalence gate: after every
//! applied block, a registered view's materialized result must equal a
//! fresh `run_trace` re-execution **byte for byte** — same row set,
//! same (chain) order — across the backfill→incremental seam, a
//! restart (views re-backfill from their persisted registration), a
//! crash between persist and view-fold (replay heals, the view
//! re-folds idempotently), and under the staged pipeline's view-folder
//! consumer.

use sebdb::{ApplyPipeline, Executor, Ledger, QueryResult, SchemaManager, Strategy};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_sql::{LogicalPlan, TraceSpec};
use sebdb_storage::{BlockStore, StoreConfig};
use sebdb_types::{Transaction, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ORG1: KeyId = KeyId([1; 8]);
const ORG2: KeyId = KeyId([2; 8]);

fn signer() -> MacKeypair {
    MacKeypair::from_key([9u8; 32])
}

/// Mixed workload: three relations spread over distinct index shards,
/// two senders, an occasional internal (`__`-prefixed) transaction
/// that tracking must never surface, and fixed timestamps
/// (`ts = 10_000 + seq`) so window specs can pin exact blocks.
fn mixed_block(seq: u64) -> OrderedBlock {
    let ts = 10_000 + seq;
    let mut txs = Vec::new();
    for i in 0..6u64 {
        let (table, sender) = match (seq + i) % 4 {
            0 => ("donate", ORG1),
            1 => ("volunteer", ORG2),
            2 => ("transfer", ORG1),
            _ => ("donate", ORG2),
        };
        txs.push(Transaction::new(
            ts,
            sender,
            table,
            vec![Value::Int((seq * 10 + i) as i64)],
        ));
    }
    if seq.is_multiple_of(7) {
        // Schema-sync style internal transaction: invisible to TRACE.
        txs.push(Transaction::new(
            ts,
            ORG1,
            "__schema",
            vec![Value::str("x")],
        ));
    }
    for (i, tx) in txs.iter_mut().enumerate() {
        tx.tid = seq * 100 + i as u64 + 1;
    }
    OrderedBlock {
        seq,
        timestamp_ms: ts,
        txs,
    }
}

fn trace_plan(spec: &TraceSpec) -> LogicalPlan {
    LogicalPlan::Trace {
        window: spec.window,
        operator: spec.operator.map(|id| Value::Bytes(id.to_vec())),
        operation: spec.operation.clone(),
    }
}

/// The gate itself: the view's served rows must equal a fresh
/// re-execution under every forced strategy, and the `Auto` route
/// (which is served from the view) must agree with all of them.
fn assert_view_equivalent(ledger: &Ledger, spec: &TraceSpec, context: &str) {
    let exec = Executor::new(ledger, None);
    let plan = trace_plan(spec);
    let scan = exec.execute(&plan, Strategy::Scan).unwrap();
    let layered = exec.execute(&plan, Strategy::Layered).unwrap();
    let bitmap = exec.execute(&plan, Strategy::Bitmap).unwrap();
    assert_eq!(scan, layered, "scan != layered ({context})");
    assert_eq!(scan, bitmap, "scan != bitmap ({context})");
    let served = ledger
        .serve_trace_view(spec)
        .unwrap()
        .expect("view must be registered");
    assert_eq!(served, scan, "view != fresh re-execution ({context})");
    let auto = exec.execute(&plan, Strategy::Auto).unwrap();
    assert_eq!(auto, scan, "auto route != fresh re-execution ({context})");
}

#[test]
fn view_matches_rescan_after_every_block_across_backfill_seam() {
    let ledger = Ledger::new(Arc::new(BlockStore::in_memory()), signer()).unwrap();

    // V1 registers on the empty chain: its entire life is incremental.
    let v1 = TraceSpec::new(None, None, Some("donate"));
    assert!(ledger.register_trace_view(v1.clone()).unwrap());
    // Re-registration is a no-op.
    assert!(!ledger.register_trace_view(v1.clone()).unwrap());

    // V2 and V3 register mid-stream, exercising the backfill seam at
    // heights 40 and 60. V3's window covers timestamps of blocks
    // 20..=80 only, with both edges inclusive.
    let v2 = TraceSpec::new(None, Some(ORG1.0), None);
    let v3 = TraceSpec::new(Some((10_020, 10_080)), Some(ORG2.0), Some("donate"));

    let mut registered: Vec<TraceSpec> = vec![v1];
    for seq in 0..120u64 {
        ledger.append_ordered(mixed_block(seq)).unwrap();
        if seq == 40 {
            assert!(ledger.register_trace_view(v2.clone()).unwrap());
            registered.push(v2.clone());
        }
        if seq == 60 {
            assert!(ledger.register_trace_view(v3.clone()).unwrap());
            registered.push(v3.clone());
        }
        for spec in &registered {
            assert_view_equivalent(&ledger, spec, &format!("height {}", seq + 1));
        }
    }

    // The fold cursors track the applied height exactly.
    for spec in &registered {
        assert_eq!(ledger.trace_view_folded(spec), Some(120));
    }
    let (backfills, refreshes, delta_rows, serve_hits) = ledger.trace_views().stats().snapshot();
    assert_eq!(backfills, 3);
    assert!(refreshes > 0, "steady state must fold, not re-backfill");
    assert!(delta_rows > 0);
    assert!(serve_hits > 0);

    // An unregistered spec is not served.
    let other = TraceSpec::new(None, None, Some("transfer"));
    assert!(ledger.serve_trace_view(&other).unwrap().is_none());
}

#[test]
fn serving_from_view_issues_zero_index_probes_and_reads() {
    let ledger = Ledger::new(Arc::new(BlockStore::in_memory()), signer()).unwrap();
    let spec = TraceSpec::new(None, None, Some("donate"));
    ledger.register_trace_view(spec.clone()).unwrap();
    for seq in 0..30u64 {
        ledger.append_ordered(mixed_block(seq)).unwrap();
    }
    // A fully caught-up view answers from memory: no blocks read, no
    // transactions decoded.
    ledger.serve_trace_view(&spec).unwrap().unwrap();
    ledger.store().stats.reset();
    let served = ledger.serve_trace_view(&spec).unwrap().unwrap();
    assert!(!served.is_empty());
    assert_eq!(ledger.store().stats.blocks_read.load(Ordering::Relaxed), 0);
    assert_eq!(ledger.store().stats.txs_read.load(Ordering::Relaxed), 0);
}

fn disk_store(dir: &std::path::Path) -> Arc<BlockStore> {
    Arc::new(BlockStore::open(dir, StoreConfig::default()).unwrap())
}

#[test]
fn views_survive_restart_and_rebackfill() {
    let dir = std::env::temp_dir().join(format!("sebdb-viewrestart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let v1 = TraceSpec::new(None, None, Some("volunteer"));
    let v2 = TraceSpec::new(Some((10_010, 10_050)), Some(ORG1.0), None);
    {
        let ledger = Ledger::new(disk_store(&dir), signer()).unwrap();
        ledger.register_trace_view(v1.clone()).unwrap();
        for seq in 0..40u64 {
            ledger.append_ordered(mixed_block(seq)).unwrap();
        }
        ledger.register_trace_view(v2.clone()).unwrap();
        for seq in 40..60u64 {
            ledger.append_ordered(mixed_block(seq)).unwrap();
        }
        assert_view_equivalent(&ledger, &v1, "before restart");
        assert_view_equivalent(&ledger, &v2, "before restart");
    }
    // Reopen: registrations load from disk, rows re-backfill, and the
    // views keep folding newly appended blocks.
    let ledger = Ledger::new(disk_store(&dir), signer()).unwrap();
    let mut specs = ledger.trace_views().specs();
    specs.sort_by_key(|s| s.operation.is_some());
    assert_eq!(specs, vec![v2.clone(), v1.clone()]);
    assert_eq!(ledger.trace_view_folded(&v1), Some(60));
    assert_view_equivalent(&ledger, &v1, "after restart");
    assert_view_equivalent(&ledger, &v2, "after restart");
    for seq in 60..80u64 {
        ledger.append_ordered(mixed_block(seq)).unwrap();
        assert_view_equivalent(&ledger, &v1, "appending after restart");
        assert_view_equivalent(&ledger, &v2, "appending after restart");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash ladder at the persist/index/view boundaries: a block that was
/// persisted but neither indexed nor folded is healed by the restart
/// replay, after which the re-backfilled view agrees with a fresh
/// re-execution; folds that already ran are not double-counted.
#[test]
fn crash_between_persist_and_fold_heals_on_reopen() {
    let dir = std::env::temp_dir().join(format!("sebdb-viewcrash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = TraceSpec::new(None, Some(ORG1.0), Some("donate"));
    {
        let ledger = Ledger::new(disk_store(&dir), signer()).unwrap();
        ledger.register_trace_view(spec.clone()).unwrap();
        for seq in 0..20u64 {
            ledger.append_ordered(mixed_block(seq)).unwrap();
        }
        // "Crash": block 20 reaches durable storage but the process
        // dies before the index and view-fold stages run.
        let block = ledger.seal_ordered(mixed_block(20)).unwrap();
        ledger.persist_block(block).unwrap();
        assert_eq!(ledger.height(), 20);
        assert_eq!(ledger.chain_height(), 21);
        assert_eq!(ledger.trace_view_folded(&spec), Some(20));
    }
    let ledger = Ledger::new(disk_store(&dir), signer()).unwrap();
    // Replay healed the torn block; the view re-backfilled over it.
    assert_eq!(ledger.height(), 21);
    assert_eq!(ledger.trace_view_folded(&spec), Some(21));
    assert_view_equivalent(&ledger, &spec, "after crash heal");
    for seq in 21..30u64 {
        ledger.append_ordered(mixed_block(seq)).unwrap();
        assert_view_equivalent(&ledger, &spec, "appending after crash heal");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipeline_view_folder_folds_behind_the_index_lanes() {
    let ledger = Arc::new(Ledger::new(Arc::new(BlockStore::in_memory()), signer()).unwrap());
    let v1 = TraceSpec::new(None, None, Some("donate"));
    ledger.register_trace_view(v1.clone()).unwrap();

    let schemas = Arc::new(SchemaManager::new(None));
    let stopped = Arc::new(AtomicBool::new(false));
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut pipe = ApplyPipeline::start_with_lanes(
        Arc::clone(&ledger),
        schemas,
        rx,
        Arc::clone(&stopped),
        3,
        4,
    );
    for seq in 0..15u64 {
        tx.send(mixed_block(seq)).unwrap();
    }
    assert!(
        ledger.wait_for_height(15, Instant::now() + Duration::from_secs(30), || pipe
            .health()
            .is_poisoned())
    );
    // Mid-stream registration under a live pipeline: the backfill seam
    // races real folds and must still agree.
    let v2 = TraceSpec::new(None, Some(ORG2.0), None);
    ledger.register_trace_view(v2.clone()).unwrap();
    for seq in 15..30u64 {
        tx.send(mixed_block(seq)).unwrap();
    }
    assert!(
        ledger.wait_for_height(30, Instant::now() + Duration::from_secs(30), || pipe
            .health()
            .is_poisoned())
    );
    stopped.store(true, Ordering::Relaxed);
    drop(tx);
    pipe.join();

    // The folder stage (not the serve path) brought both views to the
    // tip: the cursors are final before any serve-time catch-up runs.
    assert_eq!(ledger.trace_view_folded(&v1), Some(30));
    assert_eq!(ledger.trace_view_folded(&v2), Some(30));
    assert_view_equivalent(&ledger, &v1, "after pipeline");
    assert_view_equivalent(&ledger, &v2, "after pipeline");
    let (backfills, refreshes, ..) = ledger.trace_views().stats().snapshot();
    assert_eq!(backfills, 2);
    assert!(refreshes >= 30, "the folder stage must fold every block");
}

/// Registration validation: a dimensionless spec is rejected, and the
/// equivalence of `QueryResult`s covers headers too.
#[test]
fn dimensionless_view_is_rejected() {
    let ledger = Ledger::new(Arc::new(BlockStore::in_memory()), signer()).unwrap();
    let err = ledger
        .register_trace_view(TraceSpec::new(Some((1, 2)), None, None))
        .unwrap_err();
    assert!(err.to_string().contains("at least one dimension"));
    assert!(ledger.trace_views().is_empty());
}

/// A forced-strategy `TRACE` bypasses the view (the figure runs keep
/// measuring their physical paths): the serve-hit counter only moves
/// on the `Auto` route.
#[test]
fn forced_strategies_bypass_the_view() {
    let ledger = Ledger::new(Arc::new(BlockStore::in_memory()), signer()).unwrap();
    let spec = TraceSpec::new(None, None, Some("donate"));
    ledger.register_trace_view(spec.clone()).unwrap();
    for seq in 0..10u64 {
        ledger.append_ordered(mixed_block(seq)).unwrap();
    }
    let exec = Executor::new(&ledger, None);
    let plan = trace_plan(&spec);
    let baseline = ledger.trace_views().stats().snapshot().3;
    exec.execute(&plan, Strategy::Scan).unwrap();
    exec.execute(&plan, Strategy::Bitmap).unwrap();
    exec.execute(&plan, Strategy::Layered).unwrap();
    assert_eq!(ledger.trace_views().stats().snapshot().3, baseline);
    let _: QueryResult = exec.execute(&plan, Strategy::Auto).unwrap();
    assert_eq!(ledger.trace_views().stats().snapshot().3, baseline + 1);
}
