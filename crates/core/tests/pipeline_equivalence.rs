//! Pipelined-vs-sequential write-path equivalence.
//!
//! The acceptance bar for the staged applier: pipelined apply (depth
//! ≥ 2, sealer and indexer on separate threads) must produce
//! byte-identical blocks and identical `QueryResult`s to the
//! sequential path, pinned at `SEBDB_THREADS=1` semantics via
//! `set_max_threads(1)`. Plus the crash-at-stage-boundary and
//! dead-applier failure modes.

use sebdb::{ApplyPipeline, Executor, Ledger, NodeError, SchemaManager, SebdbNode, Strategy};
use sebdb_consensus::{BatchConfig, KafkaOrderer, OrderedBlock};
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_sql::{BoundPredicate, BoundPredicateKind, LogicalPlan};
use sebdb_storage::BlockStore;
use sebdb_types::{Codec, Column, DataType, TableSchema, Transaction, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SENDER: KeyId = KeyId([4; 8]);

fn signer() -> MacKeypair {
    MacKeypair::from_key([11u8; 32])
}

fn donate_schema(n: u64) -> TableSchema {
    TableSchema::new(
        format!("donate{n}"),
        vec![
            Column::new("donor", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// ≥100 mixed DDL/insert blocks with fixed timestamps so two runs seal
/// bit-for-bit identical blocks. Every 10th block carries a CREATE
/// (schema-sync transaction) for a fresh table; each block's inserts
/// spread over the tables created so far (so a relation-sharded
/// applier has multiple lanes' worth of index maintenance per block).
fn mixed_blocks(count: u64) -> Vec<OrderedBlock> {
    let mut tid = 1u64;
    (0..count)
        .map(|seq| {
            let ts = 10_000 + seq;
            let mut txs = Vec::new();
            if seq % 10 == 0 {
                txs.push(SchemaManager::schema_transaction(
                    &donate_schema(seq / 10),
                    ts,
                    SENDER,
                ));
            }
            let created = seq / 10 + 1;
            for i in 0..5u64 {
                let table = format!("donate{}", (seq / 10).saturating_sub(i % created));
                txs.push(Transaction::new(
                    ts,
                    SENDER,
                    &table,
                    vec![Value::str("d"), Value::decimal((seq * 5 + i) as i64 % 97)],
                ));
            }
            for tx in &mut txs {
                tx.tid = tid;
                tid += 1;
            }
            OrderedBlock {
                seq,
                timestamp_ms: ts,
                txs,
            }
        })
        .collect()
}

/// Drives `blocks` through an [`ApplyPipeline`] of the given depth and
/// applier lane count over a fresh in-memory ledger; returns the
/// ledger and schema catalog once everything is applied.
fn run_lanes(
    depth: usize,
    lanes: usize,
    blocks: &[OrderedBlock],
) -> (Arc<Ledger>, Arc<SchemaManager>) {
    run_lanes_on(Arc::new(BlockStore::in_memory()), depth, lanes, blocks)
}

/// [`run_lanes`] over an explicit store (disk-backed stores exercise
/// the partitioned persist fan-out under the pipeline).
fn run_lanes_on(
    store: Arc<BlockStore>,
    depth: usize,
    lanes: usize,
    blocks: &[OrderedBlock],
) -> (Arc<Ledger>, Arc<SchemaManager>) {
    let ledger = Arc::new(Ledger::new(store, signer()).unwrap());
    let schemas = Arc::new(SchemaManager::new(None));
    let stopped = Arc::new(AtomicBool::new(false));
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut pipe = ApplyPipeline::start_with_lanes(
        Arc::clone(&ledger),
        Arc::clone(&schemas),
        rx,
        Arc::clone(&stopped),
        depth,
        lanes,
    );
    for b in blocks {
        tx.send(b.clone()).unwrap();
    }
    assert!(
        ledger.wait_for_height(
            blocks.len() as u64,
            Instant::now() + Duration::from_secs(30),
            || pipe.health().is_poisoned()
        ),
        "pipeline depth {depth} lanes {lanes} never applied all blocks: {:?}",
        pipe.health().error()
    );
    stopped.store(true, Ordering::Relaxed);
    drop(tx);
    pipe.join();
    (ledger, schemas)
}

fn run_pipeline(depth: usize, blocks: &[OrderedBlock]) -> (Arc<Ledger>, Arc<SchemaManager>) {
    run_lanes(depth, 1, blocks)
}

fn range_query(schema: TableSchema) -> LogicalPlan {
    LogicalPlan::Query {
        predicates: vec![BoundPredicate {
            column: schema.resolve("amount").unwrap(),
            kind: BoundPredicateKind::Between(Value::decimal(10), Value::decimal(60)),
        }],
        schema,
        projection: vec![],
        window: None,
    }
}

#[test]
fn pipelined_apply_is_byte_identical_and_query_equivalent() {
    // Pin exact sequential semantics for every parallel primitive, as
    // CI's SEBDB_THREADS=1 pass would.
    sebdb_parallel::set_max_threads(1);
    let blocks = mixed_blocks(120);
    let (seq_ledger, seq_schemas) = run_pipeline(1, &blocks);
    let (pipe_ledger, pipe_schemas) = run_pipeline(4, &blocks);

    assert_eq!(seq_ledger.height(), 120);
    assert_eq!(pipe_ledger.height(), 120);
    assert_eq!(seq_ledger.tip_hash(), pipe_ledger.tip_hash());
    for bid in 0..120 {
        let a = seq_ledger.read_block(bid).unwrap();
        let b = pipe_ledger.read_block(bid).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes(), "block {bid} differs");
    }
    seq_ledger.verify_chain().unwrap();
    pipe_ledger.verify_chain().unwrap();

    // Both catalogs saw every CREATE.
    for t in 0..12 {
        let name = format!("donate{t}");
        assert!(seq_schemas.get(&name).is_some(), "{name} missing (seq)");
        assert!(pipe_schemas.get(&name).is_some(), "{name} missing (pipe)");
    }

    // Identical QueryResults across strategies and operators.
    let seq_exec = Executor::new(&seq_ledger, None);
    let pipe_exec = Executor::new(&pipe_ledger, None);
    let schema = seq_schemas.get("donate3").unwrap();
    for strat in [Strategy::Scan, Strategy::Bitmap] {
        let a = seq_exec
            .execute(&range_query(schema.clone()), strat)
            .unwrap();
        let b = pipe_exec
            .execute(&range_query(schema.clone()), strat)
            .unwrap();
        assert_eq!(a, b, "{strat:?} range query diverged");
        assert!(!a.is_empty());
    }
    let trace = LogicalPlan::Trace {
        window: None,
        operator: Some(Value::Bytes(SENDER.as_bytes().to_vec())),
        operation: None,
    };
    let a = seq_exec.execute(&trace, Strategy::Layered).unwrap();
    let b = pipe_exec.execute(&trace, Strategy::Layered).unwrap();
    assert_eq!(a, b, "trace diverged");
    // Provenance tracking covers the application tables' inserts (the
    // schema-sync rows live in the reserved catalog table).
    assert_eq!(a.len(), 120 * 5);
}

/// The sharded-applier acceptance bar: lanes=4 must be byte-identical
/// and query-equivalent to lanes=1 on the 120-block mixed DDL/insert
/// workload. Runs under the ambient `SEBDB_THREADS` cap — CI drives
/// this test at both SEBDB_THREADS=1 and SEBDB_THREADS=4, covering the
/// lanes × threads matrix.
#[test]
fn sharded_lanes_are_byte_identical_and_query_equivalent() {
    let blocks = mixed_blocks(120);
    let (one_ledger, one_schemas) = run_lanes(1, 1, &blocks);
    let (four_ledger, four_schemas) = run_lanes(4, 4, &blocks);

    assert_eq!(one_ledger.height(), 120);
    assert_eq!(four_ledger.height(), 120);
    assert_eq!(one_ledger.tip_hash(), four_ledger.tip_hash());
    for bid in 0..120 {
        let a = one_ledger.read_block(bid).unwrap();
        let b = four_ledger.read_block(bid).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes(), "block {bid} differs");
    }
    four_ledger.verify_chain().unwrap();
    for t in 0..12 {
        let name = format!("donate{t}");
        assert!(one_schemas.get(&name).is_some(), "{name} missing (lanes=1)");
        assert!(
            four_schemas.get(&name).is_some(),
            "{name} missing (lanes=4)"
        );
    }

    // Per-table layered indexes built on both ledgers (control-plane,
    // applier quiescent) answer identically — the shards a lane
    // maintained in parallel hold the same entries as the sequential
    // build.
    let schema = one_schemas.get("donate3").unwrap();
    one_ledger
        .create_layered_index(&schema, "amount", None)
        .unwrap();
    four_ledger
        .create_layered_index(&schema, "amount", None)
        .unwrap();
    let one_exec = Executor::new(&one_ledger, None);
    let four_exec = Executor::new(&four_ledger, None);
    for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
        let a = one_exec
            .execute(&range_query(schema.clone()), strat)
            .unwrap();
        let b = four_exec
            .execute(&range_query(schema.clone()), strat)
            .unwrap();
        assert_eq!(a, b, "{strat:?} range query diverged across lane counts");
        assert!(!a.is_empty());
    }
    // The chain-shard system tracking indexes (lane 0) agree too.
    let trace = LogicalPlan::Trace {
        window: None,
        operator: Some(Value::Bytes(SENDER.as_bytes().to_vec())),
        operation: None,
    };
    let a = one_exec.execute(&trace, Strategy::Layered).unwrap();
    let b = four_exec.execute(&trace, Strategy::Layered).unwrap();
    assert_eq!(a, b, "trace diverged across lane counts");
    assert_eq!(a.len(), 120 * 5);
}

/// Tentpole acceptance for the partitioned layout: applier lanes ×
/// storage partitions must be invisible. A depth-4/lanes=4 pipeline
/// persisting to the 8-way partitioned disk layout produces
/// byte-identical blocks and identical `QueryResult`s to a
/// depth-1/lanes=1 run over the unpartitioned (partitions = 1) layout
/// — the sequential single-sequence reference.
#[test]
fn lanes_by_partitions_matches_sequential_reference() {
    let blocks = mixed_blocks(60);
    let run_disk = |tag: &str, depth: usize, lanes: usize, partitions: usize| {
        let dir =
            std::env::temp_dir().join(format!("sebdb-lanesparts-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = BlockStore::open(
            &dir,
            sebdb_storage::StoreConfig {
                sync_writes: false,
                partitions,
                ..sebdb_storage::StoreConfig::default()
            },
        )
        .unwrap();
        assert_eq!(store.partitions(), partitions);
        let (ledger, schemas) = run_lanes_on(Arc::new(store), depth, lanes, &blocks);
        (ledger, schemas, dir)
    };
    let (ref_ledger, ref_schemas, ref_dir) = run_disk("ref", 1, 1, 1);
    let (par_ledger, par_schemas, par_dir) = run_disk("par", 4, 4, 8);

    assert_eq!(ref_ledger.height(), 60);
    assert_eq!(par_ledger.height(), 60);
    assert_eq!(ref_ledger.tip_hash(), par_ledger.tip_hash());
    for bid in 0..60 {
        let a = ref_ledger.read_block(bid).unwrap();
        let b = par_ledger.read_block(bid).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes(), "block {bid} differs");
    }
    par_ledger.verify_chain().unwrap();

    let schema = ref_schemas.get("donate3").unwrap();
    assert!(par_schemas.get("donate3").is_some());
    let ref_exec = Executor::new(&ref_ledger, None);
    let par_exec = Executor::new(&par_ledger, None);
    for strat in [Strategy::Scan, Strategy::Bitmap] {
        let a = ref_exec
            .execute(&range_query(schema.clone()), strat)
            .unwrap();
        let b = par_exec
            .execute(&range_query(schema.clone()), strat)
            .unwrap();
        assert_eq!(a, b, "{strat:?} diverged across lanes x partitions");
        assert!(!a.is_empty());
    }
    let trace = LogicalPlan::Trace {
        window: None,
        operator: Some(Value::Bytes(SENDER.as_bytes().to_vec())),
        operation: None,
    };
    let a = ref_exec.execute(&trace, Strategy::Layered).unwrap();
    let b = par_exec.execute(&trace, Strategy::Layered).unwrap();
    assert_eq!(a, b, "trace diverged across lanes x partitions");
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&par_dir);
}

#[test]
fn crash_between_stages_restarts_consistent_and_pipeline_continues() {
    let dir = std::env::temp_dir().join(format!("sebdb-pipecrash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = sebdb_storage::StoreConfig::default();
    let blocks = mixed_blocks(20);
    {
        // Apply the first 10 blocks normally, then die between the
        // persist and index stages of block 10.
        let store = Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap());
        let l = Ledger::new(store, signer()).unwrap();
        let schemas = SchemaManager::new(None);
        for b in &blocks[..10] {
            let block = l.append_ordered(b.clone()).unwrap();
            schemas.apply_block(&block);
        }
        let sealed = l.seal_ordered(blocks[10].clone()).unwrap();
        l.persist_block(sealed).unwrap();
        assert_eq!((l.chain_height(), l.height()), (11, 10));
        // "Crash": the ledger drops with block 10 persisted, unindexed.
    }
    // Restart: replay heals the index gap, then the pipeline applies
    // the rest. The result must match a crash-free sequential run.
    let store = Arc::new(BlockStore::open(&dir, cfg).unwrap());
    let ledger = Arc::new(Ledger::new(store, signer()).unwrap());
    assert_eq!((ledger.chain_height(), ledger.height()), (11, 11));
    let schemas = Arc::new(SchemaManager::new(None));
    for bid in 0..11 {
        schemas.apply_block(&ledger.read_block(bid).unwrap());
    }
    let stopped = Arc::new(AtomicBool::new(false));
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut pipe = ApplyPipeline::start(
        Arc::clone(&ledger),
        Arc::clone(&schemas),
        rx,
        Arc::clone(&stopped),
        3,
    );
    for b in &blocks[11..] {
        tx.send(b.clone()).unwrap();
    }
    assert!(
        ledger.wait_for_height(20, Instant::now() + Duration::from_secs(30), || pipe
            .health()
            .is_poisoned())
    );
    stopped.store(true, Ordering::Relaxed);
    drop(tx);
    pipe.join();
    ledger.verify_chain().unwrap();

    let (clean, _) = run_pipeline(1, &blocks);
    assert_eq!(ledger.tip_hash(), clean.tip_hash());
    for bid in 0..20 {
        assert_eq!(
            ledger.read_block(bid).unwrap().to_bytes(),
            clean.read_block(bid).unwrap().to_bytes()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_applier_fails_fast_with_descriptive_error() {
    // Pre-populate the store so the node's chain starts at height 1
    // while the fresh ordering service emits seq 0: the sealer rejects
    // the gap, poisons the pipeline, and writers must fail fast with
    // ApplierDead instead of burning the 10 s apply timeout.
    let store = Arc::new(BlockStore::in_memory());
    {
        let l = Ledger::new(Arc::clone(&store), signer()).unwrap();
        l.append_ordered(mixed_blocks(1).remove(0)).unwrap();
    }
    let consensus = KafkaOrderer::start(BatchConfig {
        max_txs: 1,
        timeout_ms: 20,
    });
    let node = SebdbNode::start(store, consensus, None, signer()).unwrap();
    // The first write's awaited height (seq 0 applied ⇒ height 1) is
    // already satisfied by the pre-existing block, so it may race the
    // poison and "succeed" against the stale chain — either outcome is
    // acceptable here. The sealer is dead afterwards regardless.
    let _ = node.execute("CREATE TABLE quick (x INT)", &[]);
    let started = Instant::now();
    let err = node
        .execute("CREATE TABLE quick2 (x INT)", &[])
        .expect_err("applier is dead; the second write must not succeed");
    assert!(
        matches!(err, NodeError::ApplierDead(_)),
        "expected ApplierDead, got: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "ApplierDead must fail fast, took {:?}",
        started.elapsed()
    );
    node.shutdown();
}
