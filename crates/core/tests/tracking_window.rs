//! Window-boundary semantics of tracking (`TRACE`), pinned across all
//! three physical strategies, plus the adaptive index-checkpoint
//! cadence (`SEBDB_INDEX_CHECKPOINT_BYTES`) and the operator-operand
//! error contract.
//!
//! Both window edges are inclusive (§V-A: `t_s ≤ ts ≤ t_e`); a window
//! that selects no timestamps yields an empty result, not an error;
//! and answers must not depend on whether the matching blocks live in
//! a frozen (checkpointed) index prefix or the resident tail.

use sebdb::{Executor, Ledger, Strategy};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_sql::LogicalPlan;
use sebdb_storage::{BlockStore, StoreConfig};
use sebdb_types::{Timestamp, Transaction, Value};
use std::sync::Arc;

const ORG: KeyId = KeyId([5; 8]);

fn signer() -> MacKeypair {
    MacKeypair::from_key([7u8; 32])
}

/// One block per second of logical time: block `b` carries three
/// `donate` tuples at `ts = 1_000·(b+1)` exactly, so a window edge can
/// land precisely on, just before, or just after a block's timestamp.
fn block_at(seq: u64) -> OrderedBlock {
    let ts = 1_000 * (seq + 1);
    let mut txs: Vec<Transaction> = (0..3)
        .map(|i| Transaction::new(ts, ORG, "donate", vec![Value::Int((seq * 10 + i) as i64)]))
        .collect();
    for (i, tx) in txs.iter_mut().enumerate() {
        tx.tid = seq * 100 + i as u64 + 1;
    }
    OrderedBlock {
        seq,
        timestamp_ms: ts,
        txs,
    }
}

fn ledger_with(blocks: u64) -> Ledger {
    let ledger = Ledger::new(Arc::new(BlockStore::in_memory()), signer()).unwrap();
    for seq in 0..blocks {
        ledger.append_ordered(block_at(seq)).unwrap();
    }
    ledger
}

fn trace_rows(
    ledger: &Ledger,
    window: Option<(Timestamp, Timestamp)>,
    strategy: Strategy,
) -> Vec<Vec<Value>> {
    let plan = LogicalPlan::Trace {
        window,
        operator: None,
        operation: Some("donate".into()),
    };
    Executor::new(ledger, None)
        .execute(&plan, strategy)
        .unwrap()
        .rows
}

const STRATEGIES: [Strategy; 3] = [Strategy::Scan, Strategy::Bitmap, Strategy::Layered];

#[test]
fn window_edges_are_inclusive_on_both_ends() {
    let ledger = ledger_with(8);
    for strategy in STRATEGIES {
        // Degenerate window [ts, ts] pins exactly one block's tuples.
        let rows = trace_rows(&ledger, Some((3_000, 3_000)), strategy);
        assert_eq!(rows.len(), 3, "{strategy:?}");
        for row in &rows {
            assert_eq!(row[1], Value::Timestamp(3_000));
        }
        // [ts_b, ts_{b+2}] spans three blocks, both edges included.
        let rows = trace_rows(&ledger, Some((3_000, 5_000)), strategy);
        assert_eq!(rows.len(), 9, "{strategy:?}");
        // Shrinking either edge by one tick drops exactly one block.
        assert_eq!(trace_rows(&ledger, Some((3_001, 5_000)), strategy).len(), 6);
        assert_eq!(trace_rows(&ledger, Some((3_000, 4_999)), strategy).len(), 6);
    }
}

#[test]
fn windows_selecting_no_timestamps_are_empty_not_errors() {
    let ledger = ledger_with(8);
    for strategy in STRATEGIES {
        // Strictly between two block timestamps.
        assert!(trace_rows(&ledger, Some((3_001, 3_999)), strategy).is_empty());
        // Inverted window (start > end).
        assert!(trace_rows(&ledger, Some((5_000, 3_000)), strategy).is_empty());
        // Entirely before the chain, entirely after the tip.
        assert!(trace_rows(&ledger, Some((0, 999)), strategy).is_empty());
        assert!(trace_rows(&ledger, Some((9_000, 90_000)), strategy).is_empty());
    }
}

/// Frozen-prefix vs resident-tail: checkpoint mid-chain so blocks
/// `0..6` serve from the frozen index pages while `6..12` stay in the
/// resident tail, then probe windows entirely inside the prefix,
/// entirely inside the tail, and straddling the seam.
#[test]
fn windows_answer_identically_across_frozen_prefix_and_resident_tail() {
    let dir = std::env::temp_dir().join(format!("sebdb-windowfrozen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        sync_writes: false,
        index_cache_blocks: Some(8),
        ..StoreConfig::default()
    };
    let store = Arc::new(BlockStore::open(&dir, cfg).unwrap());
    let ledger = Ledger::new(store, signer()).unwrap();
    for seq in 0..6 {
        ledger.append_ordered(block_at(seq)).unwrap();
    }
    assert!(ledger.checkpoint_indexes().unwrap() > 0);
    for seq in 6..12 {
        ledger.append_ordered(block_at(seq)).unwrap();
    }
    // (window, expected blocks matched)
    let cases: [((Timestamp, Timestamp), usize); 5] = [
        ((1_000, 4_000), 4),  // entirely frozen
        ((8_000, 11_000), 4), // entirely tail
        ((5_000, 8_000), 4),  // straddles the seam
        ((6_000, 7_000), 2),  // the two blocks around the seam
        ((1_000, 12_000), 12),
    ];
    for (window, blocks) in cases {
        for strategy in STRATEGIES {
            let rows = trace_rows(&ledger, Some(window), strategy);
            assert_eq!(rows.len(), blocks * 3, "{strategy:?} window {window:?}");
            assert!(rows.iter().all(
                |r| matches!(&r[1], Value::Timestamp(ts) if (window.0..=window.1)
                    .contains(ts))
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: a `TRACE ... BY OPERATOR` whose operand is
/// still a raw string at execution time (i.e. it bypassed the node
/// layer's name registry) fails with one uniform message about the
/// operand shape — the executor no longer leaks the node layer's
/// resolution responsibility into its error text.
#[test]
fn string_operator_reaching_the_executor_is_one_uniform_error() {
    let ledger = ledger_with(2);
    let exec = Executor::new(&ledger, None);
    for operator in [
        Value::str("alice"),         // unresolved name
        Value::Int(7),               // wrong type entirely
        Value::Bytes(vec![1, 2, 3]), // wrong length
    ] {
        let plan = LogicalPlan::Trace {
            window: None,
            operator: Some(operator.clone()),
            operation: None,
        };
        for strategy in [Strategy::Scan, Strategy::Layered, Strategy::Auto] {
            let err = exec.execute(&plan, strategy).unwrap_err().to_string();
            assert!(
                err.contains("operator must be 8 sender-id bytes"),
                "operand {operator:?} under {strategy:?}: got {err:?}"
            );
            assert!(
                !err.to_lowercase().contains("node layer"),
                "executor error leaks layering: {err:?}"
            );
        }
    }
}

/// Adaptive cadence: with `SEBDB_INDEX_CHECKPOINT_BYTES` active (here
/// via the setter) every append that pushes the resident footprint
/// over the threshold publishes fresh checkpoints, so a restart
/// replays no chain blocks; with the byte threshold unset and no
/// every-N cadence, the same chain replays everything on open.
#[test]
fn byte_threshold_drives_checkpoint_cadence() {
    let cfg = StoreConfig {
        sync_writes: false,
        ..StoreConfig::default()
    };
    let run = |bytes: u64| -> u64 {
        let dir = std::env::temp_dir().join(format!(
            "sebdb-bytescadence-{}-{}",
            bytes,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap());
            let ledger = Ledger::new(store, signer()).unwrap();
            ledger.set_checkpoint_bytes(bytes);
            for seq in 0..10 {
                ledger.append_ordered(block_at(seq)).unwrap();
            }
        }
        let store = Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap());
        store.stats.reset();
        let ledger = Ledger::new(Arc::clone(&store), signer()).unwrap();
        assert_eq!(ledger.height(), 10);
        // Either way the reopened chain answers tracking correctly.
        assert_eq!(trace_rows(&ledger, None, Strategy::Layered).len(), 30);
        let reads = store.stats.snapshot().0;
        let _ = std::fs::remove_dir_all(&dir);
        reads
    };
    // Threshold of one byte: every block crosses it, checkpoints are
    // always fresh, open replays only the tip-hash read.
    assert!(run(1) <= 1, "byte-driven cadence left a replay tail");
    // Threshold disabled (and every-N unset): nothing was frozen, so
    // the open must replay the whole chain.
    assert!(run(0) >= 10, "no cadence configured yet blocks were frozen");
}

/// The environment variable seeds the threshold at construction.
#[test]
fn byte_threshold_env_var_is_honored() {
    let dir = std::env::temp_dir().join(format!("sebdb-bytesenv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        sync_writes: false,
        ..StoreConfig::default()
    };
    std::env::set_var(sebdb::INDEX_CHECKPOINT_BYTES_ENV, "1");
    let ledger = Ledger::new(
        Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap()),
        signer(),
    );
    std::env::remove_var(sebdb::INDEX_CHECKPOINT_BYTES_ENV);
    let ledger = ledger.unwrap();
    for seq in 0..4 {
        ledger.append_ordered(block_at(seq)).unwrap();
    }
    drop(ledger);
    let store = Arc::new(BlockStore::open(&dir, cfg).unwrap());
    store.stats.reset();
    let reopened = Ledger::new(Arc::clone(&store), signer()).unwrap();
    assert_eq!(reopened.height(), 4);
    assert!(
        store.stats.snapshot().0 <= 1,
        "env-seeded byte cadence left a replay tail"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
