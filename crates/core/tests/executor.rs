//! Executor-level tests: the three blockchain operators and the range
//! paths against hand-built ledgers, including edge cases the figure
//! harness never hits.

use sebdb::{Executor, Ledger, Strategy};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_offchain::OffchainDb;
use sebdb_sql::{BoundPredicate, BoundPredicateKind, CompareOp, LogicalPlan};
use sebdb_storage::BlockStore;
use sebdb_types::{Column, DataType, TableSchema, Transaction, Value};
use std::sync::Arc;

fn schema(name: &str, cols: &[(&str, DataType)]) -> TableSchema {
    TableSchema::new(
        name,
        cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
    )
}

fn ledger() -> Ledger {
    Ledger::new(
        Arc::new(BlockStore::in_memory()),
        MacKeypair::from_key([3; 32]),
    )
    .unwrap()
}

/// Appends one block per tx-group; timestamps are `block*1000 + slot`.
fn append_blocks(ledger: &Ledger, groups: Vec<Vec<(&str, KeyId, Vec<Value>)>>) {
    let mut tid = 1;
    for (b, group) in groups.into_iter().enumerate() {
        let txs: Vec<Transaction> = group
            .into_iter()
            .enumerate()
            .map(|(slot, (tname, sender, values))| {
                let mut t = Transaction::new(b as u64 * 1000 + slot as u64, sender, tname, values);
                t.tid = tid;
                tid += 1;
                t
            })
            .collect();
        ledger
            .append_ordered(OrderedBlock {
                seq: b as u64,
                timestamp_ms: (b as u64 + 1) * 1000,
                txs,
            })
            .unwrap();
    }
}

const A: KeyId = KeyId([1; 8]);
const B: KeyId = KeyId([2; 8]);

#[test]
fn empty_chain_queries_return_empty() {
    let l = ledger();
    let exec = Executor::new(&l, None);
    let s = schema("donate", &[("amount", DataType::Decimal)]);
    let plan = LogicalPlan::Query {
        schema: s,
        projection: vec![],
        predicates: vec![],
        window: None,
    };
    for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Auto] {
        assert!(exec.execute(&plan, strat).unwrap().is_empty());
    }
    let trace = LogicalPlan::Trace {
        window: None,
        operator: Some(Value::Bytes(A.as_bytes().to_vec())),
        operation: None,
    };
    assert!(exec.execute(&trace, Strategy::Layered).unwrap().is_empty());
}

#[test]
fn layered_without_index_is_a_clear_error() {
    let l = ledger();
    append_blocks(&l, vec![vec![("donate", A, vec![Value::decimal(5)])]]);
    let exec = Executor::new(&l, None);
    let s = schema("donate", &[("amount", DataType::Decimal)]);
    let plan = LogicalPlan::Query {
        predicates: vec![BoundPredicate {
            column: s.resolve("amount").unwrap(),
            kind: BoundPredicateKind::Between(Value::decimal(0), Value::decimal(10)),
        }],
        schema: s,
        projection: vec![],
        window: None,
    };
    let err = exec.execute(&plan, Strategy::Layered).unwrap_err();
    assert!(err.to_string().contains("no layered index"));
}

#[test]
fn non_indexable_predicates_still_filter() {
    // `<` and `<>` can't drive the layered index but must still apply.
    let l = ledger();
    append_blocks(
        &l,
        vec![vec![
            ("donate", A, vec![Value::decimal(5)]),
            ("donate", A, vec![Value::decimal(10)]),
            ("donate", A, vec![Value::decimal(15)]),
        ]],
    );
    let exec = Executor::new(&l, None);
    let s = schema("donate", &[("amount", DataType::Decimal)]);
    for (op, want) in [
        (CompareOp::Lt, 1),
        (CompareOp::Le, 2),
        (CompareOp::Gt, 1),
        (CompareOp::Ge, 2),
        (CompareOp::Ne, 2),
        (CompareOp::Eq, 1),
    ] {
        let plan = LogicalPlan::Query {
            predicates: vec![BoundPredicate {
                column: s.resolve("amount").unwrap(),
                kind: BoundPredicateKind::Compare(op, Value::decimal(10)),
            }],
            schema: s.clone(),
            projection: vec![],
            window: None,
        };
        let got = exec.execute(&plan, Strategy::Scan).unwrap().len();
        assert_eq!(got, want, "{op:?}");
    }
}

#[test]
fn conjunctive_predicates_all_apply_on_layered_path() {
    let l = ledger();
    append_blocks(
        &l,
        vec![vec![
            ("donate", A, vec![Value::str("jack"), Value::decimal(10)]),
            ("donate", A, vec![Value::str("rose"), Value::decimal(10)]),
            ("donate", A, vec![Value::str("jack"), Value::decimal(90)]),
        ]],
    );
    let s = schema(
        "donate",
        &[("donor", DataType::Str), ("amount", DataType::Decimal)],
    );
    l.create_layered_index(&s, "amount", Some(vec![0, 500_000, 1_000_000]))
        .unwrap();
    let exec = Executor::new(&l, None);
    let plan = LogicalPlan::Query {
        predicates: vec![
            BoundPredicate {
                column: s.resolve("amount").unwrap(),
                kind: BoundPredicateKind::Between(Value::decimal(5), Value::decimal(50)),
            },
            BoundPredicate {
                column: s.resolve("donor").unwrap(),
                kind: BoundPredicateKind::Compare(CompareOp::Eq, Value::str("jack")),
            },
        ],
        schema: s,
        projection: vec![],
        window: None,
    };
    // Driver predicate (amount) via the index; residual (donor) must
    // still filter out rose.
    assert_eq!(exec.execute(&plan, Strategy::Layered).unwrap().len(), 1);
    assert_eq!(exec.execute(&plan, Strategy::Scan).unwrap().len(), 1);
}

#[test]
fn join_duplicate_keys_produce_cross_products() {
    let l = ledger();
    // 2 transfers and 3 distributes share org "x" → 6 join rows.
    append_blocks(
        &l,
        vec![
            vec![
                ("transfer", A, vec![Value::str("x")]),
                ("transfer", A, vec![Value::str("x")]),
            ],
            vec![
                ("distribute", B, vec![Value::str("x")]),
                ("distribute", B, vec![Value::str("x")]),
                ("distribute", B, vec![Value::str("x")]),
            ],
        ],
    );
    let left = schema("transfer", &[("organization", DataType::Str)]);
    let right = schema("distribute", &[("organization", DataType::Str)]);
    l.create_layered_index(&left, "organization", None).unwrap();
    l.create_layered_index(&right, "organization", None)
        .unwrap();
    let exec = Executor::new(&l, None);
    let plan = LogicalPlan::OnChainJoin {
        left_col: left.resolve("organization").unwrap(),
        right_col: right.resolve("organization").unwrap(),
        left,
        right,
        window: None,
    };
    for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
        assert_eq!(exec.execute(&plan, strat).unwrap().len(), 6, "{strat:?}");
    }
}

#[test]
fn self_join_on_same_table() {
    let l = ledger();
    append_blocks(
        &l,
        vec![vec![
            ("transfer", A, vec![Value::str("x")]),
            ("transfer", B, vec![Value::str("x")]),
        ]],
    );
    let s = schema("transfer", &[("organization", DataType::Str)]);
    l.create_layered_index(&s, "organization", None).unwrap();
    let exec = Executor::new(&l, None);
    let plan = LogicalPlan::OnChainJoin {
        left_col: s.resolve("organization").unwrap(),
        right_col: s.resolve("organization").unwrap(),
        left: s.clone(),
        right: s,
        window: None,
    };
    // 2 × 2 pairs.
    for strat in [Strategy::Scan, Strategy::Layered] {
        assert_eq!(exec.execute(&plan, strat).unwrap().len(), 4, "{strat:?}");
    }
}

#[test]
fn join_respects_time_window() {
    let l = ledger();
    append_blocks(
        &l,
        vec![
            vec![("transfer", A, vec![Value::str("x")])], // block 0, ts 0
            vec![("distribute", B, vec![Value::str("x")])], // block 1, ts 1000
        ],
    );
    let left = schema("transfer", &[("organization", DataType::Str)]);
    let right = schema("distribute", &[("organization", DataType::Str)]);
    let exec = Executor::new(&l, None);
    // Window covering only block 0 excludes the distribute side.
    let plan = LogicalPlan::OnChainJoin {
        left_col: left.resolve("organization").unwrap(),
        right_col: right.resolve("organization").unwrap(),
        left,
        right,
        window: Some((0, 999)),
    };
    assert!(exec.execute(&plan, Strategy::Scan).unwrap().is_empty());
}

#[test]
fn onoff_join_duplicates_and_empty_sides() {
    let l = ledger();
    append_blocks(
        &l,
        vec![vec![
            ("distribute", A, vec![Value::str("tom")]),
            ("distribute", A, vec![Value::str("tom")]),
            ("distribute", A, vec![Value::str("none")]),
        ]],
    );
    let on = schema("distribute", &[("donee", DataType::Str)]);
    l.create_layered_index(&on, "donee", None).unwrap();

    let db = Arc::new(OffchainDb::new());
    db.create_table(
        "doneeinfo",
        vec![
            Column::new("donee", DataType::Str),
            Column::new("income", DataType::Decimal),
        ],
    )
    .unwrap();
    let conn = db.connect();
    // Two off-chain rows for tom → 2 × 2 = 4 join rows.
    conn.insert("doneeinfo", vec![Value::str("tom"), Value::decimal(1)])
        .unwrap();
    conn.insert("doneeinfo", vec![Value::str("tom"), Value::decimal(2)])
        .unwrap();

    let exec = Executor::new(&l, Some(&conn));
    let plan = LogicalPlan::OnOffJoin {
        on_col: on.resolve("donee").unwrap(),
        on_table: on.clone(),
        off_table: "doneeinfo".into(),
        off_col: 0,
        off_columns: vec![
            Column::new("donee", DataType::Str),
            Column::new("income", DataType::Decimal),
        ],
        window: None,
    };
    for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
        assert_eq!(exec.execute(&plan, strat).unwrap().len(), 4, "{strat:?}");
    }

    // Empty off-chain table → empty join, no error.
    conn.delete("doneeinfo", &sebdb_offchain::Predicate::True)
        .unwrap();
    assert!(exec.execute(&plan, Strategy::Layered).unwrap().is_empty());
}

#[test]
fn onoff_join_without_offchain_connection_errors() {
    let l = ledger();
    let exec = Executor::new(&l, None);
    let on = schema("distribute", &[("donee", DataType::Str)]);
    let plan = LogicalPlan::OnOffJoin {
        on_col: on.resolve("donee").unwrap(),
        on_table: on,
        off_table: "doneeinfo".into(),
        off_col: 0,
        off_columns: vec![Column::new("donee", DataType::Str)],
        window: None,
    };
    assert!(exec.execute(&plan, Strategy::Auto).is_err());
}

#[test]
fn tracking_dimensions_intersect_exactly() {
    let l = ledger();
    append_blocks(
        &l,
        vec![
            vec![
                ("donate", A, vec![Value::Int(1)]),
                ("transfer", A, vec![Value::Int(2)]),
                ("transfer", B, vec![Value::Int(3)]),
            ],
            vec![
                ("transfer", A, vec![Value::Int(4)]),
                ("donate", B, vec![Value::Int(5)]),
            ],
        ],
    );
    let exec = Executor::new(&l, None);
    let run = |operator: Option<KeyId>, operation: Option<&str>, strat| {
        let plan = LogicalPlan::Trace {
            window: None,
            operator: operator.map(|k| Value::Bytes(k.as_bytes().to_vec())),
            operation: operation.map(str::to_owned),
        };
        exec.execute(&plan, strat).unwrap().len()
    };
    for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
        assert_eq!(run(Some(A), None, strat), 3, "{strat:?} A");
        assert_eq!(run(None, Some("transfer"), strat), 3, "{strat:?} transfer");
        assert_eq!(run(Some(A), Some("transfer"), strat), 2, "{strat:?} both");
        assert_eq!(run(Some(B), Some("donate"), strat), 1, "{strat:?} B donate");
    }
}

#[test]
fn tracking_needs_a_dimension() {
    let l = ledger();
    let exec = Executor::new(&l, None);
    let plan = LogicalPlan::Trace {
        window: None,
        operator: None,
        operation: None,
    };
    assert!(exec.execute(&plan, Strategy::Layered).is_err());
}

#[test]
fn writes_rejected_by_executor() {
    let l = ledger();
    let exec = Executor::new(&l, None);
    let plan = LogicalPlan::Insert {
        table: "donate".into(),
        row: vec![],
    };
    assert!(exec.execute(&plan, Strategy::Auto).is_err());
}

#[test]
fn auto_strategy_picks_layered_for_selective_queries() {
    let l = ledger();
    let groups: Vec<Vec<(&str, KeyId, Vec<Value>)>> = (0..30)
        .map(|b| {
            (0..20)
                .map(|i| ("donate", A, vec![Value::decimal((b * 20 + i) as i64)]))
                .collect()
        })
        .collect();
    append_blocks(&l, groups);
    let s = schema("donate", &[("amount", DataType::Decimal)]);
    l.create_layered_index(&s, "amount", None).unwrap();
    let exec = Executor::new(&l, None);
    let plan = LogicalPlan::Query {
        predicates: vec![BoundPredicate {
            column: s.resolve("amount").unwrap(),
            kind: BoundPredicateKind::Between(Value::decimal(100), Value::decimal(105)),
        }],
        schema: s,
        projection: vec![],
        window: None,
    };
    l.store().stats.reset();
    let rows = exec.execute(&plan, Strategy::Auto).unwrap();
    assert_eq!(rows.len(), 6);
    let (blocks_read, _, _) = l.store().stats.snapshot();
    assert!(
        blocks_read < 30,
        "auto should not scan all blocks (read {blocks_read})"
    );
}
