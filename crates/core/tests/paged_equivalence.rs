//! Paged-index vs fully-resident equivalence (DESIGN §13 acceptance).
//!
//! The disk-resident partitioned indexes — frozen checkpoints served
//! through the resident fence-pointer top level and the bounded
//! index-block cache — must be an invisible representation change:
//! every query suite (point, range, tracking, join) answers
//! byte-identically to the fully-resident reference (no checkpoints,
//! the `cache=∞` configuration), at applier lane counts 1 and 4, with
//! a cold and a warm index-block cache, and across a restart that
//! replays only the tail behind the newest checkpoints.
//!
//! CI drives this suite at both `SEBDB_THREADS=1` and `SEBDB_THREADS=4`.

use sebdb::{ApplyPipeline, Executor, Ledger, QueryResult, SchemaManager, Strategy};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_sql::{BoundPredicate, BoundPredicateKind, CompareOp, LogicalPlan};
use sebdb_storage::{BlockStore, StoreConfig};
use sebdb_types::{Codec, Column, DataType, TableSchema, Transaction, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SENDER: KeyId = KeyId([4; 8]);
const BLOCKS: u64 = 120;
/// Mid-chain cadence: the final checkpoints freeze blocks `[0, 112)`
/// and leave an 8-block resident tail, so queries cross the
/// frozen/tail seam.
const CHECKPOINT_EVERY: u64 = 16;

fn signer() -> MacKeypair {
    MacKeypair::from_key([11u8; 32])
}

fn donate_schema(n: u64) -> TableSchema {
    TableSchema::new(
        format!("donate{n}"),
        vec![
            Column::new("donor", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// Mixed DDL/insert blocks with fixed timestamps so two runs seal
/// bit-for-bit identical blocks (same workload as the pipeline
/// equivalence suite).
fn mixed_blocks(count: u64) -> Vec<OrderedBlock> {
    let mut tid = 1u64;
    (0..count)
        .map(|seq| {
            let ts = 10_000 + seq;
            let mut txs = Vec::new();
            if seq % 10 == 0 {
                txs.push(SchemaManager::schema_transaction(
                    &donate_schema(seq / 10),
                    ts,
                    SENDER,
                ));
            }
            let created = seq / 10 + 1;
            for i in 0..5u64 {
                let table = format!("donate{}", (seq / 10).saturating_sub(i % created));
                txs.push(Transaction::new(
                    ts,
                    SENDER,
                    &table,
                    vec![Value::str("d"), Value::decimal((seq * 5 + i) as i64 % 97)],
                ));
            }
            for tx in &mut txs {
                tx.tid = tid;
                tid += 1;
            }
            OrderedBlock {
                seq,
                timestamp_ms: ts,
                txs,
            }
        })
        .collect()
}

/// Drives `blocks` through an [`ApplyPipeline`] over `store` with the
/// given depth, lane count, and index-checkpoint cadence (`0` = never
/// checkpoint — the fully-resident reference).
fn run_lanes_on(
    store: Arc<BlockStore>,
    depth: usize,
    lanes: usize,
    checkpoint_every: u64,
    blocks: &[OrderedBlock],
) -> (Arc<Ledger>, Arc<SchemaManager>) {
    let ledger = Arc::new(Ledger::new(store, signer()).unwrap());
    ledger.set_checkpoint_every(checkpoint_every);
    let schemas = Arc::new(SchemaManager::new(None));
    let stopped = Arc::new(AtomicBool::new(false));
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut pipe = ApplyPipeline::start_with_lanes(
        Arc::clone(&ledger),
        Arc::clone(&schemas),
        rx,
        Arc::clone(&stopped),
        depth,
        lanes,
    );
    for b in blocks {
        tx.send(b.clone()).unwrap();
    }
    assert!(
        ledger.wait_for_height(
            blocks.len() as u64,
            Instant::now() + Duration::from_secs(60),
            || pipe.health().is_poisoned()
        ),
        "pipeline depth {depth} lanes {lanes} never applied all blocks: {:?}",
        pipe.health().error()
    );
    stopped.store(true, Ordering::Relaxed);
    drop(tx);
    pipe.join();
    (ledger, schemas)
}

/// The four acceptance suites — point, range, tracking, join — each
/// with the strategies that exercise distinct index families.
fn suites(schemas: &SchemaManager) -> Vec<(String, LogicalPlan, Strategy)> {
    let s3 = schemas.get("donate3").unwrap();
    let s4 = schemas.get("donate4").unwrap();
    let query = |schema: &TableSchema, kind: BoundPredicateKind| LogicalPlan::Query {
        predicates: vec![BoundPredicate {
            column: schema.resolve("amount").unwrap(),
            kind,
        }],
        schema: schema.clone(),
        projection: vec![],
        window: None,
    };
    let mut out = Vec::new();
    for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
        out.push((
            format!("point/{strat:?}"),
            query(
                &s3,
                BoundPredicateKind::Compare(CompareOp::Eq, Value::decimal(42)),
            ),
            strat,
        ));
        out.push((
            format!("range/{strat:?}"),
            query(
                &s3,
                BoundPredicateKind::Between(Value::decimal(10), Value::decimal(60)),
            ),
            strat,
        ));
    }
    out.push((
        "tracking/Layered".into(),
        LogicalPlan::Trace {
            window: None,
            operator: Some(Value::Bytes(SENDER.as_bytes().to_vec())),
            operation: None,
        },
        Strategy::Layered,
    ));
    for strat in [Strategy::Scan, Strategy::Layered] {
        out.push((
            format!("join/{strat:?}"),
            LogicalPlan::OnChainJoin {
                left_col: s3.resolve("amount").unwrap(),
                right_col: s4.resolve("amount").unwrap(),
                left: s3.clone(),
                right: s4.clone(),
                window: None,
            },
            strat,
        ));
    }
    out
}

fn run_suites(exec: &Executor, schemas: &SchemaManager) -> Vec<(String, QueryResult)> {
    suites(schemas)
        .into_iter()
        .map(|(name, plan, strat)| {
            let r = exec
                .execute(&plan, strat)
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            (name, r)
        })
        .collect()
}

fn assert_suites_match(
    reference: &[(String, QueryResult)],
    got: &[(String, QueryResult)],
    ctx: &str,
) {
    for ((name, a), (_, b)) in reference.iter().zip(got) {
        assert_eq!(a, b, "{ctx}: {name} diverged from the resident reference");
        assert!(!a.is_empty(), "{ctx}: {name} reference suite is empty");
    }
}

/// Builds the per-table layered/ALI pairs both sides query through
/// (both join operands, so the layered join plan has its indexes).
fn index_amount(ledger: &Ledger, schemas: &SchemaManager) {
    for table in ["donate3", "donate4"] {
        let schema = schemas.get(table).unwrap();
        ledger
            .create_layered_index(&schema, "amount", None)
            .unwrap();
    }
}

/// Core acceptance: paged (disk, mid-chain checkpoints, bounded cache)
/// equals resident (memory, no checkpoints) byte for byte, at lanes 1
/// and 4, cold and warm cache, and across a restart.
fn paged_matches_resident(lanes: usize, cache_blocks: usize) {
    let blocks = mixed_blocks(BLOCKS);

    // Reference: fully resident, sequential.
    let (ref_ledger, ref_schemas) =
        run_lanes_on(Arc::new(BlockStore::in_memory()), 1, 1, 0, &blocks);
    index_amount(&ref_ledger, &ref_schemas);
    let ref_exec = Executor::new(&ref_ledger, None);
    let reference = run_suites(&ref_exec, &ref_schemas);

    // Paged: disk store, checkpoint cadence, bounded index-block cache.
    let dir = std::env::temp_dir().join(format!(
        "sebdb-pagedeq-l{lanes}-c{cache_blocks}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        sync_writes: false,
        index_cache_blocks: Some(cache_blocks),
        ..StoreConfig::default()
    };
    let depth = lanes.max(2);
    {
        let store = Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap());
        let (ledger, schemas) = run_lanes_on(store, depth, lanes, CHECKPOINT_EVERY, &blocks);
        for bid in 0..BLOCKS {
            assert_eq!(
                ref_ledger.read_block(bid).unwrap().to_bytes(),
                ledger.read_block(bid).unwrap().to_bytes(),
                "block {bid} differs (lanes {lanes})"
            );
        }
        index_amount(&ledger, &schemas);
        // Freeze everything — including the fresh per-table pair — so
        // the suites page the frozen prefix instead of the tail.
        let resident_before = ledger.index_memory_bytes();
        let published = ledger.checkpoint_indexes().unwrap();
        assert!(published > 0, "disk backend published no checkpoints");
        let resident_after = ledger.index_memory_bytes();
        assert!(
            resident_after < resident_before,
            "freezing must shed resident index bytes: {resident_before} -> {resident_after}"
        );
        let exec = Executor::new(&ledger, None);
        assert_suites_match(&reference, &run_suites(&exec, &schemas), "pre-restart");
    }

    // Restart: open loads the checkpoints, replays only the tail, and
    // the cold-cache suites still match; a second (warm) pass hits the
    // index-block cache.
    let store = Arc::new(BlockStore::open(&dir, cfg).unwrap());
    let ledger = Arc::new(Ledger::new(Arc::clone(&store), signer()).unwrap());
    assert_eq!(ledger.height(), BLOCKS);
    ledger.verify_chain().unwrap();
    let schemas = SchemaManager::new(None);
    for bid in 0..BLOCKS {
        schemas.apply_block(&ledger.read_block(bid).unwrap());
    }
    // The per-table pair reattaches from its checkpoint (tail replay
    // only — its frozen prefix covers the whole chain).
    index_amount(&ledger, &schemas);
    let exec = Executor::new(&ledger, None);
    store.stats.reset();
    assert_suites_match(
        &reference,
        &run_suites(&exec, &schemas),
        "post-restart cold",
    );
    let (cold_hits, cold_misses) = store.stats.index_cache_counts();
    assert!(
        cold_misses > 0,
        "cold suites never paged an index block (lanes {lanes})"
    );
    assert_suites_match(
        &reference,
        &run_suites(&exec, &schemas),
        "post-restart warm",
    );
    let (warm_hits, _) = store.stats.index_cache_counts();
    assert!(
        warm_hits > cold_hits,
        "warm suites never hit the index-block cache (lanes {lanes})"
    );
    // The cache tier stays within its configured bound.
    assert!(
        store.index_cache().resident_blocks() <= cache_blocks.max(8),
        "index-block cache exceeded its capacity"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn paged_indexes_match_resident_reference_lane1() {
    paged_matches_resident(1, 1024);
}

#[test]
fn paged_indexes_match_resident_reference_lane4_tiny_cache() {
    // An eviction-heavy cache (8 blocks across 8 shards) must only be
    // slower, never different.
    paged_matches_resident(4, 8);
}

/// O(1)-open contract: with up-to-date checkpoints the restart replays
/// only the tail blocks past the newest checkpoint, and the recorded
/// open time covers the whole constructor.
#[test]
fn open_replays_only_the_tail_behind_checkpoints() {
    let blocks = mixed_blocks(BLOCKS);
    let dir = std::env::temp_dir().join(format!("sebdb-pagedopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        sync_writes: false,
        ..StoreConfig::default()
    };
    {
        let store = Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap());
        let (ledger, _) = run_lanes_on(store, 2, 1, CHECKPOINT_EVERY, &blocks);
        // Freeze the complete state so the replayed tail is empty.
        ledger.checkpoint_indexes().unwrap();
    }
    let store = Arc::new(BlockStore::open(&dir, cfg).unwrap());
    store.stats.reset();
    let ledger = Ledger::new(Arc::clone(&store), signer()).unwrap();
    assert_eq!(ledger.height(), BLOCKS);
    // The replay loop never read a chain block: every family resumed
    // from its checkpoint at the full height. (The tip-hash read is
    // the single block read the open still performs.)
    let block_reads = store.stats.snapshot().0;
    assert!(
        block_reads <= 1,
        "checkpointed open replayed {block_reads} block(s); expected at most the tip read"
    );
    assert!(ledger.index_memory_bytes() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
