//! The ledger: the chain of blocks plus every index over it.
//!
//! One `Ledger` per node. It seals ordered batches from the consensus
//! layer into blocks, appends them to the block store (the single copy
//! of on-chain data), keeps the chain linkage verified, and maintains
//! all four index structures of §IV-B/§VI on every append:
//! block-level B⁺-tree, table-level bitmaps, layered indexes, and
//! authenticated layered indexes (ALIs). The two system tracking
//! indexes on `SenID` and `Tname` ("created on all tables for all
//! historical transactions", §V-A) exist from genesis.

use parking_lot::{Condvar, Mutex, RwLock};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sha256::Digest;
use sebdb_crypto::sig::{MacKeypair, Signer};
use sebdb_index::{
    column_slug, family_ali, family_block, family_layered, family_table, AuthenticatedLayeredIndex,
    Bitmap, BlockLevelIndex, EqualDepthHistogram, LayeredIndex, TableBitmapIndex,
};
use sebdb_parallel::Tracked;
use sebdb_storage::{BlockCache, BlockStore, CacheMode, CachedStore, StorageError, TxCache, TxPtr};
use sebdb_types::{Block, BlockId, ColumnRef, TableSchema, Timestamp, Transaction, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Errors from the ledger.
#[derive(Debug)]
pub enum LedgerError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Chain linkage or integrity violation.
    BadBlock(String),
    /// Index configuration problem.
    BadIndex(String),
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::Storage(e) => write!(f, "storage: {e}"),
            LedgerError::BadBlock(m) => write!(f, "bad block: {m}"),
            LedgerError::BadIndex(m) => write!(f, "bad index: {m}"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<StorageError> for LedgerError {
    fn from(e: StorageError) -> Self {
        LedgerError::Storage(e)
    }
}

/// Identifies a layered index: `(table, column)`, with `None` table
/// meaning "all tables" (system indexes).
pub type IndexKey = (Option<String>, String);

/// Number of relation shards the per-table index families are
/// partitioned into. Fixed (like the 8-way sharded caches) so shard
/// assignment is independent of the applier lane count: lane *k* of an
/// *L*-lane pipeline owns every shard with `shard % L == k`.
pub const INDEX_SHARDS: usize = 8;

// The index shard count and the storage layer's relation partition
// count must stay in lockstep — `shard_of` below is the partition
// mapping.
const _: () = assert!(INDEX_SHARDS == sebdb_storage::RELATION_PARTITIONS);

/// The shard a (lowercased) table name's index families live in.
/// Delegates to the storage layer's relation partition mapping
/// ([`sebdb_storage::partition_of`]) so a relation's tuples (partition
/// extents) and its index families always land in the same numbered
/// slice of the system.
pub fn shard_of(table: &str) -> usize {
    sebdb_storage::partition_of(table)
}

/// The shard an index key lives in: per-table keys hash their table,
/// system (`None`-table) keys live in the extra chain shard
/// ([`INDEX_SHARDS`], owned by lane 0 alongside the block-level and
/// bitmap indexes, since their maintenance walks every tuple anyway).
fn shard_of_key(key: &IndexKey) -> usize {
    match &key.0 {
        Some(table) => shard_of(table),
        None => INDEX_SHARDS,
    }
}

/// One relation shard: the layered and authenticated index families of
/// the tables hashing to it, each behind its own lock so applier lanes
/// maintain disjoint shards with zero contention.
#[derive(Default)]
struct IndexShard {
    layered: RwLock<HashMap<IndexKey, LayeredIndex>>,
    alis: RwLock<HashMap<IndexKey, AuthenticatedLayeredIndex>>,
}

/// Number of histogram buckets for continuous layered indexes (the
/// paper sets the histogram depth to 100 in §VII-D).
pub const DEFAULT_HISTOGRAM_BUCKETS: usize = 100;

/// Environment variable selecting the index-checkpoint cadence: every
/// `N` indexed blocks each index family freezes its state into an
/// on-disk checkpoint and drops its resident tail. `0` (the default)
/// disables automatic checkpointing.
pub const INDEX_CHECKPOINT_EVERY_ENV: &str = "SEBDB_INDEX_CHECKPOINT_EVERY";

fn checkpoint_every_from_env() -> u64 {
    std::env::var(INDEX_CHECKPOINT_EVERY_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Environment variable selecting the adaptive index-checkpoint
/// threshold in bytes: once an index scope's resident
/// (`memory_bytes()`) footprint crosses it after a block, that scope
/// freezes into an on-disk checkpoint and drops its tail — cadence
/// driven by memory pressure instead of block count. `0` (the
/// default) leaves the every-N cadence of
/// [`INDEX_CHECKPOINT_EVERY_ENV`] alone. The threshold should sit
/// comfortably above a scope's frozen fence/meta footprint (a few KB
/// per family), which stays resident across checkpoints.
pub const INDEX_CHECKPOINT_BYTES_ENV: &str = "SEBDB_INDEX_CHECKPOINT_BYTES";

fn checkpoint_bytes_from_env() -> u64 {
    std::env::var(INDEX_CHECKPOINT_BYTES_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// Checks a transaction's `Sig` system attribute against the sender's
/// registered key material ("Sig guarantees unforgeability of
/// transactions", §IV-A). Returning `false` rejects the whole block.
pub type TxVerifier = dyn Fn(&Transaction) -> bool + Send + Sync;

/// The ledger.
pub struct Ledger {
    store: Arc<BlockStore>,
    cached: RwLock<Arc<CachedStore>>,
    block_index: RwLock<BlockLevelIndex>,
    table_index: RwLock<TableBitmapIndex>,
    /// [`INDEX_SHARDS`] relation shards plus one chain shard (the
    /// system `None`-table indexes) at position [`INDEX_SHARDS`].
    shards: Vec<IndexShard>,
    last_hash: RwLock<Digest>,
    signer: MacKeypair,
    tx_verifier: RwLock<Option<Box<TxVerifier>>>,
    /// Fully-applied height: blocks `0..applied` are persisted AND
    /// indexed (schemas included, at the node layer). The write
    /// pipeline persists ahead of this; readers never see a height
    /// whose indexes are still being built.
    ///
    /// Both applied-height cells carry the zero-cost [`Tracked`]
    /// marker: the applier model suite wraps the same state in the
    /// model checker's race-detecting twin (DESIGN.md §14).
    applied: Tracked<AtomicU64>,
    /// Per-lane applied heights, installed by a lane pipeline via
    /// [`Self::install_applied_vector`]. `applied` is the running
    /// minimum over the vector, so cross-relation readers (joins,
    /// GET BLOCK, TRACE) wait on the min applied height and stay
    /// consistent. `None` outside a lane pipeline.
    lane_heights: RwLock<Option<Arc<Vec<Tracked<AtomicU64>>>>>,
    /// Watch pair for [`Self::wait_for_height`]: `applied` is updated
    /// under this mutex so waiters cannot miss a notify.
    height_watch: Mutex<()>,
    height_cv: Condvar,
    /// Fault-injection hook run before a block's indexes are built.
    /// Concurrency tests use it to panic or park the indexer stage at
    /// a precise block boundary; production paths never install one.
    index_fault: RwLock<Option<Box<IndexFaultHook>>>,
    /// Automatic index-checkpoint cadence in blocks (`0` = disabled);
    /// seeded from [`INDEX_CHECKPOINT_EVERY_ENV`].
    checkpoint_every: AtomicU64,
    /// Adaptive checkpoint threshold in resident bytes (`0` =
    /// disabled); seeded from [`INDEX_CHECKPOINT_BYTES_ENV`].
    checkpoint_bytes: AtomicU64,
    /// Registered incremental materialized `TRACE` views (see
    /// [`crate::views`]).
    views: crate::views::ViewEngine,
}

/// Hook invoked with each block just before it is indexed (see
/// [`Ledger::set_index_fault`]).
pub type IndexFaultHook = dyn Fn(&Block) + Send + Sync;

impl Ledger {
    /// Creates a ledger over `store` (which must be empty or previously
    /// written by a ledger with the same configuration). The system
    /// tracking indexes on `SenID` and `Tname` are created immediately.
    pub fn new(store: Arc<BlockStore>, signer: MacKeypair) -> Result<Self, LedgerError> {
        let opened = Instant::now();
        let cached = Arc::new(CachedStore::new(Arc::clone(&store), CacheMode::None));
        let ledger = Ledger {
            store,
            cached: RwLock::new(cached),
            block_index: RwLock::new(BlockLevelIndex::new()),
            table_index: RwLock::new(TableBitmapIndex::new()),
            shards: (0..=INDEX_SHARDS).map(|_| IndexShard::default()).collect(),
            last_hash: RwLock::new(Digest::ZERO),
            signer,
            tx_verifier: RwLock::new(None),
            applied: Tracked::new(AtomicU64::new(0)),
            lane_heights: RwLock::new(None),
            height_watch: Mutex::new(()),
            height_cv: Condvar::new(),
            index_fault: RwLock::new(None),
            checkpoint_every: AtomicU64::new(checkpoint_every_from_env()),
            checkpoint_bytes: AtomicU64::new(checkpoint_bytes_from_env()),
            views: crate::views::ViewEngine::default(),
        };
        // Attach frozen prefixes first: each valid index checkpoint
        // behind the manifest commit point replaces replaying the
        // blocks it covers. Stale or corrupt checkpoints come back as
        // `None` (the store already deleted them) and that family
        // rebuilds from block zero.
        let mut frozen_loaded = 0usize;
        if let Some(r) = ledger.store.load_index_checkpoint(&family_block())? {
            *ledger.block_index.write() = BlockLevelIndex::from_frozen(r);
            frozen_loaded += 1;
        }
        if let Some(r) = ledger.store.load_index_checkpoint(&family_table())? {
            *ledger.table_index.write() = TableBitmapIndex::from_frozen(r);
            frozen_loaded += 1;
        }
        {
            let chain = &ledger.shards[INDEX_SHARDS];
            let mut layered = chain.layered.write();
            let mut alis = chain.alis.write();
            for (name, col) in [("sen_id", ColumnRef::SenId), ("tname", ColumnRef::Tname)] {
                let idx = match ledger
                    .store
                    .load_index_checkpoint(&family_layered(None, name))?
                {
                    Some(r) => {
                        frozen_loaded += 1;
                        LayeredIndex::from_frozen(None, col, r)
                    }
                    None => LayeredIndex::new_discrete(None, col),
                };
                layered.insert((None, name.into()), idx);
                let ali = match ledger
                    .store
                    .load_index_checkpoint(&family_ali(None, name))?
                {
                    Some(r) => {
                        frozen_loaded += 1;
                        AuthenticatedLayeredIndex::from_frozen(None, col, r)
                    }
                    None => AuthenticatedLayeredIndex::new_discrete(None, col),
                };
                alis.insert((None, name.into()), ali);
            }
        }
        // Rebuild indexes from blocks past the lowest frozen height
        // (restart path). A crash between persist and index leaves
        // blocks on disk with no index entries; this replay makes them
        // whole again, so the applied height always restarts equal to
        // the persisted height. Families whose checkpoints reach past
        // the replay floor skip the blocks they already cover, so with
        // up-to-date checkpoints the replayed tail is O(cadence), not
        // O(chain).
        let height = ledger.store.height();
        let replay_from = ledger.replay_floor().min(height);
        for bid in replay_from..height {
            let block = ledger.store.read(bid)?;
            ledger.index_block(&block);
        }
        if height > 0 {
            *ledger.last_hash.write() = ledger.store.read(height - 1)?.header.block_hash;
        }
        ledger.applied.store(height, Ordering::Release);
        // Re-register persisted tracking views last: the chain and
        // every index are whole at this point, so each registration
        // re-backfills against a consistent applied height.
        let views_loaded = ledger.load_trace_views()?;
        ledger
            .store
            .stats
            .open_millis
            .store(opened.elapsed().as_millis() as u64, Ordering::Relaxed);
        if frozen_loaded > 0 {
            eprintln!(
                "sebdb: ledger open loaded {frozen_loaded} index checkpoint(s), replayed {} tail block(s)",
                height - replay_from
            );
        }
        if views_loaded > 0 {
            eprintln!("sebdb: ledger open re-backfilled {views_loaded} tracking view(s)");
        }
        Ok(ledger)
    }

    /// Lowest chain height any index family has state for — the block
    /// the restart replay must resume from.
    fn replay_floor(&self) -> u64 {
        let mut floor = self.block_index.read().len() as u64;
        floor = floor.min(self.table_index.read().blocks_seen());
        for shard in &self.shards {
            for idx in shard.layered.read().values() {
                floor = floor.min(idx.covered());
            }
            for ali in shard.alis.read().values() {
                floor = floor.min(ali.covered());
            }
        }
        floor
    }

    /// Applied chain height: every block below it is persisted and
    /// indexed. This is the height writers observe after their commit
    /// ack and the bound readers scan to.
    pub fn height(&self) -> BlockId {
        self.applied.load(Ordering::Acquire)
    }

    /// Persisted chain height (may run ahead of [`Self::height`] while
    /// the write pipeline's indexer stage catches up).
    pub fn chain_height(&self) -> BlockId {
        self.store.height()
    }

    /// Blocks until the applied height reaches `target`, `deadline`
    /// passes, or `abort` returns true (checked on every wakeup).
    /// Returns whether the height was reached.
    pub fn wait_for_height(
        &self,
        target: BlockId,
        deadline: Instant,
        abort: impl Fn() -> bool,
    ) -> bool {
        if self.height() >= target {
            return true;
        }
        let mut guard = self.height_watch.lock();
        loop {
            if self.applied.load(Ordering::Acquire) >= target {
                return true;
            }
            if abort() {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            // Sliced so an abort condition raised without a notify (a
            // poisoned applier that died before poisoning could wake
            // us) is still observed promptly.
            let slice = (deadline - now).min(std::time::Duration::from_millis(100));
            self.height_cv.wait_timeout(&mut guard, slice);
        }
    }

    /// Wakes every [`Self::wait_for_height`] waiter so it re-checks its
    /// abort condition (used when the applier dies).
    pub fn notify_height_waiters(&self) {
        let _guard = self.height_watch.lock();
        self.height_cv.notify_all();
    }

    fn advance_applied(&self, to: BlockId) {
        let guard = self.height_watch.lock();
        // Monotone: lane completions can race the sequential path during
        // teardown; the applied height only ever moves forward.
        if to > self.applied.load(Ordering::Acquire) {
            self.applied.store(to, Ordering::Release);
        }
        drop(guard);
        self.height_cv.notify_all();
    }

    /// Hash of the chain tip ([`Digest::ZERO`] when empty).
    pub fn tip_hash(&self) -> Digest {
        *self.last_hash.read()
    }

    /// The raw store (for I/O statistics).
    pub fn store(&self) -> &Arc<BlockStore> {
        &self.store
    }

    /// Selects the caching strategy (Fig. 22 compares these).
    pub fn set_cache_mode(&self, mode: CacheMode) {
        *self.cached.write() = Arc::new(CachedStore::new(Arc::clone(&self.store), mode));
    }

    /// Installs a block cache with `bytes` capacity.
    pub fn use_block_cache(&self, bytes: usize) {
        self.set_cache_mode(CacheMode::Block(BlockCache::new(bytes)));
    }

    /// Installs a transaction cache with `bytes` capacity.
    pub fn use_tx_cache(&self, bytes: usize) {
        self.set_cache_mode(CacheMode::Tx(TxCache::new(bytes)));
    }

    /// Reads a block through the current cache.
    pub fn read_block(&self, bid: BlockId) -> Result<Arc<Block>, LedgerError> {
        Ok(self.cached.read().read_block(bid)?)
    }

    /// Reads one transaction through the current cache.
    pub fn read_tx(&self, ptr: TxPtr) -> Result<Arc<Transaction>, LedgerError> {
        Ok(self.cached.read().read_tx(ptr)?)
    }

    /// Reads a run of blocks through the current cache, coalescing
    /// physically contiguous misses into readahead span reads — the
    /// sequential-scan fast path of Figs. 11–12. Results come back in
    /// `bids` order.
    pub fn read_blocks_span(&self, bids: &[BlockId]) -> Result<Vec<Arc<Block>>, LedgerError> {
        Ok(self.cached.read().read_blocks_span(bids)?)
    }

    /// Reads many transactions at once, grouped by containing block and
    /// fetched across workers; results come back in input order. The
    /// executor's index-driven scans use this instead of issuing one
    /// [`Self::read_tx`] per pointer.
    pub fn read_txs_grouped(&self, ptrs: &[TxPtr]) -> Result<Vec<Arc<Transaction>>, LedgerError> {
        Ok(self.cached.read().read_txs_grouped(ptrs)?)
    }

    /// Reads, for each block in `bids`, only the tuples stored in
    /// `table`'s relation partition, as `(canonical index, tx)` pairs
    /// in block order. Single-relation scans use this instead of
    /// [`Self::read_blocks_span`] so they stop paying for unrelated
    /// relations' bytes (the partitioned layout's whole point); callers
    /// still filter by table name since co-located relations share a
    /// partition.
    pub fn read_relation_txs(
        &self,
        bids: &[BlockId],
        table: &str,
    ) -> Result<Vec<Vec<(u32, Transaction)>>, LedgerError> {
        Ok(self.cached.read().read_relation_txs(bids, table)?)
    }

    /// Seals an ordered batch into the next block without appending it
    /// (the node applies schema transactions from the sealed block
    /// *before* the append so readers never observe a height whose
    /// schemas are missing). Takes the batch by value: the
    /// transactions move into the sealed block instead of being
    /// copied, which matters at thousand-transaction block sizes.
    pub fn seal_ordered(&self, ordered: OrderedBlock) -> Result<Block, LedgerError> {
        self.seal_ordered_at(self.tip_hash(), self.store.height(), ordered)
    }

    /// [`Self::seal_ordered`] against an explicit `(prev, height)` chain
    /// position instead of the store's current tip. The three-stage
    /// pipeline's sealer tracks its own chain cursor so it can seal
    /// block *N+1* while the persister is still appending block *N*.
    pub fn seal_ordered_at(
        &self,
        prev: Digest,
        height: BlockId,
        ordered: OrderedBlock,
    ) -> Result<Block, LedgerError> {
        if ordered.seq != height {
            return Err(LedgerError::BadBlock(format!(
                "ordered batch seq {} but chain height {height}",
                ordered.seq
            )));
        }
        Ok(Block::seal(
            prev,
            height,
            ordered.timestamp_ms,
            ordered.txs,
            |payload| self.signer.sign(payload).to_bytes(),
        ))
    }

    /// Seals an ordered batch into the next block, verifies it, appends
    /// it, and updates every index. Returns the sealed block.
    pub fn append_ordered(&self, ordered: OrderedBlock) -> Result<Arc<Block>, LedgerError> {
        let block = self.seal_ordered(ordered)?;
        self.append_block(block)
    }

    /// Installs a transaction-signature verifier applied to every
    /// transaction of every appended block. `None` disables checking
    /// (the default — benchmark transactions carry placeholder MACs).
    pub fn set_tx_verifier(&self, verifier: Option<Box<TxVerifier>>) {
        *self.tx_verifier.write() = verifier;
    }

    /// Appends an externally sealed block (e.g. received via gossip),
    /// verifying linkage, integrity, and (when a verifier is installed)
    /// every transaction signature first. Runs both write stages —
    /// persist then index — so the applied height advances before this
    /// returns.
    pub fn append_block(&self, block: Block) -> Result<Arc<Block>, LedgerError> {
        let block = self.persist_block(block)?;
        self.index_appended(&block);
        Ok(block)
    }

    /// Stage two of the write path (after [`Self::seal_ordered`]):
    /// verifies linkage, integrity, and transaction signatures, then
    /// appends the block to durable storage and advances the chain
    /// tip. Does NOT index and does NOT advance the applied height —
    /// the caller must follow up with [`Self::index_appended`] (the
    /// pipeline runs that on a separate thread, overlapped with
    /// sealing the next block).
    pub fn persist_block(&self, block: Block) -> Result<Arc<Block>, LedgerError> {
        if block.header.prev_hash != self.tip_hash() {
            return Err(LedgerError::BadBlock(format!(
                "block {} does not extend the tip",
                block.header.height
            )));
        }
        if !block.verify_integrity() {
            return Err(LedgerError::BadBlock(format!(
                "block {} fails integrity verification",
                block.header.height
            )));
        }
        if let Some(verify) = self.tx_verifier.read().as_ref() {
            // MAC checks are independent per transaction; verify them
            // across workers and report the first (lowest-index)
            // failure, exactly as the sequential scan would.
            let bad = sebdb_parallel::par_find_first(&block.transactions, 64, |tx| {
                (!verify(tx)).then_some(tx.tid)
            });
            if let Some((_, tid)) = bad {
                return Err(LedgerError::BadBlock(format!(
                    "block {} carries transaction {tid} with an invalid signature",
                    block.header.height
                )));
            }
        }
        self.store.append(&block)?;
        *self.last_hash.write() = block.header.block_hash;
        Ok(Arc::new(block))
    }

    /// Stage three of the write path: updates every index family for a
    /// block previously appended via [`Self::persist_block`], then
    /// advances the applied height and wakes height waiters. Blocks
    /// must be indexed in height order.
    pub fn index_appended(&self, block: &Block) {
        if let Some(hook) = self.index_fault.read().as_ref() {
            hook(block);
        }
        self.index_block(block);
        self.advance_applied(block.header.height + 1);
        // Fold materialized views after the applied-height advance, so
        // a view never observes a height above `height()`. Best-effort
        // here: a fold that cannot read the chain leaves the view
        // stale, and the serve path's catch-up surfaces the error to
        // the query that needs the rows.
        if let Err(e) = self.fold_views(block, None) {
            eprintln!(
                "sebdb: view fold failed at height {}: {e}",
                block.header.height
            );
        }
        if self.checkpoint_due(block.header.height + 1)
            || self.bytes_due(|| self.index_memory_bytes())
        {
            // Best-effort: a failed or interrupted checkpoint leaves
            // the previous one in place and heals at the next open.
            let _ = self.checkpoint_indexes();
        }
    }

    /// Installs (or clears) a fault-injection hook invoked with each
    /// block just before its indexes are built. Test instrumentation
    /// for the pipeline's failure paths — a hook that panics simulates
    /// an indexer-stage crash mid-block.
    pub fn set_index_fault(&self, hook: Option<Box<IndexFaultHook>>) {
        *self.index_fault.write() = hook;
    }

    fn index_block(&self, block: &Block) {
        // The four index families live behind separate locks and never
        // read each other, so they update concurrently. ALI updates
        // (Merkle work per bucket) dominate; giving them their own
        // worker overlaps them with the cheap bitmap updates.
        sebdb_parallel::join_all!(
            || {
                // Guarded so the restart replay (which resumes at the
                // lowest frozen height across ALL families) can feed
                // blocks an up-to-date block-index checkpoint already
                // covers; the other families skip covered blocks
                // internally.
                let mut bi = self.block_index.write();
                if block.header.height >= bi.len() as u64 {
                    bi.append(block);
                }
            },
            || self.table_index.write().update(block),
            || {
                for shard in &self.shards {
                    for idx in shard.layered.write().values_mut() {
                        idx.update(block);
                    }
                }
            },
            || {
                for shard in &self.shards {
                    for ali in shard.alis.write().values_mut() {
                        ali.update(block);
                    }
                }
            }
        );
    }

    /// Partitions a block's tuples by (lowercased) relation name:
    /// `table → ascending tuple positions`. Computed once per block by
    /// the pipeline's persist stage and shared (behind an `Arc`) by
    /// every applier lane, so lanes never re-scan tuples that are not
    /// theirs.
    pub fn relation_rows(block: &Block) -> HashMap<String, Vec<u32>> {
        let mut rows: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, tx) in block.transactions.iter().enumerate() {
            rows.entry(tx.tname.to_ascii_lowercase())
                .or_default()
                .push(i as u32);
        }
        rows
    }

    /// Lane 0's chain-level share of indexing `block`: the fault hook,
    /// the block-level B⁺-tree, the table bitmaps, and the chain shard
    /// (system `None`-table layered/ALI indexes, which walk every
    /// tuple). Blocks must arrive in height order.
    pub fn index_chain_lane(&self, block: &Block) {
        if let Some(hook) = self.index_fault.read().as_ref() {
            hook(block);
        }
        let chain = &self.shards[INDEX_SHARDS];
        sebdb_parallel::join_all!(
            || self.block_index.write().append(block),
            || self.table_index.write().update(block),
            || {
                for idx in chain.layered.write().values_mut() {
                    idx.update(block);
                }
            },
            || {
                for ali in chain.alis.write().values_mut() {
                    ali.update(block);
                }
            }
        );
        if self.checkpoint_due(block.header.height + 1)
            || self.bytes_due(|| self.chain_families_memory_bytes())
        {
            let _ = self.checkpoint_chain_families();
        }
    }

    /// Lane `lane`-of-`lanes`' relation share of indexing `block`:
    /// every per-table index family living in a shard with
    /// `shard % lanes == lane` is updated from the precomputed
    /// relation→rows partition. Blocks must arrive in height order per
    /// lane; distinct lanes are free to interleave (they touch disjoint
    /// shards).
    pub fn index_relation_lane(
        &self,
        lane: usize,
        lanes: usize,
        block: &Block,
        rows: &HashMap<String, Vec<u32>>,
    ) {
        const NO_ROWS: &[u32] = &[];
        for (s, shard) in self.shards.iter().enumerate().take(INDEX_SHARDS) {
            if s % lanes != lane {
                continue;
            }
            for (key, idx) in shard.layered.write().iter_mut() {
                let covered = key.0.as_deref().and_then(|t| rows.get(t));
                idx.update_rows(block, covered.map_or(NO_ROWS, |r| r.as_slice()));
            }
            for (key, ali) in shard.alis.write().iter_mut() {
                let covered = key.0.as_deref().and_then(|t| rows.get(t));
                ali.update_rows(block, covered.map_or(NO_ROWS, |r| r.as_slice()));
            }
        }
        let every_due = self.checkpoint_due(block.header.height + 1);
        for s in (0..INDEX_SHARDS).filter(|s| s % lanes == lane) {
            if every_due || self.bytes_due(|| self.shard_memory_bytes(s)) {
                let _ = self.checkpoint_shard(s);
            }
        }
    }

    /// Whether the automatic checkpoint cadence fires once `covered`
    /// blocks are indexed.
    fn checkpoint_due(&self, covered: u64) -> bool {
        let every = self.checkpoint_every.load(Ordering::Relaxed);
        every > 0 && covered.is_multiple_of(every)
    }

    /// Sets the automatic index-checkpoint cadence in blocks (`0`
    /// disables it; the constructor seeds it from
    /// [`INDEX_CHECKPOINT_EVERY_ENV`]).
    pub fn set_checkpoint_every(&self, every: u64) {
        self.checkpoint_every.store(every, Ordering::Relaxed);
    }

    /// Whether the adaptive byte-threshold cadence fires for a scope
    /// currently holding `bytes()` resident bytes. The footprint is
    /// only computed when the threshold is enabled — the default path
    /// costs one relaxed load per block.
    fn bytes_due(&self, bytes: impl FnOnce() -> usize) -> bool {
        let threshold = self.checkpoint_bytes.load(Ordering::Relaxed);
        threshold > 0 && bytes() as u64 >= threshold
    }

    /// Sets the adaptive index-checkpoint threshold in resident bytes
    /// (`0` disables it; the constructor seeds it from
    /// [`INDEX_CHECKPOINT_BYTES_ENV`]). Scope-granular: the sequential
    /// applier checks the whole footprint, lane 0 checks the chain
    /// families, and each relation lane checks the shards it owns — so
    /// under a lane pipeline only the scope that actually grew pays
    /// for a freeze.
    pub fn set_checkpoint_bytes(&self, bytes: u64) {
        self.checkpoint_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Resident bytes of the chain-level scope: the block-level
    /// B⁺-tree, the table bitmaps, and the chain shard's system
    /// indexes (lane 0's checkpoint scope).
    fn chain_families_memory_bytes(&self) -> usize {
        self.block_index.read().memory_bytes()
            + self.table_index.read().memory_bytes()
            + self.shard_memory_bytes(INDEX_SHARDS)
    }

    /// Resident bytes of one index shard's layered/ALI families.
    fn shard_memory_bytes(&self, s: usize) -> usize {
        let shard = &self.shards[s];
        shard
            .layered
            .read()
            .values()
            .map(|i| i.memory_bytes())
            .sum::<usize>()
            + shard
                .alis
                .read()
                .values()
                .map(|a| a.memory_bytes())
                .sum::<usize>()
    }

    /// Writes one family's checkpoint behind the `.tmp` → rename commit
    /// point and re-opens it; `None` on the in-memory backend (which
    /// keeps every family fully resident).
    fn publish_checkpoint(
        &self,
        cp: &sebdb_storage::IndexCheckpoint,
    ) -> Result<Option<sebdb_storage::PagedIndexReader>, LedgerError> {
        self.store.write_index_checkpoint(cp)?;
        Ok(self.store.load_index_checkpoint(&cp.family)?)
    }

    /// Freezes the chain-level families — the block-level B⁺-tree, the
    /// table bitmaps, and the chain shard's system indexes — into
    /// on-disk checkpoints, dropping their resident tails. Returns how
    /// many checkpoints were published. Lane 0 of a pipeline owns
    /// exactly these families, so it may call this concurrently with
    /// relation lanes checkpointing their own shards.
    pub fn checkpoint_chain_families(&self) -> Result<usize, LedgerError> {
        let mut published = 0;
        {
            let mut bi = self.block_index.write();
            if let Some(r) = self.publish_checkpoint(&bi.checkpoint())? {
                bi.adopt_frozen(r);
                published += 1;
            }
        }
        {
            let mut ti = self.table_index.write();
            if let Some(r) = self.publish_checkpoint(&ti.checkpoint())? {
                ti.adopt_frozen(r);
                published += 1;
            }
        }
        Ok(published + self.checkpoint_shard_slot(INDEX_SHARDS)?)
    }

    /// Freezes every layered/ALI family living in relation shard `s`
    /// (`s < INDEX_SHARDS`). Lane `s % lanes` of a pipeline owns the
    /// shard, so distinct lanes checkpoint disjoint families.
    pub fn checkpoint_shard(&self, s: usize) -> Result<usize, LedgerError> {
        assert!(s < INDEX_SHARDS, "relation shard out of range");
        self.checkpoint_shard_slot(s)
    }

    fn checkpoint_shard_slot(&self, s: usize) -> Result<usize, LedgerError> {
        let shard = &self.shards[s];
        let mut published = 0;
        {
            let mut layered = shard.layered.write();
            for idx in layered.values_mut() {
                if let Some(r) = self.publish_checkpoint(&idx.checkpoint())? {
                    idx.adopt_frozen(r);
                    published += 1;
                }
            }
        }
        {
            let mut alis = shard.alis.write();
            for ali in alis.values_mut() {
                if let Some(r) = self.publish_checkpoint(&ali.checkpoint())? {
                    ali.adopt_frozen(r);
                    published += 1;
                }
            }
        }
        Ok(published)
    }

    /// Freezes every index family into an on-disk checkpoint (chain
    /// families plus all relation shards); subsequent opens replay only
    /// blocks indexed after this point. Returns how many checkpoints
    /// were published (0 on the in-memory backend).
    pub fn checkpoint_indexes(&self) -> Result<usize, LedgerError> {
        let mut published = self.checkpoint_chain_families()?;
        for s in 0..INDEX_SHARDS {
            published += self.checkpoint_shard_slot(s)?;
        }
        Ok(published)
    }

    /// Resident bytes across every index family: tail structures plus
    /// each frozen checkpoint's fence/meta top level. Paged level-1
    /// index blocks live in the store's bounded index-block cache and
    /// are counted there ([`sebdb_storage::IndexBlockCache`]), not
    /// here.
    pub fn index_memory_bytes(&self) -> usize {
        let mut bytes =
            self.block_index.read().memory_bytes() + self.table_index.read().memory_bytes();
        for shard in &self.shards {
            bytes += shard
                .layered
                .read()
                .values()
                .map(|i| i.memory_bytes())
                .sum::<usize>();
            bytes += shard
                .alis
                .read()
                .values()
                .map(|a| a.memory_bytes())
                .sum::<usize>();
        }
        bytes
    }

    /// Installs a fresh all-zero applied-height vector with one slot
    /// per applier lane and returns it. While installed, the scalar
    /// applied height is the running minimum over the vector (advanced
    /// by [`Self::lane_applied`]). The lane pipeline installs this at
    /// start and clears it (via [`Self::clear_applied_vector`]) on
    /// join, so the sequential path is untouched.
    pub fn install_applied_vector(&self, lanes: usize) -> Arc<Vec<Tracked<AtomicU64>>> {
        let start = self.height();
        let vec: Arc<Vec<Tracked<AtomicU64>>> = Arc::new(
            (0..lanes)
                .map(|_| Tracked::new(AtomicU64::new(start)))
                .collect(),
        );
        *self.lane_heights.write() = Some(Arc::clone(&vec));
        vec
    }

    /// Removes the per-lane applied-height vector (pipeline teardown).
    pub fn clear_applied_vector(&self) {
        *self.lane_heights.write() = None;
    }

    /// The currently installed per-lane applied-height vector, if any.
    pub fn applied_vector(&self) -> Option<Arc<Vec<Tracked<AtomicU64>>>> {
        self.lane_heights.read().clone()
    }

    /// Records that `lane` finished indexing every block below
    /// `height`, then advances the scalar applied height to the
    /// minimum over all lanes and wakes height waiters if it moved.
    /// Runs under the height-watch mutex so the min computation and
    /// the notify are atomic with respect to waiters.
    pub fn lane_applied(&self, lane: usize, height: BlockId) {
        let guard = self.height_watch.lock();
        let Some(vec) = self.applied_vector() else {
            drop(guard);
            return;
        };
        vec[lane].store(height, Ordering::Release);
        let min = vec
            .iter()
            .map(|h| h.load(Ordering::Acquire))
            .min()
            .unwrap_or(0);
        let moved = min > self.applied.load(Ordering::Acquire);
        if moved {
            self.applied.store(min, Ordering::Release);
        }
        drop(guard);
        if moved {
            self.height_cv.notify_all();
        }
    }

    /// Applied height as seen by readers of `table` alone: the height
    /// of the lane owning that relation's shard when a lane vector is
    /// installed, else the scalar applied height. Single-relation
    /// reads could safely use this (it only runs ahead of the min);
    /// cross-relation reads must use [`Self::height`].
    pub fn relation_applied_height(&self, table: &str) -> BlockId {
        match self.applied_vector() {
            Some(vec) if !vec.is_empty() => {
                let lane = shard_of(&table.to_ascii_lowercase()) % vec.len();
                vec[lane].load(Ordering::Acquire).max(self.height())
            }
            _ => self.height(),
        }
    }

    /// Creates a layered index (and its ALI twin) on
    /// `table.column`, replaying all existing blocks. For continuous
    /// attributes the equal-depth histogram is sampled from history
    /// (§IV-B); with no history yet, the `sample` override seeds it.
    pub fn create_layered_index(
        &self,
        schema: &TableSchema,
        column: &str,
        sample: Option<Vec<i64>>,
    ) -> Result<(), LedgerError> {
        let col = schema
            .resolve(column)
            .map_err(|e| LedgerError::BadIndex(e.to_string()))?;
        let key: IndexKey = (
            Some(schema.name.to_ascii_lowercase()),
            column.to_ascii_lowercase(),
        );
        let shard = &self.shards[shard_of_key(&key)];
        if shard.layered.read().contains_key(&key) {
            return Ok(());
        }
        let continuous = col.data_type(schema).is_continuous();
        // A previous run of this node may have checkpointed the same
        // family; reattaching the frozen prefix turns the replay below
        // into a tail replay. The histogram travels in the checkpoint
        // meta, so sampling only happens when a family starts cold.
        let slug = column_slug(&col);
        let frozen_layered = self
            .store
            .load_index_checkpoint(&family_layered(Some(&schema.name), &slug))?;
        let frozen_ali = self
            .store
            .load_index_checkpoint(&family_ali(Some(&schema.name), &slug))?;
        let hist = if continuous && (frozen_layered.is_none() || frozen_ali.is_none()) {
            let sample = match sample {
                Some(s) => s,
                None => self.sample_ranks(schema, col)?,
            };
            Some(EqualDepthHistogram::from_sample(
                sample,
                DEFAULT_HISTOGRAM_BUCKETS,
            ))
        } else {
            None
        };
        let mut layered = match (frozen_layered, &hist) {
            (Some(r), _) => LayeredIndex::from_frozen(Some(schema.name.clone()), col, r),
            (None, Some(h)) => {
                LayeredIndex::new_continuous(Some(schema.name.clone()), col, h.clone())
            }
            (None, None) => LayeredIndex::new_discrete(Some(schema.name.clone()), col),
        };
        let mut ali = match (frozen_ali, hist) {
            (Some(r), _) => {
                AuthenticatedLayeredIndex::from_frozen(Some(schema.name.clone()), col, r)
            }
            (None, Some(h)) => {
                AuthenticatedLayeredIndex::new_continuous(Some(schema.name.clone()), col, h)
            }
            (None, None) => AuthenticatedLayeredIndex::new_discrete(Some(schema.name.clone()), col),
        };
        // Replay only applied blocks: a block the pipeline has persisted
        // but not yet indexed will reach the new index through
        // `index_appended` once it is registered below. (Index creation
        // is a control-plane operation; callers run it with the applier
        // quiescent, as before.) Each structure skips blocks its frozen
        // prefix already covers.
        for bid in layered.covered().min(ali.covered())..self.height() {
            let block = self.store.read(bid)?;
            layered.update(&block);
            ali.update(&block);
        }
        shard.layered.write().insert(key.clone(), layered);
        shard.alis.write().insert(key, ali);
        Ok(())
    }

    /// Samples numeric ranks of `col` from historical blocks for
    /// histogram construction.
    fn sample_ranks(&self, schema: &TableSchema, col: ColumnRef) -> Result<Vec<i64>, LedgerError> {
        let mut ranks = Vec::new();
        let height = self.height();
        // Sample at most ~100 blocks, evenly spaced.
        let step = (height / 100).max(1);
        let mut bid = 0;
        while bid < height {
            let block = self.store.read(bid)?;
            for tx in &block.transactions {
                if tx.tname.eq_ignore_ascii_case(&schema.name) {
                    if let Some(rank) = tx.get(col).and_then(|v| v.numeric_rank()) {
                        ranks.push(rank);
                    }
                }
            }
            bid += step;
        }
        Ok(ranks)
    }

    /// Runs `f` with the layered index on `(table, column)`, if any.
    pub fn with_layered<R>(
        &self,
        table: Option<&str>,
        column: &str,
        f: impl FnOnce(&LayeredIndex) -> R,
    ) -> Option<R> {
        let key: IndexKey = (
            table.map(|t| t.to_ascii_lowercase()),
            column.to_ascii_lowercase(),
        );
        self.shards[shard_of_key(&key)]
            .layered
            .read()
            .get(&key)
            .map(f)
    }

    /// Runs `f` with the ALI on `(table, column)`, if any.
    pub fn with_ali<R>(
        &self,
        table: Option<&str>,
        column: &str,
        f: impl FnOnce(&AuthenticatedLayeredIndex) -> R,
    ) -> Option<R> {
        let key: IndexKey = (
            table.map(|t| t.to_ascii_lowercase()),
            column.to_ascii_lowercase(),
        );
        self.shards[shard_of_key(&key)].alis.read().get(&key).map(f)
    }

    /// Runs `f` with the block-level index.
    pub fn with_block_index<R>(&self, f: impl FnOnce(&BlockLevelIndex) -> R) -> R {
        f(&self.block_index.read())
    }

    /// Runs `f` with the table-level bitmap index.
    pub fn with_table_index<R>(&self, f: impl FnOnce(&TableBitmapIndex) -> R) -> R {
        f(&self.table_index.read())
    }

    /// Bitmap of block ids whose contents can fall in the time window
    /// (conservative), or all blocks when `window` is `None`.
    pub fn window_mask(&self, window: Option<(Timestamp, Timestamp)>) -> Bitmap {
        // Scans are bounded by the applied height: a persisted block
        // whose indexes are still being built is invisible until the
        // indexer stage finishes it, so every strategy (scan, bitmap,
        // layered) answers over the same prefix of the chain.
        self.window_mask_at(window, self.height())
    }

    /// [`Self::window_mask`] bounded at an explicit `height` instead
    /// of the current applied height. A view backfill captures the
    /// applied height once and masks at it, so the backfilled rows
    /// cover exactly the blocks below the fold cursor even if the
    /// applier advances mid-backfill.
    pub fn window_mask_at(
        &self,
        window: Option<(Timestamp, Timestamp)>,
        height: BlockId,
    ) -> Bitmap {
        let mut mask = Bitmap::new();
        if height == 0 {
            return mask;
        }
        match window {
            None => {
                mask.set_range(0, height as usize - 1);
            }
            Some((s, e)) => {
                if let Some((lo, hi)) = self.with_block_index(|bi| bi.blocks_in_window(s, e)) {
                    // The block index may cover blocks the bound
                    // excludes (lane 0 can index ahead of the min
                    // applied height); clamp to the bound.
                    let hi = hi.min(height - 1);
                    if lo <= hi {
                        mask.set_range(lo as usize, hi as usize);
                    }
                }
            }
        }
        mask
    }

    /// The registered incremental materialized `TRACE` views (see
    /// [`crate::views`]).
    pub fn trace_views(&self) -> &crate::views::ViewEngine {
        &self.views
    }

    /// Verifies the whole chain (linkage + per-block integrity).
    /// Expensive; used by tests and audits.
    pub fn verify_chain(&self) -> Result<(), LedgerError> {
        let mut prev = Digest::ZERO;
        for bid in 0..self.store.height() {
            let block = self.store.read(bid)?;
            if block.header.prev_hash != prev {
                return Err(LedgerError::BadBlock(format!("block {bid} linkage broken")));
            }
            if !block.verify_integrity() {
                return Err(LedgerError::BadBlock(format!("block {bid} corrupt")));
            }
            prev = block.header.block_hash;
        }
        Ok(())
    }

    /// All headers (what a thin client syncs).
    pub fn headers(&self) -> Result<Vec<sebdb_types::BlockHeader>, LedgerError> {
        (0..self.store.height())
            .map(|bid| Ok(self.store.read(bid)?.header.clone()))
            .collect()
    }

    /// Looks up transactions by exact sender-id value through the
    /// system tracking index (helper for the executor).
    pub fn sender_value(sender: &sebdb_crypto::sig::KeyId) -> Value {
        Value::Bytes(sender.as_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_consensus::traits::now_ms;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::{Column, DataType};

    fn signer() -> MacKeypair {
        MacKeypair::from_key([9u8; 32])
    }

    fn ledger() -> Ledger {
        Ledger::new(Arc::new(BlockStore::in_memory()), signer()).unwrap()
    }

    fn donate_schema() -> TableSchema {
        TableSchema::new(
            "donate",
            vec![
                Column::new("donor", DataType::Str),
                Column::new("project", DataType::Str),
                Column::new("amount", DataType::Decimal),
            ],
        )
    }

    fn ordered(seq: u64, amounts: &[i64]) -> OrderedBlock {
        OrderedBlock {
            seq,
            timestamp_ms: now_ms() + seq,
            txs: amounts
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    let mut t = Transaction::new(
                        now_ms(),
                        KeyId([(a % 2) as u8; 8]),
                        "donate",
                        vec![Value::str("d"), Value::str("p"), Value::decimal(a)],
                    );
                    t.tid = seq * 100 + i as u64 + 1;
                    t
                })
                .collect(),
        }
    }

    #[test]
    fn append_and_verify_chain() {
        let l = ledger();
        l.append_ordered(ordered(0, &[10, 20])).unwrap();
        l.append_ordered(ordered(1, &[30])).unwrap();
        assert_eq!(l.height(), 2);
        l.verify_chain().unwrap();
        assert_ne!(l.tip_hash(), Digest::ZERO);
    }

    #[test]
    fn rejects_wrong_seq_and_bad_linkage() {
        let l = ledger();
        assert!(l.append_ordered(ordered(5, &[1])).is_err());
        l.append_ordered(ordered(0, &[1])).unwrap();
        // A block not extending the tip is rejected.
        let rogue = Block::seal(Digest::ZERO, 1, now_ms(), vec![], |_| vec![]);
        assert!(l.append_block(rogue).is_err());
    }

    #[test]
    fn system_tracking_indexes_update_automatically() {
        let l = ledger();
        l.append_ordered(ordered(0, &[1, 2])).unwrap(); // senders 1, 0
        l.append_ordered(ordered(1, &[3])).unwrap(); // sender 1
        let sender1 = Value::Bytes(vec![1u8; 8]);
        let hits = l
            .with_layered(None, "sen_id", |idx| {
                idx.candidate_blocks(&sebdb_index::KeyPredicate::Eq(sender1))
            })
            .unwrap();
        assert_eq!(hits.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn layered_index_replays_history() {
        let l = ledger();
        l.append_ordered(ordered(0, &[10, 900])).unwrap();
        l.append_ordered(ordered(1, &[500])).unwrap();
        l.create_layered_index(&donate_schema(), "amount", None)
            .unwrap();
        let hits = l
            .with_layered(Some("donate"), "amount", |idx| {
                idx.candidate_blocks(&sebdb_index::KeyPredicate::Range(
                    Value::decimal(450),
                    Value::decimal(550),
                ))
            })
            .unwrap();
        assert!(hits.get(1));
        // Creating the same index again is a no-op.
        l.create_layered_index(&donate_schema(), "amount", None)
            .unwrap();
    }

    #[test]
    fn window_mask_covers_chain() {
        let l = ledger();
        l.append_ordered(ordered(0, &[1])).unwrap();
        l.append_ordered(ordered(1, &[2])).unwrap();
        let all = l.window_mask(None);
        assert_eq!(all.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        let none = l.window_mask(Some((0, 1)));
        assert!(none.count_ones() <= 2); // far-past window: conservative
    }

    #[test]
    fn restart_rebuilds_indexes() {
        let dir = std::env::temp_dir().join(format!("sebdb-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = sebdb_storage::StoreConfig::default();
        {
            let store = Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap());
            let l = Ledger::new(store, signer()).unwrap();
            l.append_ordered(ordered(0, &[10, 20])).unwrap();
            l.append_ordered(ordered(1, &[30])).unwrap();
        }
        let store = Arc::new(BlockStore::open(&dir, cfg).unwrap());
        let l = Ledger::new(store, signer()).unwrap();
        assert_eq!(l.height(), 2);
        l.verify_chain().unwrap();
        // Indexes were rebuilt: the tname index finds both blocks.
        let hits = l
            .with_layered(None, "tname", |idx| {
                idx.candidate_blocks(&sebdb_index::KeyPredicate::Eq(Value::str("donate")))
            })
            .unwrap();
        assert_eq!(hits.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        // And appends continue from the right tip.
        l.append_ordered(ordered(2, &[40])).unwrap();
        l.verify_chain().unwrap();
    }

    #[test]
    fn staged_stages_gate_applied_height() {
        let l = ledger();
        let block = l.seal_ordered(ordered(0, &[10, 20])).unwrap();
        let block = l.persist_block(block).unwrap();
        // Persisted but not indexed: the chain tip moved, the applied
        // height (and therefore every reader-visible view) did not.
        assert_eq!(l.chain_height(), 1);
        assert_eq!(l.height(), 0);
        assert_eq!(l.window_mask(None).count_ones(), 0);
        l.index_appended(&block);
        assert_eq!(l.height(), 1);
        assert_eq!(l.window_mask(None).count_ones(), 1);
    }

    #[test]
    fn wait_for_height_wakes_on_index() {
        let l = Arc::new(ledger());
        let block = l.seal_ordered(ordered(0, &[7])).unwrap();
        let block = l.persist_block(block).unwrap();
        let waiter = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                l.wait_for_height(
                    1,
                    Instant::now() + std::time::Duration::from_secs(5),
                    || false,
                )
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        l.index_appended(&block);
        assert!(waiter.join().unwrap());
        // Abort wins over waiting.
        assert!(!l.wait_for_height(
            9,
            Instant::now() + std::time::Duration::from_secs(5),
            || true
        ));
    }

    #[test]
    fn crash_between_persist_and_index_heals_on_restart() {
        let dir = std::env::temp_dir().join(format!("sebdb-stagecrash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = sebdb_storage::StoreConfig::default();
        {
            let store = Arc::new(BlockStore::open(&dir, cfg.clone()).unwrap());
            let l = Ledger::new(store, signer()).unwrap();
            l.append_ordered(ordered(0, &[10])).unwrap();
            // Simulate the applier dying between the persist and index
            // stages: block 1 reaches the store but no index family.
            let sealed = l.seal_ordered(ordered(1, &[20, 30])).unwrap();
            l.persist_block(sealed).unwrap();
            assert_eq!((l.chain_height(), l.height()), (2, 1));
        }
        let store = Arc::new(BlockStore::open(&dir, cfg).unwrap());
        let l = Ledger::new(store, signer()).unwrap();
        // Restart replays the persisted prefix: applied catches up and
        // the indexes cover the once-unindexed block.
        assert_eq!((l.chain_height(), l.height()), (2, 2));
        l.verify_chain().unwrap();
        let hits = l
            .with_layered(None, "tname", |idx| {
                idx.candidate_blocks(&sebdb_index::KeyPredicate::Eq(Value::str("donate")))
            })
            .unwrap();
        assert_eq!(hits.iter_ones().collect::<Vec<_>>(), vec![0, 1]);
        l.append_ordered(ordered(2, &[40])).unwrap();
        assert_eq!(l.height(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_modes_switch() {
        let l = ledger();
        l.append_ordered(ordered(0, &[1, 2, 3])).unwrap();
        l.use_block_cache(1 << 20);
        l.read_block(0).unwrap();
        l.read_block(0).unwrap();
        let reads_with_cache = l.store().stats.snapshot().0;
        l.use_tx_cache(1 << 20);
        let ptr = TxPtr { block: 0, index: 1 };
        l.read_tx(ptr).unwrap();
        l.read_tx(ptr).unwrap();
        // Tuple-granular reads: no extra block reads at all.
        let reads_after = l.store().stats.snapshot().0;
        assert_eq!(reads_after, reads_with_cache);
        assert_eq!(l.store().stats.snapshot().2, 2);
    }
}
