//! Schema management.
//!
//! §IV-A: "Each transaction type is associated to a user-defined
//! schema. Generally, the schema can be stored and maintained as a
//! regular table. The system sends a special transaction to
//! synchronize schema among nodes." `CREATE` therefore becomes a
//! transaction of the reserved type [`SCHEMA_TABLE`] whose payload is
//! the encoded schema; every node applies it when the block carrying
//! it commits, so all nodes converge on the same catalog.

use parking_lot::RwLock;
use sebdb_offchain::OffchainConnection;
use sebdb_sql::Catalog;
use sebdb_types::{Block, Codec, Column, TableSchema, Transaction, TypeError, Value};
use std::collections::HashMap;

/// Reserved transaction type carrying schema definitions.
pub const SCHEMA_TABLE: &str = "__schema__";

/// The schema catalog of one node.
pub struct SchemaManager {
    tables: RwLock<HashMap<String, TableSchema>>,
    /// Off-chain connection for resolving `offchain.*` tables.
    offchain: Option<OffchainConnection>,
}

impl SchemaManager {
    /// Empty catalog.
    pub fn new(offchain: Option<OffchainConnection>) -> Self {
        SchemaManager {
            tables: RwLock::new(HashMap::new()),
            offchain,
        }
    }

    /// Wraps a `CREATE` into the schema-sync transaction that goes
    /// through consensus.
    pub fn schema_transaction(
        schema: &TableSchema,
        ts: u64,
        sender: sebdb_crypto::sig::KeyId,
    ) -> Transaction {
        Transaction::new(
            ts,
            sender,
            SCHEMA_TABLE,
            vec![Value::Bytes(schema.to_bytes())],
        )
    }

    /// Applies schema-sync transactions from a committed block.
    /// Returns the names of tables created.
    pub fn apply_block(&self, block: &Block) -> Vec<String> {
        let mut created = Vec::new();
        for tx in &block.transactions {
            if !tx.tname.eq_ignore_ascii_case(SCHEMA_TABLE) {
                continue;
            }
            let Some(Value::Bytes(bytes)) = tx.values.first() else {
                continue;
            };
            let Ok(schema) = TableSchema::from_bytes(bytes) else {
                continue; // malformed schema payloads are ignored
            };
            let key = schema.name.to_ascii_lowercase();
            let mut tables = self.tables.write();
            // First writer wins: a duplicate CREATE later in the chain
            // must not clobber the established schema.
            if let std::collections::hash_map::Entry::Vacant(e) = tables.entry(key) {
                e.insert(schema.clone());
                created.push(schema.name);
            }
        }
        created
    }

    /// Registers a schema directly (bootstrap / tests).
    pub fn register(&self, schema: TableSchema) -> Result<(), TypeError> {
        let key = schema.name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(TypeError::DuplicateTable { table: schema.name });
        }
        tables.insert(key, schema);
        Ok(())
    }

    /// Schema of `table`, if declared.
    pub fn get(&self, table: &str) -> Option<TableSchema> {
        self.tables.read().get(&table.to_ascii_lowercase()).cloned()
    }

    /// All declared table names (lower-case, sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Validates an application row against `table`'s schema.
    pub fn check_row(&self, table: &str, row: Vec<Value>) -> Result<Vec<Value>, TypeError> {
        match self.get(table) {
            Some(schema) => schema.check_row(row),
            None => Err(TypeError::NoSuchTable {
                table: table.to_owned(),
            }),
        }
    }
}

impl Catalog for SchemaManager {
    fn onchain_schema(&self, name: &str) -> Option<TableSchema> {
        self.get(name)
    }

    fn offchain_columns(&self, name: &str) -> Option<Vec<Column>> {
        self.offchain.as_ref()?.columns(name).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::DataType;

    fn donate() -> TableSchema {
        TableSchema::new(
            "donate",
            vec![
                Column::new("donor", DataType::Str),
                Column::new("amount", DataType::Decimal),
            ],
        )
    }

    #[test]
    fn schema_sync_roundtrip_via_block() {
        let mgr = SchemaManager::new(None);
        let tx = SchemaManager::schema_transaction(&donate(), 1, KeyId([1; 8]));
        let block = Block::seal(Digest::ZERO, 0, 1, vec![tx], |_| vec![]);
        let created = mgr.apply_block(&block);
        assert_eq!(created, vec!["donate".to_string()]);
        assert_eq!(mgr.get("DONATE").unwrap().columns.len(), 2);
    }

    #[test]
    fn first_create_wins() {
        let mgr = SchemaManager::new(None);
        let first = donate();
        let mut second = donate();
        second.columns.push(Column::new("extra", DataType::Int));
        let txs = vec![
            SchemaManager::schema_transaction(&first, 1, KeyId([1; 8])),
            SchemaManager::schema_transaction(&second, 2, KeyId([2; 8])),
        ];
        let block = Block::seal(Digest::ZERO, 0, 1, txs, |_| vec![]);
        mgr.apply_block(&block);
        assert_eq!(mgr.get("donate").unwrap().columns.len(), 2);
    }

    #[test]
    fn malformed_schema_payload_ignored() {
        let mgr = SchemaManager::new(None);
        let tx = Transaction::new(
            1,
            KeyId([1; 8]),
            SCHEMA_TABLE,
            vec![Value::Bytes(vec![9, 9])],
        );
        let block = Block::seal(Digest::ZERO, 0, 1, vec![tx], |_| vec![]);
        assert!(mgr.apply_block(&block).is_empty());
    }

    #[test]
    fn register_and_duplicate() {
        let mgr = SchemaManager::new(None);
        mgr.register(donate()).unwrap();
        assert!(mgr.register(donate()).is_err());
        assert_eq!(mgr.table_names(), vec!["donate".to_string()]);
    }

    #[test]
    fn check_row_routes_to_schema() {
        let mgr = SchemaManager::new(None);
        mgr.register(donate()).unwrap();
        let row = mgr
            .check_row("donate", vec![Value::str("Jack"), Value::Int(5)])
            .unwrap();
        assert_eq!(row[1], Value::decimal(5));
        assert!(mgr.check_row("nope", vec![]).is_err());
    }
}
