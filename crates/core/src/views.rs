//! Incremental materialized `TRACE` views: compute once, serve many.
//!
//! `TRACE` and the Algorithm-1 tracking walk (§V-A) are pure functions
//! of an append-only chain, which makes them the ideal
//! incremental-computation substrate: the answer after block *N+1* is
//! the answer after block *N* plus whatever block *N+1* contributes.
//! This module maintains exactly that. A [`TraceSpec`] is registered
//! once; registration **backfills** the materialized result from the
//! existing tracking executor bounded at the applied height captured
//! under the view's lock, and from then on every applied block's delta
//! is **folded** in — O(delta) per block instead of O(chain) per
//! query. Serving a matching `TRACE` clones the materialized rows with
//! zero index probes.
//!
//! Ordering makes this sound: all three physical strategies (scan,
//! bitmap, layered) emit tracking rows in *chain order* — ascending
//! block height, ascending tuple position within a block — so an
//! append-only fold reproduces a fresh re-execution byte for byte.
//! That is the module's non-negotiable equivalence gate, exercised
//! after every block by `tests/view_equivalence.rs` and on every
//! interleaving by the model twin (`sebdb-model`'s `view_model.rs`).
//!
//! Position in the write path: the staged pipeline folds from a
//! dedicated **view-folder** consumer downstream of the index lanes —
//! it waits for [`Ledger::height`] to cover a block before folding it,
//! so a view never observes a height above the applied height. The
//! sequential applier folds inline at the end of
//! [`Ledger::index_appended`], after the applied-height advance, with
//! the same guarantee.
//!
//! Restart story: only the registrations persist (a versioned byte
//! encoding behind the store's `.tmp` → rename commit point); rows are
//! always rebuilt by re-backfilling on open, after the restart replay
//! has healed the indexes. A crash between persist and fold costs
//! nothing: folds are idempotent (a block below the view's fold
//! cursor is skipped) and the serve path catches a stale view up to
//! the applied height before answering.

use crate::executor::tracking::tracking_header;
use crate::executor::{ExecError, Executor, QueryResult, Strategy};
use crate::ledger::{Ledger, LedgerError};
use parking_lot::RwLock;
use sebdb_parallel::Tracked;
use sebdb_sql::TraceSpec;
use sebdb_types::{Block, BlockId, Decoder, Encoder, Transaction, TypeError, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version byte of the persisted registration encoding.
const REGISTRATION_VERSION: u8 = 1;

/// Counters over every registered view, in the [`sebdb_storage`]
/// `IoStats` style: plain atomics behind the zero-cost [`Tracked`]
/// race-detector marker (DESIGN.md §14), readable at any time.
#[derive(Default)]
pub struct ViewStats {
    /// Backfills run (initial registration + restart re-backfill).
    pub backfills: Tracked<AtomicU64>,
    /// Incremental refreshes: blocks folded into some view past its
    /// backfill (catch-up folds included).
    pub refreshes: Tracked<AtomicU64>,
    /// Rows appended by incremental folds (not backfill rows).
    pub delta_rows: Tracked<AtomicU64>,
    /// Queries answered from a materialized view.
    pub serve_hits: Tracked<AtomicU64>,
}

impl ViewStats {
    /// Snapshot of `(backfills, refreshes, delta_rows, serve_hits)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.backfills.load(Ordering::Relaxed),
            self.refreshes.load(Ordering::Relaxed),
            self.delta_rows.load(Ordering::Relaxed),
            self.serve_hits.load(Ordering::Relaxed),
        )
    }
}

/// Mutable state of one view, guarded by the view's lock: the fold
/// cursor and the materialized rows. Invariant (the backfill/fold
/// seam): `rows` is exactly the tracking result over blocks
/// `0..folded`, and `folded` never exceeds the applied height.
struct ViewState {
    /// Next height to fold: blocks `0..folded` are reflected in `rows`.
    folded: BlockId,
    /// Materialized result in chain order.
    rows: Vec<Vec<Value>>,
}

/// One registered tracking view.
pub struct TraceView {
    spec: TraceSpec,
    state: RwLock<ViewState>,
}

impl TraceView {
    fn new(spec: TraceSpec) -> TraceView {
        TraceView {
            spec,
            state: RwLock::new(ViewState {
                folded: 0,
                rows: Vec::new(),
            }),
        }
    }

    /// The registered predicate.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// The fold cursor: every block below it is reflected in the
    /// materialized rows.
    pub fn folded(&self) -> BlockId {
        self.state.read().folded
    }
}

/// The registry of materialized tracking views, owned by the ledger.
#[derive(Default)]
pub struct ViewEngine {
    views: RwLock<Vec<Arc<TraceView>>>,
    stats: ViewStats,
}

impl ViewEngine {
    /// The view registered for exactly `spec`, if any.
    pub fn matching(&self, spec: &TraceSpec) -> Option<Arc<TraceView>> {
        self.views.read().iter().find(|v| v.spec == *spec).cloned()
    }

    /// All registered views.
    fn all(&self) -> Vec<Arc<TraceView>> {
        self.views.read().clone()
    }

    /// Specs of every registered view.
    pub fn specs(&self) -> Vec<TraceSpec> {
        self.views.read().iter().map(|v| v.spec.clone()).collect()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.read().len()
    }

    /// True when no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.read().is_empty()
    }

    /// The shared counters.
    pub fn stats(&self) -> &ViewStats {
        &self.stats
    }

    /// Versioned byte encoding of every registered spec (rows are
    /// never persisted — they rebuild by backfill on open).
    pub fn encode_registrations(&self) -> Vec<u8> {
        let specs = self.specs();
        let mut enc = Encoder::new();
        enc.put_u8(REGISTRATION_VERSION);
        enc.put_u32(specs.len() as u32);
        for spec in &specs {
            match spec.window {
                Some((s, e)) => {
                    enc.put_u8(1);
                    enc.put_u64(s);
                    enc.put_u64(e);
                }
                None => enc.put_u8(0),
            }
            match &spec.operator {
                Some(id) => {
                    enc.put_u8(1);
                    enc.put_raw(id);
                }
                None => enc.put_u8(0),
            }
            match &spec.operation {
                Some(t) => {
                    enc.put_u8(1);
                    enc.put_str(t);
                }
                None => enc.put_u8(0),
            }
        }
        enc.finish()
    }

    /// Decodes a registration blob written by
    /// [`Self::encode_registrations`]. Errors (unknown version, torn
    /// bytes) are the caller's signal to treat the file as absent.
    pub fn decode_registrations(bytes: &[u8]) -> Result<Vec<TraceSpec>, TypeError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.get_u8("view registration version")?;
        if version != REGISTRATION_VERSION {
            return Err(TypeError::BadTag {
                context: "view registration version",
                tag: version,
            });
        }
        let count = dec.get_u32("view registration count")?;
        let mut specs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let window = match dec.get_u8("view window flag")? {
                0 => None,
                _ => {
                    let s = dec.get_u64("view window start")?;
                    let e = dec.get_u64("view window end")?;
                    Some((s, e))
                }
            };
            let operator = match dec.get_u8("view operator flag")? {
                0 => None,
                _ => {
                    let raw = dec.get_raw(8, "view operator id")?;
                    let mut id = [0u8; 8];
                    id.copy_from_slice(raw);
                    Some(id)
                }
            };
            let operation = match dec.get_u8("view operation flag")? {
                0 => None,
                _ => Some(dec.get_str("view operation")?.to_string()),
            };
            specs.push(TraceSpec {
                window,
                operator,
                operation,
            });
        }
        Ok(specs)
    }
}

/// Whether `tx` belongs to `spec`'s result — the single predicate
/// every strategy and the fold agree on: operator matches the sender
/// id, operation matches the transaction type case-insensitively, the
/// timestamp falls in the window (inclusive both ends), and internal
/// (`__`-prefixed schema-sync) transactions are invisible.
fn matches(spec: &TraceSpec, tx: &Transaction) -> bool {
    if tx.tname.starts_with("__") {
        return false;
    }
    if let Some(op) = &spec.operator {
        if tx.sender.as_bytes() != op {
            return false;
        }
    }
    if let Some(t) = &spec.operation {
        if !tx.tname.eq_ignore_ascii_case(t) {
            return false;
        }
    }
    match spec.window {
        None => true,
        Some((s, e)) => tx.ts >= s && tx.ts <= e,
    }
}

/// Appends `block`'s delta to `state.rows` and advances the fold
/// cursor. With an operation dimension and the persist stage's
/// relation→rows partition at hand, only that relation's tuple
/// positions are visited (the same `shard_of`-aligned mapping the
/// index lanes consume); otherwise the block's tuples are walked.
/// Returns the number of rows appended.
fn fold_delta(
    state: &mut ViewState,
    spec: &TraceSpec,
    block: &Block,
    rows: Option<&HashMap<String, Vec<u32>>>,
) -> u64 {
    debug_assert_eq!(
        state.folded, block.header.height,
        "fold must be contiguous in height"
    );
    let before = state.rows.len();
    match (spec.operation.as_deref(), rows) {
        (Some(t), Some(map)) => {
            if let Some(positions) = map.get(t) {
                for &i in positions {
                    let tx = &block.transactions[i as usize];
                    if matches(spec, tx) {
                        state.rows.push(crate::executor::materialize(tx));
                    }
                }
            }
        }
        _ => {
            for tx in &block.transactions {
                if matches(spec, tx) {
                    state.rows.push(crate::executor::materialize(tx));
                }
            }
        }
    }
    state.folded = block.header.height + 1;
    (state.rows.len() - before) as u64
}

impl Ledger {
    /// Registers an incremental materialized view for `spec` and
    /// backfills it from the tracking executor, bounded at the applied
    /// height captured under the view's lock (the backfill/fold seam:
    /// the cursor is set to exactly the backfilled height, so the
    /// first fold continues where the backfill stopped). Idempotent —
    /// re-registering an existing spec is a no-op. Returns whether the
    /// view is newly registered. The registration (not the rows) is
    /// persisted so a restarted node re-backfills it.
    pub fn register_trace_view(&self, spec: TraceSpec) -> Result<bool, LedgerError> {
        if !self.register_trace_view_volatile(spec)? {
            return Ok(false);
        }
        self.persist_view_registrations()?;
        Ok(true)
    }

    /// [`Self::register_trace_view`] without persisting the registry —
    /// the open path uses this while re-registering specs it just
    /// loaded.
    fn register_trace_view_volatile(&self, spec: TraceSpec) -> Result<bool, LedgerError> {
        if !spec.is_valid() {
            return Err(LedgerError::BadIndex(
                "tracking view needs at least one dimension".into(),
            ));
        }
        if self.trace_views().matching(&spec).is_some() {
            return Ok(false);
        }
        let view = Arc::new(TraceView::new(spec));
        {
            // Backfill under the (still-private) view's write lock.
            // Blocks applied after the captured height and before the
            // view lands in the registry are healed by the catch-up in
            // `fold_views` / `serve_trace_view`.
            let mut state = view.state.write();
            let height = self.height();
            let exec = Executor::new(self, None);
            let result = exec
                .run_trace_view_backfill(view.spec(), height)
                .map_err(exec_to_ledger)?;
            state.rows = result.rows;
            state.folded = height;
        }
        self.trace_views().views.write().push(view);
        self.trace_views()
            .stats
            .backfills
            .fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Serves a `TRACE` whose spec matches a registered view: catches
    /// the view up to the applied height (healing any staleness from a
    /// crash, restart, or stopped pipeline), then clones the
    /// materialized rows — zero index probes. `None` when no view
    /// matches `spec`.
    pub fn serve_trace_view(&self, spec: &TraceSpec) -> Result<Option<QueryResult>, LedgerError> {
        let Some(view) = self.trace_views().matching(spec) else {
            return Ok(None);
        };
        let target = self.height();
        let mut state = view.state.write();
        self.catch_up_locked(view.spec(), &mut state, target)?;
        self.trace_views()
            .stats
            .serve_hits
            .fetch_add(1, Ordering::Relaxed);
        Ok(Some(QueryResult {
            columns: tracking_header(),
            rows: state.rows.clone(),
        }))
    }

    /// The fold cursor of the view registered for `spec`, if any
    /// (tests and stats).
    pub fn trace_view_folded(&self, spec: &TraceSpec) -> Option<BlockId> {
        self.trace_views().matching(spec).map(|v| v.folded())
    }

    /// Folds one applied block into every registered view. Callers
    /// guarantee the block is at or below the applied height (the
    /// sequential applier calls this after the applied-height advance;
    /// the pipeline's view-folder stage waits on
    /// [`Ledger::wait_for_height`] first), so a view's cursor never
    /// runs ahead of [`Ledger::height`]. Idempotent per block: a block
    /// below a view's cursor is skipped, so a re-fold after a healed
    /// crash is harmless. A gap (view registered mid-stream before its
    /// registry insert was visible to this path) is closed by catching
    /// up from the store.
    pub(crate) fn fold_views(
        &self,
        block: &Block,
        rows: Option<&HashMap<String, Vec<u32>>>,
    ) -> Result<(), LedgerError> {
        if self.trace_views().is_empty() {
            return Ok(());
        }
        debug_assert!(
            block.header.height < self.height(),
            "view fold observed height {} above applied height {}",
            block.header.height,
            self.height()
        );
        let height = block.header.height;
        for view in self.trace_views().all() {
            let mut state = view.state.write();
            if state.folded > height {
                continue; // already folded (idempotent re-fold)
            }
            if state.folded < height {
                self.catch_up_locked(view.spec(), &mut state, height)?;
            }
            let delta = fold_delta(&mut state, view.spec(), block, rows);
            let stats = self.trace_views().stats();
            stats.refreshes.fetch_add(1, Ordering::Relaxed);
            stats.delta_rows.fetch_add(delta, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Folds blocks `state.folded..target` into one view from the
    /// store (all of them are applied, hence persisted and readable).
    fn catch_up_locked(
        &self,
        spec: &TraceSpec,
        state: &mut ViewState,
        target: BlockId,
    ) -> Result<(), LedgerError> {
        while state.folded < target {
            let block = self.read_block(state.folded)?;
            let delta = fold_delta(state, spec, &block, None);
            let stats = self.trace_views().stats();
            stats.refreshes.fetch_add(1, Ordering::Relaxed);
            stats.delta_rows.fetch_add(delta, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Re-registers (and re-backfills) every persisted view
    /// registration. The open path calls this after the restart replay
    /// has healed the indexes and the applied height is final, so the
    /// backfill sees a consistent chain. Advisory: a torn or
    /// unreadable file costs the registrations, never correctness.
    pub(crate) fn load_trace_views(&self) -> Result<usize, LedgerError> {
        let Some(bytes) = self.store().load_view_registrations()? else {
            return Ok(0);
        };
        let Ok(specs) = ViewEngine::decode_registrations(&bytes) else {
            eprintln!("sebdb: discarding undecodable view registrations");
            return Ok(0);
        };
        let mut loaded = 0;
        for spec in specs {
            if self.register_trace_view_volatile(spec)? {
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    fn persist_view_registrations(&self) -> Result<(), LedgerError> {
        let bytes = self.trace_views().encode_registrations();
        self.store().save_view_registrations(&bytes)?;
        Ok(())
    }
}

/// Maps executor errors surfacing inside ledger-level view plumbing
/// back onto [`LedgerError`].
fn exec_to_ledger(e: ExecError) -> LedgerError {
    match e {
        ExecError::Ledger(e) => e,
        other => LedgerError::BadIndex(other.to_string()),
    }
}

impl Executor<'_> {
    /// A fresh tracking execution for a view's backfill, bounded at
    /// `height` and never routed through a view itself: strategy
    /// resolution is forced past `Auto` so registration cannot
    /// recurse.
    pub(crate) fn run_trace_view_backfill(
        &self,
        spec: &TraceSpec,
        height: BlockId,
    ) -> Result<QueryResult, ExecError> {
        self.run_trace_bounded(
            spec.window,
            &spec.operator.map(sebdb_crypto::sig::KeyId),
            spec.operation.as_deref(),
            Strategy::Layered,
            height,
        )
    }
}
