//! The staged write pipeline: seal → persist → index.
//!
//! The applier used to run all three stages on one thread, so the
//! Merkle + MAC work of sealing block N serialized behind the index
//! updates of block N−1 even though they touch disjoint state. This
//! module splits the loop into a two-stage pipeline:
//!
//! ```text
//!  consensus stream                bounded(depth-1)
//!  ───────────────▶ [sealer]  ─────────────────────▶ [indexer]
//!                   seal_ordered                      schemas.apply_block
//!                   persist_block                     index_appended
//!                   (Merkle, MACs,                    (four index
//!                    store append)                     families; advances
//!                                                      applied height)
//! ```
//!
//! Invariant: [`Ledger::height`] (the applied height — what
//! `wait_applied` and every reader observe) only advances after BOTH
//! persist and index complete for a block, and the schema catalog is
//! applied before that advance, so read-your-writes and the
//! schema-before-height ordering are exactly as sequential.
//!
//! Depth semantics (`SEBDB_PIPELINE_DEPTH`, default 2): the number of
//! blocks in flight past the consensus stream. Depth 1 is the
//! sequential applier (one thread, no overlap, the reference
//! semantics); depth N ≥ 2 runs the two threads with a bounded
//! hand-over channel of capacity N−1, so sealing block N overlaps
//! indexing block N−1 while backpressure keeps at most N blocks in
//! flight.
//!
//! Failure mode: any stage error poisons the shared [`ApplierHealth`]
//! with a descriptive message, wakes every height waiter, and stops
//! the pipeline — so writers fail fast with `NodeError::ApplierDead`
//! instead of spinning their full apply timeout against a dead
//! applier.

use crate::ledger::Ledger;
use crate::schema_mgr::SchemaManager;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use sebdb_consensus::OrderedBlock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Environment knob naming the pipeline depth (blocks in flight).
pub const PIPELINE_DEPTH_ENV: &str = "SEBDB_PIPELINE_DEPTH";

/// Default pipeline depth: one block sealing while one block indexes.
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// Picks a pipeline depth for a host with `cores` CPUs: a single core
/// gains nothing from overlapping seal and index stages (the threads
/// just time-slice), so it gets the sequential reference (depth 1);
/// two or more cores get [`DEFAULT_PIPELINE_DEPTH`].
pub fn auto_pipeline_depth(cores: usize) -> usize {
    if cores <= 1 {
        1
    } else {
        DEFAULT_PIPELINE_DEPTH
    }
}

/// Resolves the pipeline depth from `SEBDB_PIPELINE_DEPTH` (clamped to
/// ≥ 1). When the knob is unset, auto-tunes from
/// [`std::thread::available_parallelism`] via [`auto_pipeline_depth`].
pub fn pipeline_depth_from_env() -> usize {
    std::env::var(PIPELINE_DEPTH_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            auto_pipeline_depth(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
}

/// Shared applier health: write-once poisoned state carrying the error
/// that killed the pipeline.
#[derive(Default)]
pub struct ApplierHealth {
    error: OnceLock<String>,
}

impl ApplierHealth {
    /// Fresh, healthy state.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The fatal error, if the applier has died.
    pub fn error(&self) -> Option<&str> {
        self.error.get().map(String::as_str)
    }

    /// True once any stage has failed.
    pub fn is_poisoned(&self) -> bool {
        self.error.get().is_some()
    }

    fn poison(&self, msg: String) {
        let _ = self.error.set(msg);
    }
}

/// Poisons the health flag if the owning thread unwinds without
/// disarming — turns a stage panic into a fail-fast signal instead of
/// a silently wedged chain.
struct PoisonOnPanic {
    health: Arc<ApplierHealth>,
    ledger: Arc<Ledger>,
    stage: &'static str,
    armed: bool,
}

impl Drop for PoisonOnPanic {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            self.health.poison(format!("{} stage panicked", self.stage));
            self.ledger.notify_height_waiters();
        }
    }
}

/// The running two-stage applier. Owns the sealer and indexer threads;
/// [`ApplyPipeline::join`] (or drop) waits for them after the caller
/// has raised its stop flag or dropped the source channel.
pub struct ApplyPipeline {
    health: Arc<ApplierHealth>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ApplyPipeline {
    /// Starts the pipeline over `source` (the totally-ordered block
    /// stream from consensus). `depth` ≤ 1 runs the sequential
    /// single-thread applier; larger depths run the two-stage pipeline
    /// with `depth − 1` sealed blocks of buffer. The pipeline stops
    /// when `stopped` is raised, `source` disconnects, or a stage
    /// fails (poisoning `health`).
    pub fn start(
        ledger: Arc<Ledger>,
        schemas: Arc<SchemaManager>,
        source: Receiver<OrderedBlock>,
        stopped: Arc<AtomicBool>,
        depth: usize,
    ) -> ApplyPipeline {
        let health = ApplierHealth::new();
        let threads = if depth <= 1 {
            vec![Self::spawn_sequential(
                ledger,
                schemas,
                source,
                stopped,
                Arc::clone(&health),
            )]
        } else {
            Self::spawn_staged(ledger, schemas, source, stopped, Arc::clone(&health), depth)
        };
        ApplyPipeline { health, threads }
    }

    /// The shared health flag (clone to hand to waiters).
    pub fn health(&self) -> &Arc<ApplierHealth> {
        &self.health
    }

    /// Joins both stage threads. The caller must first make the
    /// pipeline quit: raise the stop flag or drop the source sender.
    pub fn join(&mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }

    /// Depth 1: the reference sequential applier — every stage on one
    /// thread, in order, per block.
    fn spawn_sequential(
        ledger: Arc<Ledger>,
        schemas: Arc<SchemaManager>,
        source: Receiver<OrderedBlock>,
        stopped: Arc<AtomicBool>,
        health: Arc<ApplierHealth>,
    ) -> std::thread::JoinHandle<()> {
        sebdb_parallel::spawn_service("applier", move || {
            let mut guard = PoisonOnPanic {
                health: Arc::clone(&health),
                ledger: Arc::clone(&ledger),
                stage: "applier",
                armed: true,
            };
            loop {
                if stopped.load(Ordering::Relaxed) {
                    guard.armed = false;
                    return;
                }
                match source.recv_timeout(Duration::from_millis(20)) {
                    Ok(ordered) => {
                        let staged = ledger
                            .seal_ordered(ordered)
                            .and_then(|block| ledger.persist_block(block));
                        match staged {
                            Ok(block) => {
                                // Schemas before the applied-height
                                // advance inside index_appended, so the
                                // catalog is never behind the height a
                                // writer observes after its commit ack.
                                schemas.apply_block(&block);
                                ledger.index_appended(&block);
                            }
                            Err(e) => {
                                health.poison(format!("applier: {e}"));
                                ledger.notify_height_waiters();
                                guard.armed = false;
                                return;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        guard.armed = false;
                        return;
                    }
                }
            }
        })
    }

    /// Depth ≥ 2: sealer and indexer threads with a bounded hand-over
    /// channel.
    fn spawn_staged(
        ledger: Arc<Ledger>,
        schemas: Arc<SchemaManager>,
        source: Receiver<OrderedBlock>,
        stopped: Arc<AtomicBool>,
        health: Arc<ApplierHealth>,
        depth: usize,
    ) -> Vec<std::thread::JoinHandle<()>> {
        let (stage_tx, stage_rx) = bounded::<Arc<sebdb_types::Block>>(depth - 1);
        let sealer = {
            let ledger = Arc::clone(&ledger);
            let health = Arc::clone(&health);
            let stopped = Arc::clone(&stopped);
            sebdb_parallel::spawn_service("sealer", move || {
                let mut guard = PoisonOnPanic {
                    health: Arc::clone(&health),
                    ledger: Arc::clone(&ledger),
                    stage: "sealer",
                    armed: true,
                };
                loop {
                    if stopped.load(Ordering::Relaxed) || health.is_poisoned() {
                        guard.armed = false;
                        return; // dropping stage_tx drains the indexer
                    }
                    match source.recv_timeout(Duration::from_millis(20)) {
                        Ok(ordered) => {
                            let staged = ledger
                                .seal_ordered(ordered)
                                .and_then(|block| ledger.persist_block(block));
                            match staged {
                                Ok(block) => {
                                    if stage_tx.send(block).is_err() {
                                        guard.armed = false;
                                        return; // indexer gone
                                    }
                                }
                                Err(e) => {
                                    health.poison(format!("sealer: {e}"));
                                    ledger.notify_height_waiters();
                                    guard.armed = false;
                                    return;
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            guard.armed = false;
                            return;
                        }
                    }
                }
            })
        };
        let indexer = {
            sebdb_parallel::spawn_service("indexer", move || {
                let mut guard = PoisonOnPanic {
                    health: Arc::clone(&health),
                    ledger: Arc::clone(&ledger),
                    stage: "indexer",
                    armed: true,
                };
                // Drains until the sealer drops its sender; index order
                // is the channel order, which is seal (= height) order.
                for block in stage_rx.iter() {
                    schemas.apply_block(&block);
                    ledger.index_appended(&block);
                }
                guard.armed = false;
            })
        };
        vec![sealer, indexer]
    }
}

impl Drop for ApplyPipeline {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use sebdb_crypto::sig::KeyId;
    use sebdb_crypto::MacKeypair;
    use sebdb_storage::BlockStore;
    use sebdb_types::{Transaction, Value};
    use std::time::Instant;

    fn ledger() -> Arc<Ledger> {
        Arc::new(
            Ledger::new(
                Arc::new(BlockStore::in_memory()),
                MacKeypair::from_key([7u8; 32]),
            )
            .unwrap(),
        )
    }

    fn ordered(seq: u64, n: usize) -> OrderedBlock {
        // Fixed timestamps: the equivalence assertion compares tip
        // hashes across two independent runs.
        OrderedBlock {
            seq,
            timestamp_ms: 1_000 + seq,
            txs: (0..n)
                .map(|i| {
                    let mut t = Transaction::new(
                        1_000 + seq,
                        KeyId([1; 8]),
                        "donate",
                        vec![Value::Int(i as i64 + 1)],
                    );
                    t.tid = seq * 100 + i as u64 + 1;
                    t
                })
                .collect(),
        }
    }

    fn run_depth(depth: usize, blocks: u64) -> Arc<Ledger> {
        let ledger = ledger();
        let schemas = Arc::new(SchemaManager::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut pipe = ApplyPipeline::start(
            Arc::clone(&ledger),
            schemas,
            rx,
            Arc::clone(&stopped),
            depth,
        );
        for seq in 0..blocks {
            tx.send(ordered(seq, 8)).unwrap();
        }
        assert!(
            ledger.wait_for_height(blocks, Instant::now() + Duration::from_secs(10), || pipe
                .health()
                .is_poisoned())
        );
        stopped.store(true, Ordering::Relaxed);
        drop(tx);
        pipe.join();
        ledger
    }

    #[test]
    fn depths_produce_identical_chains() {
        let a = run_depth(1, 20);
        let b = run_depth(4, 20);
        assert_eq!(a.height(), 20);
        assert_eq!(b.height(), 20);
        assert_eq!(a.tip_hash(), b.tip_hash());
        a.verify_chain().unwrap();
        b.verify_chain().unwrap();
    }

    #[test]
    fn stage_error_poisons_health() {
        let ledger = ledger();
        let schemas = Arc::new(SchemaManager::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut pipe =
            ApplyPipeline::start(Arc::clone(&ledger), schemas, rx, Arc::clone(&stopped), 2);
        // A gap in the sequence is a seal error: seq 5 against height 0.
        tx.send(ordered(5, 2)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pipe.health().is_poisoned() {
            assert!(Instant::now() < deadline, "health never poisoned");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pipe.health().error().unwrap().contains("sealer"));
        // Waiters abort fast instead of burning their full timeout.
        let waited = Instant::now();
        assert!(
            !ledger.wait_for_height(1, Instant::now() + Duration::from_secs(10), || pipe
                .health()
                .is_poisoned())
        );
        assert!(waited.elapsed() < Duration::from_secs(2));
        stopped.store(true, Ordering::Relaxed);
        drop(tx);
        pipe.join();
    }

    #[test]
    fn indexer_stage_panic_poisons_health_and_wakes_waiters() {
        let ledger = ledger();
        // Inject a panic while indexing the second block (header height
        // 1) — after the sealer has persisted it, mid-way through the
        // indexer stage.
        ledger.set_index_fault(Some(Box::new(|block: &sebdb_types::Block| {
            if block.header.height == 1 {
                panic!("injected index fault at height 1");
            }
        })));
        let schemas = Arc::new(SchemaManager::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut pipe =
            ApplyPipeline::start(Arc::clone(&ledger), schemas, rx, Arc::clone(&stopped), 3);
        for seq in 0..4 {
            tx.send(ordered(seq, 2)).unwrap();
        }
        // The waiter must wake on the poison signal, not burn its
        // timeout.
        let waited = Instant::now();
        let reached = ledger.wait_for_height(4, Instant::now() + Duration::from_secs(10), || {
            pipe.health().is_poisoned()
        });
        assert!(!reached, "chain must not reach height 4 past the fault");
        assert!(
            waited.elapsed() < Duration::from_secs(5),
            "waiter should abort fast on poison, waited {:?}",
            waited.elapsed()
        );
        assert!(pipe.health().is_poisoned());
        let err = pipe.health().error().unwrap();
        assert!(
            err.contains("indexer"),
            "poison should name the stage: {err}"
        );
        // The first block applied cleanly; the faulty one persisted
        // (the sealer ran ahead) but never indexed, so the applied
        // height stays behind the chain height.
        assert_eq!(ledger.height(), 1);
        assert!(ledger.chain_height() >= 2);
        stopped.store(true, Ordering::Relaxed);
        drop(tx);
        pipe.join();
    }

    #[test]
    fn env_depth_parsing_clamps() {
        // Not touching the real env (tests run threaded): only the
        // default path is exercised here.
        assert_eq!(DEFAULT_PIPELINE_DEPTH, 2);
        assert!(pipeline_depth_from_env() >= 1);
    }

    #[test]
    fn auto_depth_single_core_is_sequential() {
        assert_eq!(auto_pipeline_depth(0), 1);
        assert_eq!(auto_pipeline_depth(1), 1);
    }

    #[test]
    fn auto_depth_multi_core_overlaps_stages() {
        assert_eq!(auto_pipeline_depth(2), DEFAULT_PIPELINE_DEPTH);
        assert_eq!(auto_pipeline_depth(8), DEFAULT_PIPELINE_DEPTH);
    }

    #[test]
    fn env_unset_matches_auto_tuned_depth() {
        if std::env::var(PIPELINE_DEPTH_ENV).is_err() {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            assert_eq!(pipeline_depth_from_env(), auto_pipeline_depth(cores));
        }
    }
}
