//! The staged write pipeline: seal | persist | index, with the index
//! stage fanned out into relation-sharded applier lanes.
//!
//! The applier used to run every stage on one thread, so the
//! Merkle + MAC work of sealing block N serialized behind the index
//! updates of block N−1 even though they touch disjoint state. PR 2
//! split seal+persist from index; this revision completes the split
//! into three true stages over bounded channels and shards the index
//! stage by relation:
//!
//! ```text
//!  consensus stream      bounded       bounded(×L)
//!  ───────────▶ [sealer] ─────▶ [persister] ─┬──▶ [indexer-lane0]  chain shard +
//!               seal_ordered_at  verify       │     block/table idx  shards 0,L,2L…
//!               (Merkle, MACs;   store append │──▶ [indexer-lane1]  shards 1,L+1,…
//!                local chain     schema apply │        …
//!                cursor)         partition    └──▶ [indexer-laneL−1]
//!                                by relation        each lane: lane_applied(min ↑)
//! ```
//!
//! The persister partitions each block's tuples by relation once and
//! fans the block out to every lane. On a disk-backed store the append
//! itself fans out too: the block's tuples are routed to per-relation
//! partition segment sequences (`sebdb-storage`'s partitioned layout,
//! same `shard_of` mapping as the lanes) written in parallel, with the
//! chain-order manifest record as the single commit point — so the
//! persist stage's disk bandwidth scales with the relations touched,
//! not just the lane count. Lane *k* of *L* maintains the
//! per-table index families of every shard with `shard % L == k`; lane
//! 0 additionally owns the chain-level structures (block-level
//! B⁺-tree, table bitmaps, and the system tracking indexes, whose
//! maintenance walks every tuple anyway). Lanes receive blocks in
//! sealed chain order over their own bounded channel, so per-lane
//! order is the chain order even though lanes interleave freely with
//! each other.
//!
//! Invariant: [`Ledger::height`] (the applied height — what
//! `wait_applied` and every reader observe) is the **minimum** over
//! the per-lane applied-height vector, so it only advances once every
//! lane has finished a block — applied ≤ indexed ≤ persisted on every
//! schedule, and cross-relation reads (joins, GET BLOCK, TRACE) stay
//! consistent. The schema catalog is applied by the persister before
//! any lane sees the block, so it is never behind an observed height.
//!
//! A fourth consumer, the **view folder**, sits strictly downstream of
//! the index lanes: it receives every persisted block (with the same
//! relation→rows partition) but folds it into the registered
//! materialized `TRACE` views only once the applied height covers it,
//! so a view never observes a height above [`Ledger::height`] (see
//! [`crate::views`]).
//!
//! Knobs: `SEBDB_PIPELINE_DEPTH` bounds blocks in flight past the
//! consensus stream (depth 1 + lanes 1 is the sequential
//! single-thread reference). `SEBDB_APPLIER_LANES` sets the lane
//! count; unset, it auto-tunes from `available_parallelism` (1 on a
//! single core, else `min(cores, INDEX_SHARDS)`). Lanes = 1 runs the
//! three stages with a single indexer lane — byte-identical chains,
//! identical query results.
//!
//! Failure mode: any stage error or panic poisons the shared
//! [`ApplierHealth`] with a message naming the stage, wakes every
//! height waiter, and stops the pipeline — writers fail fast with
//! `NodeError::ApplierDead` instead of spinning their full apply
//! timeout. Crash-at-stage-boundary recovery is the ledger's restart
//! replay: blocks persisted but not (fully) indexed are re-indexed
//! from the chain on reopen, per lane or not.

use crate::ledger::{Ledger, INDEX_SHARDS};
use crate::schema_mgr::SchemaManager;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use sebdb_consensus::OrderedBlock;
use sebdb_types::Block;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Environment knob naming the pipeline depth (blocks in flight).
pub const PIPELINE_DEPTH_ENV: &str = "SEBDB_PIPELINE_DEPTH";

/// Environment knob naming the applier lane count.
pub const APPLIER_LANES_ENV: &str = "SEBDB_APPLIER_LANES";

/// Default pipeline depth: one block sealing while one block indexes.
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// Picks a pipeline depth for a host with `cores` CPUs: a single core
/// gains nothing from overlapping seal and index stages (the threads
/// just time-slice), so it gets the sequential reference (depth 1);
/// two or more cores get [`DEFAULT_PIPELINE_DEPTH`].
pub fn auto_pipeline_depth(cores: usize) -> usize {
    if cores <= 1 {
        1
    } else {
        DEFAULT_PIPELINE_DEPTH
    }
}

/// Resolves the pipeline depth from `SEBDB_PIPELINE_DEPTH` (clamped to
/// ≥ 1). When the knob is unset, auto-tunes from
/// [`std::thread::available_parallelism`] via [`auto_pipeline_depth`].
pub fn pipeline_depth_from_env() -> usize {
    std::env::var(PIPELINE_DEPTH_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            auto_pipeline_depth(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
}

/// Picks an applier lane count for a host with `cores` CPUs: a single
/// core gets the sequential reference (1 lane — parallel index
/// maintenance would just time-slice); more cores get one lane per
/// core up to [`INDEX_SHARDS`] (more lanes than shards would idle).
pub fn auto_applier_lanes(cores: usize) -> usize {
    if cores <= 1 {
        1
    } else {
        cores.min(INDEX_SHARDS)
    }
}

/// Resolves the applier lane count from `SEBDB_APPLIER_LANES` (clamped
/// to `1..=INDEX_SHARDS`). When the knob is unset, auto-tunes from
/// [`std::thread::available_parallelism`] via [`auto_applier_lanes`].
pub fn applier_lanes_from_env() -> usize {
    std::env::var(APPLIER_LANES_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.clamp(1, INDEX_SHARDS))
        .unwrap_or_else(|| {
            auto_applier_lanes(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
}

/// Shared applier health: write-once poisoned state carrying the error
/// that killed the pipeline.
#[derive(Default)]
pub struct ApplierHealth {
    error: OnceLock<String>,
}

impl ApplierHealth {
    /// Fresh, healthy state.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The fatal error, if the applier has died.
    pub fn error(&self) -> Option<&str> {
        self.error.get().map(String::as_str)
    }

    /// True once any stage has failed.
    pub fn is_poisoned(&self) -> bool {
        self.error.get().is_some()
    }

    fn poison(&self, msg: String) {
        let _ = self.error.set(msg);
    }
}

/// Poisons the health flag if the owning thread unwinds without
/// disarming — turns a stage panic into a fail-fast signal instead of
/// a silently wedged chain.
struct PoisonOnPanic {
    health: Arc<ApplierHealth>,
    ledger: Arc<Ledger>,
    stage: String,
    armed: bool,
}

impl Drop for PoisonOnPanic {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            self.health.poison(format!("{} stage panicked", self.stage));
            self.ledger.notify_height_waiters();
        }
    }
}

/// A block the persist stage hands to every applier lane: the
/// persisted block plus its relation→rows partition, computed once.
type LaneWork = (Arc<Block>, Arc<HashMap<String, Vec<u32>>>);

/// The running staged applier. Owns the stage threads;
/// [`ApplyPipeline::join`] (or drop) waits for them after the caller
/// has raised its stop flag or dropped the source channel.
pub struct ApplyPipeline {
    health: Arc<ApplierHealth>,
    threads: Vec<std::thread::JoinHandle<()>>,
    ledger: Arc<Ledger>,
    clear_lanes: bool,
}

impl ApplyPipeline {
    /// Starts the pipeline over `source` (the totally-ordered block
    /// stream from consensus) with the lane count from
    /// [`applier_lanes_from_env`]. `depth` ≤ 1 with one lane runs the
    /// sequential single-thread applier; otherwise the three-stage
    /// pipeline with `depth − 1` blocks of inter-stage buffer. The
    /// pipeline stops when `stopped` is raised, `source` disconnects,
    /// or a stage fails (poisoning `health`).
    pub fn start(
        ledger: Arc<Ledger>,
        schemas: Arc<SchemaManager>,
        source: Receiver<OrderedBlock>,
        stopped: Arc<AtomicBool>,
        depth: usize,
    ) -> ApplyPipeline {
        Self::start_with_lanes(ledger, schemas, source, stopped, depth, 1)
    }

    /// [`Self::start`] with an explicit applier lane count (clamped to
    /// `1..=INDEX_SHARDS`). `depth` ≤ 1 **and** `lanes` ≤ 1 is the
    /// sequential reference; any other combination runs
    /// seal | persist | index over bounded channels with `lanes`
    /// relation-sharded indexer lanes.
    pub fn start_with_lanes(
        ledger: Arc<Ledger>,
        schemas: Arc<SchemaManager>,
        source: Receiver<OrderedBlock>,
        stopped: Arc<AtomicBool>,
        depth: usize,
        lanes: usize,
    ) -> ApplyPipeline {
        let lanes = lanes.clamp(1, INDEX_SHARDS);
        let health = ApplierHealth::new();
        let (threads, clear_lanes) = if depth <= 1 && lanes <= 1 {
            (
                vec![Self::spawn_sequential(
                    Arc::clone(&ledger),
                    schemas,
                    source,
                    stopped,
                    Arc::clone(&health),
                )],
                false,
            )
        } else {
            (
                Self::spawn_staged(
                    Arc::clone(&ledger),
                    schemas,
                    source,
                    stopped,
                    Arc::clone(&health),
                    depth,
                    lanes,
                ),
                true,
            )
        };
        ApplyPipeline {
            health,
            threads,
            ledger,
            clear_lanes,
        }
    }

    /// The shared health flag (clone to hand to waiters).
    pub fn health(&self) -> &Arc<ApplierHealth> {
        &self.health
    }

    /// Joins every stage thread. The caller must first make the
    /// pipeline quit: raise the stop flag or drop the source sender.
    pub fn join(&mut self) {
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        if self.clear_lanes {
            self.clear_lanes = false;
            self.ledger.clear_applied_vector();
        }
    }

    /// Depth 1, one lane: the reference sequential applier — every
    /// stage on one thread, in order, per block.
    fn spawn_sequential(
        ledger: Arc<Ledger>,
        schemas: Arc<SchemaManager>,
        source: Receiver<OrderedBlock>,
        stopped: Arc<AtomicBool>,
        health: Arc<ApplierHealth>,
    ) -> std::thread::JoinHandle<()> {
        sebdb_parallel::spawn_service("applier", move || {
            let mut guard = PoisonOnPanic {
                health: Arc::clone(&health),
                ledger: Arc::clone(&ledger),
                stage: "applier".into(),
                armed: true,
            };
            loop {
                if stopped.load(Ordering::Relaxed) {
                    guard.armed = false;
                    return;
                }
                match source.recv_timeout(Duration::from_millis(20)) {
                    Ok(ordered) => {
                        let staged = ledger
                            .seal_ordered(ordered)
                            .and_then(|block| ledger.persist_block(block));
                        match staged {
                            Ok(block) => {
                                // Schemas before the applied-height
                                // advance inside index_appended, so the
                                // catalog is never behind the height a
                                // writer observes after its commit ack.
                                schemas.apply_block(&block);
                                ledger.index_appended(&block);
                            }
                            Err(e) => {
                                health.poison(format!("applier: {e}"));
                                ledger.notify_height_waiters();
                                guard.armed = false;
                                return;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        guard.armed = false;
                        return;
                    }
                }
            }
        })
    }

    /// The three-stage pipeline: sealer and persister threads plus
    /// `lanes` indexer lanes, every hand-over channel bounded.
    fn spawn_staged(
        ledger: Arc<Ledger>,
        schemas: Arc<SchemaManager>,
        source: Receiver<OrderedBlock>,
        stopped: Arc<AtomicBool>,
        health: Arc<ApplierHealth>,
        depth: usize,
        lanes: usize,
    ) -> Vec<std::thread::JoinHandle<()>> {
        let buffer = depth.saturating_sub(1).max(1);
        ledger.install_applied_vector(lanes);
        let (seal_tx, seal_rx) = bounded::<Block>(buffer);
        let mut threads = Vec::with_capacity(2 + lanes);

        // Stage 1: sealer. Tracks its own (prev, height) chain cursor
        // so it can seal block N+1 while the persister is still
        // appending block N (the store tip lags the cursor by the
        // blocks in flight).
        threads.push({
            let ledger = Arc::clone(&ledger);
            let health = Arc::clone(&health);
            let stopped = Arc::clone(&stopped);
            sebdb_parallel::spawn_service("sealer", move || {
                let mut guard = PoisonOnPanic {
                    health: Arc::clone(&health),
                    ledger: Arc::clone(&ledger),
                    stage: "sealer".into(),
                    armed: true,
                };
                let mut prev = ledger.tip_hash();
                let mut height = ledger.chain_height();
                loop {
                    if stopped.load(Ordering::Relaxed) || health.is_poisoned() {
                        guard.armed = false;
                        return; // dropping seal_tx drains downstream
                    }
                    match source.recv_timeout(Duration::from_millis(20)) {
                        Ok(ordered) => match ledger.seal_ordered_at(prev, height, ordered) {
                            Ok(block) => {
                                prev = block.header.block_hash;
                                height += 1;
                                if seal_tx.send(block).is_err() {
                                    guard.armed = false;
                                    return; // persister gone
                                }
                            }
                            Err(e) => {
                                health.poison(format!("sealer: {e}"));
                                ledger.notify_height_waiters();
                                guard.armed = false;
                                return;
                            }
                        },
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            guard.armed = false;
                            return;
                        }
                    }
                }
            })
        });

        // Stage 2: persister. Verifies + appends each sealed block,
        // applies schema transactions (before any lane can index the
        // block, so the catalog never lags an observed height), then
        // partitions tuples by relation once and fans out to lanes
        // (and the view folder).
        let mut lane_channels: Vec<(Sender<LaneWork>, Receiver<LaneWork>)> = Vec::new();
        for _ in 0..lanes {
            lane_channels.push(bounded::<LaneWork>(buffer));
        }
        let (view_tx, view_rx) = bounded::<LaneWork>(buffer);
        let lane_txs: Vec<Sender<LaneWork>> = lane_channels
            .iter()
            .map(|(tx, _)| tx.clone())
            .chain(std::iter::once(view_tx))
            .collect();
        threads.push({
            let ledger = Arc::clone(&ledger);
            let health = Arc::clone(&health);
            sebdb_parallel::spawn_service("persister", move || {
                let mut guard = PoisonOnPanic {
                    health: Arc::clone(&health),
                    ledger: Arc::clone(&ledger),
                    stage: "persister".into(),
                    armed: true,
                };
                // Drains until the sealer drops its sender; persist
                // order is the channel order, which is seal (= height)
                // order.
                for block in seal_rx.iter() {
                    match ledger.persist_block(block) {
                        Ok(block) => {
                            schemas.apply_block(&block);
                            let rows = Arc::new(Ledger::relation_rows(&block));
                            let mut gone = false;
                            for tx in &lane_txs {
                                if tx.send((Arc::clone(&block), Arc::clone(&rows))).is_err() {
                                    gone = true; // lane died (poisoned)
                                    break;
                                }
                            }
                            if gone {
                                break;
                            }
                        }
                        Err(e) => {
                            health.poison(format!("persister: {e}"));
                            ledger.notify_height_waiters();
                            break;
                        }
                    }
                }
                guard.armed = false;
            })
        });

        // Stage 3: the relation-sharded indexer lanes. Lane k owns the
        // per-table shards with `shard % lanes == k`; lane 0 also owns
        // the chain-level structures. Each lane advances its slot of
        // the applied-height vector; the scalar applied height readers
        // see is the min over lanes.
        for (lane, (_, lane_rx)) in lane_channels.into_iter().enumerate() {
            let ledger = Arc::clone(&ledger);
            let health = Arc::clone(&health);
            let name = format!("indexer-lane{lane}");
            let thread_name = name.clone();
            threads.push(sebdb_parallel::spawn_service(&thread_name, move || {
                let mut guard = PoisonOnPanic {
                    health: Arc::clone(&health),
                    ledger: Arc::clone(&ledger),
                    stage: name,
                    armed: true,
                };
                for (block, rows) in lane_rx.iter() {
                    if lane == 0 {
                        ledger.index_chain_lane(&block);
                    }
                    ledger.index_relation_lane(lane, lanes, &block, &rows);
                    ledger.lane_applied(lane, block.header.height + 1);
                }
                guard.armed = false;
            }));
        }

        // Stage 4: the view folder — the fourth pipeline consumer,
        // strictly downstream of the index lanes. It receives the same
        // per-block work the lanes do but waits for the applied height
        // (the min over every lane) to cover a block before folding it
        // into the registered materialized views, so a view never
        // observes a height above `Ledger::height()`. The lanes drain
        // independently of this channel, so the wait cannot deadlock
        // the pipeline; on stop or poison any unfolded blocks heal via
        // the serve path's catch-up.
        threads.push({
            let ledger = Arc::clone(&ledger);
            let health = Arc::clone(&health);
            let stopped = Arc::clone(&stopped);
            sebdb_parallel::spawn_service("view-folder", move || {
                let mut guard = PoisonOnPanic {
                    health: Arc::clone(&health),
                    ledger: Arc::clone(&ledger),
                    stage: "view-folder".into(),
                    armed: true,
                };
                for (block, rows) in view_rx.iter() {
                    let target = block.header.height + 1;
                    while !ledger.wait_for_height(
                        target,
                        Instant::now() + Duration::from_millis(100),
                        || stopped.load(Ordering::Relaxed) || health.is_poisoned(),
                    ) {
                        if stopped.load(Ordering::Relaxed) || health.is_poisoned() {
                            guard.armed = false;
                            return;
                        }
                    }
                    if let Err(e) = ledger.fold_views(&block, Some(&rows)) {
                        health.poison(format!("view-folder: {e}"));
                        ledger.notify_height_waiters();
                        break;
                    }
                }
                guard.armed = false;
            })
        });
        threads
    }
}

impl Drop for ApplyPipeline {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use sebdb_crypto::sig::KeyId;
    use sebdb_crypto::MacKeypair;
    use sebdb_storage::BlockStore;
    use sebdb_types::{Transaction, Value};
    use std::time::Instant;

    fn ledger() -> Arc<Ledger> {
        Arc::new(
            Ledger::new(
                Arc::new(BlockStore::in_memory()),
                MacKeypair::from_key([7u8; 32]),
            )
            .unwrap(),
        )
    }

    fn ordered(seq: u64, n: usize) -> OrderedBlock {
        // Fixed timestamps: the equivalence assertion compares tip
        // hashes across two independent runs.
        OrderedBlock {
            seq,
            timestamp_ms: 1_000 + seq,
            txs: (0..n)
                .map(|i| {
                    let mut t = Transaction::new(
                        1_000 + seq,
                        KeyId([1; 8]),
                        // Spread tuples over relations so every lane of
                        // a multi-lane run has shards to maintain.
                        if i % 2 == 0 { "donate" } else { "volunteer" },
                        vec![Value::Int(i as i64 + 1)],
                    );
                    t.tid = seq * 100 + i as u64 + 1;
                    t
                })
                .collect(),
        }
    }

    fn run_config(depth: usize, lanes: usize, blocks: u64) -> Arc<Ledger> {
        let ledger = ledger();
        let schemas = Arc::new(SchemaManager::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut pipe = ApplyPipeline::start_with_lanes(
            Arc::clone(&ledger),
            schemas,
            rx,
            Arc::clone(&stopped),
            depth,
            lanes,
        );
        for seq in 0..blocks {
            tx.send(ordered(seq, 8)).unwrap();
        }
        assert!(
            ledger.wait_for_height(blocks, Instant::now() + Duration::from_secs(10), || pipe
                .health()
                .is_poisoned())
        );
        stopped.store(true, Ordering::Relaxed);
        drop(tx);
        pipe.join();
        ledger
    }

    fn run_depth(depth: usize, blocks: u64) -> Arc<Ledger> {
        run_config(depth, 1, blocks)
    }

    #[test]
    fn depths_produce_identical_chains() {
        let a = run_depth(1, 20);
        let b = run_depth(4, 20);
        assert_eq!(a.height(), 20);
        assert_eq!(b.height(), 20);
        assert_eq!(a.tip_hash(), b.tip_hash());
        a.verify_chain().unwrap();
        b.verify_chain().unwrap();
    }

    #[test]
    fn lane_counts_produce_identical_chains_and_indexes() {
        let a = run_config(1, 1, 20);
        let b = run_config(4, 4, 20);
        assert_eq!(a.height(), 20);
        assert_eq!(b.height(), 20);
        assert_eq!(a.tip_hash(), b.tip_hash());
        b.verify_chain().unwrap();
        // The system tracking index answers identically however many
        // lanes maintained it.
        for l in [&a, &b] {
            let hits = l
                .with_layered(None, "tname", |idx| {
                    idx.candidate_blocks(&sebdb_index::KeyPredicate::Eq(Value::str("volunteer")))
                })
                .unwrap();
            assert_eq!(hits.count_ones(), 20);
        }
    }

    #[test]
    fn lane_vector_clears_on_join() {
        let l = run_config(2, 3, 5);
        assert!(l.applied_vector().is_none());
        assert_eq!(l.height(), 5);
    }

    #[test]
    fn stage_error_poisons_health() {
        let ledger = ledger();
        let schemas = Arc::new(SchemaManager::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut pipe =
            ApplyPipeline::start(Arc::clone(&ledger), schemas, rx, Arc::clone(&stopped), 2);
        // A gap in the sequence is a seal error: seq 5 against height 0.
        tx.send(ordered(5, 2)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !pipe.health().is_poisoned() {
            assert!(Instant::now() < deadline, "health never poisoned");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pipe.health().error().unwrap().contains("sealer"));
        // Waiters abort fast instead of burning their full timeout.
        let waited = Instant::now();
        assert!(
            !ledger.wait_for_height(1, Instant::now() + Duration::from_secs(10), || pipe
                .health()
                .is_poisoned())
        );
        assert!(waited.elapsed() < Duration::from_secs(2));
        stopped.store(true, Ordering::Relaxed);
        drop(tx);
        pipe.join();
    }

    #[test]
    fn indexer_stage_panic_poisons_health_and_wakes_waiters() {
        let ledger = ledger();
        // Inject a panic while indexing the second block (header height
        // 1) — after the persister has appended it, mid-way through the
        // indexer stage.
        ledger.set_index_fault(Some(Box::new(|block: &sebdb_types::Block| {
            if block.header.height == 1 {
                panic!("injected index fault at height 1");
            }
        })));
        let schemas = Arc::new(SchemaManager::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut pipe =
            ApplyPipeline::start(Arc::clone(&ledger), schemas, rx, Arc::clone(&stopped), 3);
        for seq in 0..4 {
            tx.send(ordered(seq, 2)).unwrap();
        }
        // The waiter must wake on the poison signal, not burn its
        // timeout.
        let waited = Instant::now();
        let reached = ledger.wait_for_height(4, Instant::now() + Duration::from_secs(10), || {
            pipe.health().is_poisoned()
        });
        assert!(!reached, "chain must not reach height 4 past the fault");
        assert!(
            waited.elapsed() < Duration::from_secs(5),
            "waiter should abort fast on poison, waited {:?}",
            waited.elapsed()
        );
        assert!(pipe.health().is_poisoned());
        let err = pipe.health().error().unwrap();
        assert!(
            err.contains("indexer"),
            "poison should name the stage: {err}"
        );
        // The first block applied cleanly; the faulty one persisted
        // (the pipeline ran ahead) but never indexed, so the applied
        // height stays behind the chain height.
        assert_eq!(ledger.height(), 1);
        assert!(ledger.chain_height() >= 2);
        stopped.store(true, Ordering::Relaxed);
        drop(tx);
        pipe.join();
    }

    #[test]
    fn lane_panic_poisons_health_with_lane_name() {
        let ledger = ledger();
        ledger.set_index_fault(Some(Box::new(|block: &sebdb_types::Block| {
            if block.header.height == 2 {
                panic!("injected lane fault at height 2");
            }
        })));
        let schemas = Arc::new(SchemaManager::new(None));
        let stopped = Arc::new(AtomicBool::new(false));
        let (tx, rx) = unbounded();
        let mut pipe = ApplyPipeline::start_with_lanes(
            Arc::clone(&ledger),
            schemas,
            rx,
            Arc::clone(&stopped),
            2,
            4,
        );
        for seq in 0..5 {
            tx.send(ordered(seq, 4)).unwrap();
        }
        let reached = ledger.wait_for_height(5, Instant::now() + Duration::from_secs(10), || {
            pipe.health().is_poisoned()
        });
        assert!(!reached);
        let err = pipe.health().error().unwrap().to_string();
        assert!(
            err.contains("indexer-lane0"),
            "fault hook runs on lane 0: {err}"
        );
        // Quiesce the surviving lanes, then check the heights: the
        // fault fired at height 2, so blocks 0 and 1 fully applied and
        // the applied height (min over lanes) never passes the dead
        // lane even though other lanes kept going.
        stopped.store(true, Ordering::Relaxed);
        drop(tx);
        pipe.join();
        assert_eq!(ledger.height(), 2);
        assert!(ledger.chain_height() >= 3);
    }

    #[test]
    fn env_depth_parsing_clamps() {
        // Not touching the real env (tests run threaded): only the
        // default path is exercised here.
        assert_eq!(DEFAULT_PIPELINE_DEPTH, 2);
        assert!(pipeline_depth_from_env() >= 1);
    }

    #[test]
    fn auto_depth_single_core_is_sequential() {
        assert_eq!(auto_pipeline_depth(0), 1);
        assert_eq!(auto_pipeline_depth(1), 1);
    }

    #[test]
    fn auto_depth_multi_core_overlaps_stages() {
        assert_eq!(auto_pipeline_depth(2), DEFAULT_PIPELINE_DEPTH);
        assert_eq!(auto_pipeline_depth(8), DEFAULT_PIPELINE_DEPTH);
    }

    #[test]
    fn auto_lanes_track_cores_up_to_shards() {
        assert_eq!(auto_applier_lanes(0), 1);
        assert_eq!(auto_applier_lanes(1), 1);
        assert_eq!(auto_applier_lanes(2), 2);
        assert_eq!(auto_applier_lanes(8), INDEX_SHARDS);
        assert_eq!(auto_applier_lanes(64), INDEX_SHARDS);
    }

    #[test]
    fn env_unset_matches_auto_tuned_depth() {
        if std::env::var(PIPELINE_DEPTH_ENV).is_err() {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            assert_eq!(pipeline_depth_from_env(), auto_pipeline_depth(cores));
        }
        if std::env::var(APPLIER_LANES_ENV).is_err() {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            assert_eq!(applier_lanes_from_env(), auto_applier_lanes(cores));
        }
    }
}
