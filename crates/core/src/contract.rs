//! SQL-driven smart contracts (§III-B, application layer).
//!
//! "The system supports smart contract embedded SQL-like language to
//! define a DApp, where SQL-like is responsible for accessing data."
//! A contract is a named, parameterized sequence of SQL statements;
//! `?` parameters are numbered cumulatively across the sequence (the
//! first statement's parameters come first, then the second's, …), so
//! one argument list drives the whole procedure. Statements execute in
//! order through the node (writes go through consensus like any other
//! insert). The last statement's rows, if any, are the invocation
//! result.

use crate::executor::{QueryResult, Strategy};
use crate::node::{ExecOutcome, NodeError, SebdbNode};
use parking_lot::RwLock;
use sebdb_sql::{parse_script, Expr, Statement, WherePredicate};
use sebdb_types::Value;
use std::collections::HashMap;

/// A deployed contract.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Contract name.
    pub name: String,
    /// Parsed statements, executed in order.
    pub statements: Vec<Statement>,
    /// Total `?` parameters across all statements.
    pub param_count: usize,
}

/// The node-local contract registry.
#[derive(Default)]
pub struct ContractRegistry {
    contracts: RwLock<HashMap<String, Contract>>,
}

/// Contract errors.
#[derive(Debug)]
pub enum ContractError {
    /// Bad deployment script.
    Deploy(String),
    /// No such contract.
    Unknown(String),
    /// Wrong argument count.
    Arity {
        /// Expected.
        expected: usize,
        /// Provided.
        provided: usize,
    },
    /// A statement failed mid-run (statements before it have already
    /// committed — there is no cross-statement rollback on a chain).
    Execution {
        /// Index of the failing statement.
        statement: usize,
        /// The failure.
        source: NodeError,
    },
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractError::Deploy(m) => write!(f, "deploy failed: {m}"),
            ContractError::Unknown(n) => write!(f, "no contract '{n}'"),
            ContractError::Arity { expected, provided } => {
                write!(f, "contract takes {expected} args, {provided} given")
            }
            ContractError::Execution { statement, source } => {
                write!(f, "statement {statement} failed: {source}")
            }
        }
    }
}

impl std::error::Error for ContractError {}

/// Renumbers every `?` parameter in `stmt` by `offset`.
fn shift_params(stmt: &mut Statement, offset: usize) {
    fn expr(e: &mut Expr, offset: usize) {
        if let Expr::Param(i) = e {
            *i += offset;
        }
    }
    match stmt {
        Statement::Create { .. } => {}
        Statement::Insert { values, .. } => {
            for v in values {
                expr(v, offset);
            }
        }
        Statement::Select(s) => {
            for p in &mut s.predicates {
                match p {
                    WherePredicate::Compare { value, .. } => expr(value, offset),
                    WherePredicate::Between { lo, hi, .. } => {
                        expr(lo, offset);
                        expr(hi, offset);
                    }
                }
            }
            if let Some((a, b)) = &mut s.window {
                expr(a, offset);
                expr(b, offset);
            }
        }
        Statement::Trace {
            window,
            operator,
            operation,
        } => {
            if let Some((a, b)) = window {
                expr(a, offset);
                expr(b, offset);
            }
            if let Some(o) = operator {
                expr(o, offset);
            }
            if let Some(o) = operation {
                expr(o, offset);
            }
        }
        Statement::GetBlock(sel) => match sel {
            sebdb_sql::BlockSelector::ById(e)
            | sebdb_sql::BlockSelector::ByTid(e)
            | sebdb_sql::BlockSelector::ByTimestamp(e) => expr(e, offset),
        },
        Statement::Explain(inner) => shift_params(inner, offset),
    }
}

impl ContractRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys a contract from a `;`-separated SQL script. `?`
    /// parameters are renumbered cumulatively across the statements.
    pub fn deploy(&self, name: &str, script: &str) -> Result<(), ContractError> {
        let mut statements =
            parse_script(script).map_err(|e| ContractError::Deploy(e.to_string()))?;
        if statements.is_empty() {
            return Err(ContractError::Deploy("empty contract".into()));
        }
        let mut offset = 0;
        for stmt in &mut statements {
            let here = stmt.param_count();
            shift_params(stmt, offset);
            offset += here;
        }
        let param_count = offset;
        self.contracts.write().insert(
            name.to_ascii_lowercase(),
            Contract {
                name: name.to_owned(),
                statements,
                param_count,
            },
        );
        Ok(())
    }

    /// Looks up a deployed contract.
    pub fn get(&self, name: &str) -> Option<Contract> {
        self.contracts
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Invokes `name` with `args` on `node`. Returns the last
    /// statement's rows (empty result if the contract ends in a write).
    pub fn invoke(
        &self,
        node: &SebdbNode,
        name: &str,
        args: &[Value],
    ) -> Result<QueryResult, ContractError> {
        let contract = self
            .get(name)
            .ok_or_else(|| ContractError::Unknown(name.to_owned()))?;
        if args.len() != contract.param_count {
            return Err(ContractError::Arity {
                expected: contract.param_count,
                provided: args.len(),
            });
        }
        let mut last = QueryResult::empty(vec![]);
        for (i, stmt) in contract.statements.iter().enumerate() {
            let plan = sebdb_sql::plan(stmt, args, node.schemas.as_ref()).map_err(|e| {
                ContractError::Execution {
                    statement: i,
                    source: NodeError::Sql(e),
                }
            })?;
            match node.execute_plan(plan, Strategy::Auto) {
                Ok(ExecOutcome::Rows(rows)) => last = rows,
                Ok(_) => {}
                Err(source) => {
                    return Err(ContractError::Execution {
                        statement: i,
                        source,
                    })
                }
            }
        }
        Ok(last)
    }

    /// Names of deployed contracts.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.contracts.read().keys().cloned().collect();
        v.sort();
        v
    }
}
