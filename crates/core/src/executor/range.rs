//! Single-table select / range / point queries (Q4-style) under the
//! three access paths of §IV-B's cost analysis.

use super::{full_header, materialize, project, ExecError, Executor, QueryResult, Strategy};
use sebdb_index::{AccessPath, Bitmap, KeyPredicate};
use sebdb_sql::BoundPredicate;
use sebdb_storage::TxPtr;
use sebdb_types::{TableSchema, Timestamp, Value};

impl Executor<'_> {
    pub(super) fn run_query(
        &self,
        schema: &TableSchema,
        projection: &[String],
        predicates: &[BoundPredicate],
        window: Option<(Timestamp, Timestamp)>,
        strategy: Strategy,
    ) -> Result<QueryResult, ExecError> {
        // Which predicate can drive a layered index?
        let indexed = predicates.iter().enumerate().find_map(|(i, p)| {
            let (lo, hi) = p.index_bounds()?;
            let column_name = column_name(schema, p)?;
            self.ledger
                .with_layered(Some(&schema.name), &column_name, |_| ())?;
            Some((i, column_name, KeyPredicate::Range(lo, hi)))
        });

        let strategy = match strategy {
            Strategy::Auto => self.choose_path(schema, indexed.as_ref().map(|(_, c, k)| (c, k))),
            s => s,
        };

        let mut out = QueryResult::empty(if projection.is_empty() {
            full_header(schema)
        } else {
            projection.to_vec()
        });

        match strategy {
            Strategy::Layered => {
                let Some((driver, column_name, key_pred)) = indexed else {
                    return Err(ExecError::Unsupported(format!(
                        "no layered index on table '{}' serves this predicate",
                        schema.name
                    )));
                };
                let mask = self.ledger.window_mask(window);
                let ptrs: Vec<TxPtr> = self
                    .ledger
                    .with_layered(Some(&schema.name), &column_name, |idx| {
                        let cand = idx.candidate_blocks(&key_pred).and(&mask);
                        let mut ptrs = Vec::new();
                        for bid in cand.iter_ones() {
                            ptrs.extend(idx.search_block(bid as u64, &key_pred));
                        }
                        ptrs
                    })
                    .ok_or_else(|| {
                        ExecError::Unsupported(format!("index on {} vanished", schema.name))
                    })?;
                // Batch-fetch the pointed-at tuples (blocks decoded in
                // parallel), then filter and materialize rows across
                // workers; both stages preserve pointer order.
                let txs = self.ledger.read_txs_grouped(&ptrs)?;
                let rows = sebdb_parallel::par_map(
                    &txs,
                    16,
                    |tx| -> Result<Option<Vec<Value>>, ExecError> {
                        if !tx.tname.eq_ignore_ascii_case(&schema.name) {
                            return Ok(None);
                        }
                        if !in_window(tx.ts, window) {
                            return Ok(None);
                        }
                        // Re-check every predicate (the driver is implied,
                        // the others must still be applied).
                        let ok = predicates
                            .iter()
                            .enumerate()
                            .all(|(i, p)| i == driver || p.matches(|c| tx.get(c)));
                        if ok {
                            Ok(Some(project(schema, projection, materialize(tx))?))
                        } else {
                            Ok(None)
                        }
                    },
                );
                for row in rows {
                    if let Some(row) = row? {
                        out.rows.push(row);
                    }
                }
            }
            Strategy::Bitmap | Strategy::Scan => {
                let mask = self.ledger.window_mask(window);
                let blocks = if strategy == Strategy::Bitmap {
                    self.ledger
                        .with_table_index(|ti| ti.blocks_for_table(&schema.name))
                        .and(&mask)
                } else {
                    mask
                };
                // Each candidate block scans independently; per-block
                // row batches concatenate in block order, so the
                // output matches the sequential scan row for row. The
                // scan is partition-granular: only the table's relation
                // partition is fetched, and the table-name filter below
                // drops any co-located relations sharing its extent.
                let chunks = self.scan_relation(&blocks, &schema.name, |tx| {
                    if !tx.tname.eq_ignore_ascii_case(&schema.name) {
                        return Ok(None);
                    }
                    if !in_window(tx.ts, window) {
                        return Ok(None);
                    }
                    if predicates.iter().all(|p| p.matches(|c| tx.get(c))) {
                        Ok(Some(project(schema, projection, materialize(tx))?))
                    } else {
                        Ok(None)
                    }
                });
                for chunk in chunks {
                    out.rows.extend(chunk?);
                }
            }
            Strategy::Auto => unreachable!("resolved above"),
        }
        Ok(out)
    }

    /// Reads every block set in `blocks` (in parallel) and runs `per_tx`
    /// over its transactions in order, collecting the produced rows.
    /// Candidate blocks are grouped into readahead-sized runs so
    /// consecutive blocks coalesce into span reads at the storage
    /// layer; returns one row batch per run, in block order.
    pub(super) fn scan_blocks(
        &self,
        blocks: &Bitmap,
        per_tx: impl Fn(&sebdb_types::Transaction) -> Result<Option<Vec<Value>>, ExecError> + Sync,
    ) -> Vec<Result<Vec<Vec<Value>>, ExecError>> {
        let bids: Vec<u64> = blocks.iter_ones().map(|b| b as u64).collect();
        let runs: Vec<&[u64]> = bids
            .chunks(sebdb_storage::readahead_blocks().max(1))
            .collect();
        sebdb_parallel::par_map(&runs, 1, |run| {
            let fetched = self.ledger.read_blocks_span(run)?;
            let mut rows = Vec::new();
            for block in fetched {
                for tx in &block.transactions {
                    if let Some(row) = per_tx(tx)? {
                        rows.push(row);
                    }
                }
            }
            Ok(rows)
        })
    }

    /// Single-relation variant of [`Self::scan_blocks`]: fetches only
    /// `table`'s relation partition per candidate block (canonical
    /// order preserved), so the scan's `bytes_read` excludes unrelated
    /// relations' extents. `per_tx` still sees any co-located
    /// relations sharing the partition and must filter by table name.
    pub(super) fn scan_relation(
        &self,
        blocks: &Bitmap,
        table: &str,
        per_tx: impl Fn(&sebdb_types::Transaction) -> Result<Option<Vec<Value>>, ExecError> + Sync,
    ) -> Vec<Result<Vec<Vec<Value>>, ExecError>> {
        let bids: Vec<u64> = blocks.iter_ones().map(|b| b as u64).collect();
        let runs: Vec<&[u64]> = bids
            .chunks(sebdb_storage::readahead_blocks().max(1))
            .collect();
        sebdb_parallel::par_map(&runs, 1, |run| {
            let fetched = self.ledger.read_relation_txs(run, table)?;
            let mut rows = Vec::new();
            for txs in fetched {
                for (_, tx) in &txs {
                    if let Some(row) = per_tx(tx)? {
                        rows.push(row);
                    }
                }
            }
            Ok(rows)
        })
    }

    /// Cost-based path choice (Eqs. 1–3): `n` = chain height, `k` =
    /// bitmap candidate count, `p` = result-size estimate from the
    /// layered index's first level.
    fn choose_path(
        &self,
        schema: &TableSchema,
        indexed: Option<(&String, &KeyPredicate)>,
    ) -> Strategy {
        let n = self.ledger.height();
        let k = self
            .ledger
            .with_table_index(|ti| ti.blocks_for_table(&schema.name))
            .count_ones() as u64;
        let Some((column_name, key_pred)) = indexed else {
            // Without a usable layered index it is bitmap vs scan.
            return if k < n {
                Strategy::Bitmap
            } else {
                Strategy::Scan
            };
        };
        // Estimate p: candidate blocks × average per-block hits. We use
        // the first level only (cheap): candidate blocks × (tx / block
        // of this table) scaled by bucket selectivity ≈ candidates ×
        // small constant. A coarse but monotone estimate is enough for
        // the crossover to appear.
        let (candidate_blocks, frozen_probes) = self
            .ledger
            .with_layered(Some(&schema.name), column_name, |idx| {
                let cand = idx.candidate_blocks(key_pred);
                // Candidates below the frozen height each page one
                // level-1 index block (the per-block entry list) through
                // the index-block cache; tail candidates probe resident
                // structures for free.
                let base = idx.frozen_height();
                let frozen = cand.iter_ones().take_while(|&b| (b as u64) < base).count() as u64;
                (cand.count_ones() as u64, frozen)
            })
            .unwrap_or((0, 0));
        // Without per-index cardinality stats we charge a fixed
        // per-candidate-block hit estimate; monotone in selectivity,
        // which is all the crossover needs.
        const EST_HITS_PER_BLOCK: u64 = 64;
        let p = candidate_blocks * EST_HITS_PER_BLOCK;
        match self.cost.choose_paged(n, k, p, frozen_probes) {
            AccessPath::Scan => Strategy::Scan,
            AccessPath::Bitmap => Strategy::Bitmap,
            AccessPath::Layered => Strategy::Layered,
        }
    }
}

pub(super) fn in_window(ts: Timestamp, window: Option<(Timestamp, Timestamp)>) -> bool {
    match window {
        None => true,
        Some((s, e)) => ts >= s && ts <= e,
    }
}

/// Recovers the column *name* a bound predicate constrains (needed to
/// address the layered-index registry).
pub(super) fn column_name(schema: &TableSchema, pred: &BoundPredicate) -> Option<String> {
    use sebdb_types::ColumnRef;
    Some(match pred.column {
        ColumnRef::Tid => "tid".into(),
        ColumnRef::Ts => "ts".into(),
        ColumnRef::Sig => "sig".into(),
        ColumnRef::SenId => "sen_id".into(),
        ColumnRef::Tname => "tname".into(),
        ColumnRef::App(i) => schema.columns.get(i)?.name.to_ascii_lowercase(),
    })
}
