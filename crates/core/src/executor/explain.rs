//! `EXPLAIN`: render the physical decisions for a plan without
//! executing it — which access path the cost model picks, which
//! indexes serve it, and how many candidate blocks the first level
//! leaves after pruning.

use super::range::column_name;
use super::{ExecError, Executor, QueryResult, Strategy};
use sebdb_index::KeyPredicate;
use sebdb_sql::LogicalPlan;
use sebdb_types::Value;

impl Executor<'_> {
    /// Describes `plan` as rows of text (one step per row).
    pub(super) fn run_explain(&self, plan: &LogicalPlan) -> Result<QueryResult, ExecError> {
        let mut lines = Vec::new();
        self.describe(plan, 0, &mut lines);
        Ok(QueryResult {
            columns: vec!["plan".to_string()],
            rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
        })
    }

    fn describe(&self, plan: &LogicalPlan, depth: usize, out: &mut Vec<String>) {
        let pad = "  ".repeat(depth);
        let height = self.ledger.height();
        match plan {
            LogicalPlan::CreateTable(s) => {
                out.push(format!("{pad}CreateTable {} (via consensus)", s.name));
            }
            LogicalPlan::Insert { table, .. } => {
                out.push(format!("{pad}Insert into {table} (via consensus)"));
            }
            LogicalPlan::Query {
                schema,
                predicates,
                window,
                ..
            } => {
                let indexed = predicates.iter().find_map(|p| {
                    let (lo, hi) = p.index_bounds()?;
                    let col = column_name(schema, p)?;
                    self.ledger
                        .with_layered(Some(&schema.name), &col, |idx| {
                            idx.candidate_blocks(&KeyPredicate::Range(lo, hi))
                                .count_ones()
                        })
                        .map(|cand| (col, cand))
                });
                let k = self
                    .ledger
                    .with_table_index(|ti| ti.blocks_for_table(&schema.name))
                    .count_ones();
                match indexed {
                    Some((col, cand)) => out.push(format!(
                        "{pad}Query {} [layered index on {col}: {cand} of {height} candidate blocks; bitmap fallback: {k}]",
                        schema.name
                    )),
                    None => out.push(format!(
                        "{pad}Query {} [no usable layered index; bitmap: {k} of {height} blocks]",
                        schema.name
                    )),
                }
                for p in predicates {
                    out.push(format!("{pad}  predicate on {:?}", p.column));
                }
                if let Some((s, e)) = window {
                    out.push(format!("{pad}  window [{s}, {e}]"));
                }
            }
            LogicalPlan::OnChainJoin { left, right, .. } => {
                out.push(format!(
                    "{pad}OnChainJoin {} ⋈ {} [Algorithm 2: first-level pair pruning + per-block sort-merge]",
                    left.name, right.name
                ));
            }
            LogicalPlan::OnOffJoin {
                on_table,
                off_table,
                ..
            } => {
                out.push(format!(
                    "{pad}OnOffJoin onchain.{} ⋈ offchain.{off_table} [Algorithm 3: off-chain range prunes blocks]",
                    on_table.name
                ));
            }
            LogicalPlan::Trace {
                operator,
                operation,
                window,
            } => {
                let dims = match (operator.is_some(), operation.is_some()) {
                    (true, true) => "operator ∧ operation (two system indexes)",
                    (true, false) => "operator (sen_id index)",
                    (false, true) => "operation (tname index)",
                    (false, false) => "(none)",
                };
                out.push(format!("{pad}Trace [Algorithm 1: {dims}]"));
                if let Some((s, e)) = window {
                    out.push(format!("{pad}  window [{s}, {e}]"));
                }
            }
            LogicalPlan::GetBlock(sel) => {
                out.push(format!("{pad}GetBlock {sel:?} [block-level B+-tree]"));
            }
            LogicalPlan::Post {
                input,
                count,
                limit,
            } => {
                let mut parts = Vec::new();
                if *count {
                    parts.push("COUNT(*)".to_string());
                }
                if let Some(n) = limit {
                    parts.push(format!("LIMIT {n}"));
                }
                out.push(format!("{pad}Post [{}]", parts.join(", ")));
                self.describe(input, depth + 1, out);
            }
            LogicalPlan::Explain(inner) => {
                self.describe(inner, depth, out);
            }
        }
    }
}

/// Convenience: marker so Strategy is referenced (explain ignores the
/// requested strategy — it reports what Auto would consider).
pub(super) const _EXPLAIN_IGNORES_STRATEGY: Option<Strategy> = None;
