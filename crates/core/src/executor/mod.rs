//! Query execution (§V).
//!
//! The executor turns resolved [`LogicalPlan`]s into rows. Each
//! read operator comes in the three physical flavors the paper
//! benchmarks — full **scan**, **bitmap**-index, and **layered**-index
//! — selectable via [`Strategy`] (the figures' SU/SG/BU/BG/LU/LG runs
//! force one); [`Strategy::Auto`] applies the cost model of Eqs. 1–3.

pub mod explain;
pub mod join;
pub mod onoff;
pub mod range;
pub mod tracking;

use crate::ledger::{Ledger, LedgerError};
use sebdb_index::cost::CostParams;
use sebdb_offchain::OffchainConnection;
use sebdb_sql::{BoundBlockSelector, LogicalPlan, SqlError};
use sebdb_types::{TableSchema, Transaction, TypeError, Value};

/// A rectangular (or, for tracking, ragged) result set.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column headers. Tracking results list the system columns; app
    /// attributes follow positionally (transaction types may differ
    /// per row).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Empty result with headers.
    pub fn empty(columns: Vec<String>) -> Self {
        QueryResult {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows matched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Physical access-path selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Cost-based choice (Eqs. 1–3).
    #[default]
    Auto,
    /// Scan every block.
    Scan,
    /// Prune blocks with the table-level bitmap index.
    Bitmap,
    /// Use the layered index (block pruning + per-block trees).
    Layered,
}

/// Execution errors.
#[derive(Debug)]
pub enum ExecError {
    /// Ledger / storage failure.
    Ledger(LedgerError),
    /// Plan references something the node does not have.
    Unsupported(String),
    /// Type-level failure while evaluating.
    Type(TypeError),
    /// SQL-level failure (late parameter problems etc.).
    Sql(SqlError),
    /// Off-chain engine failure.
    Offchain(TypeError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Ledger(e) => write!(f, "ledger: {e}"),
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ExecError::Type(e) => write!(f, "type: {e}"),
            ExecError::Sql(e) => write!(f, "sql: {e}"),
            ExecError::Offchain(e) => write!(f, "offchain: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<LedgerError> for ExecError {
    fn from(e: LedgerError) -> Self {
        ExecError::Ledger(e)
    }
}

impl From<TypeError> for ExecError {
    fn from(e: TypeError) -> Self {
        ExecError::Type(e)
    }
}

impl From<SqlError> for ExecError {
    fn from(e: SqlError) -> Self {
        ExecError::Sql(e)
    }
}

/// The executor: borrows the ledger (and optionally the off-chain
/// connection) for the duration of one query.
pub struct Executor<'a> {
    /// The node's ledger.
    pub ledger: &'a Ledger,
    /// Off-chain connection, if the node has one.
    pub offchain: Option<&'a OffchainConnection>,
    /// Cost model parameters for [`Strategy::Auto`].
    pub cost: CostParams,
}

impl<'a> Executor<'a> {
    /// Creates an executor with cost parameters calibrated from the
    /// node's live I/O counters: the index-cache hit rate comes from
    /// the store's observed hits/misses (defaulting until enough
    /// accesses accumulate) and the fence-probe cost from a
    /// once-per-process microprobe. A fresh store therefore plans
    /// exactly like [`CostParams::default`] aside from the measured
    /// probe cost.
    pub fn new(ledger: &'a Ledger, offchain: Option<&'a OffchainConnection>) -> Self {
        let (hits, misses) = ledger.store().stats.index_cache_counts();
        Executor {
            ledger,
            offchain,
            cost: CostParams::calibrated(hits, misses),
        }
    }

    /// Executes a read-only plan. `CREATE`/`INSERT` go through
    /// consensus at the node layer, not here.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        strategy: Strategy,
    ) -> Result<QueryResult, ExecError> {
        match plan {
            LogicalPlan::CreateTable(_) | LogicalPlan::Insert { .. } => {
                Err(ExecError::Unsupported(
                    "writes must be submitted through the node (consensus path)".into(),
                ))
            }
            LogicalPlan::Query {
                schema,
                projection,
                predicates,
                window,
            } => self.run_query(schema, projection, predicates, *window, strategy),
            LogicalPlan::Trace {
                window,
                operator,
                operation,
            } => self.run_trace(*window, operator.as_ref(), operation.as_deref(), strategy),
            LogicalPlan::OnChainJoin {
                left,
                right,
                left_col,
                right_col,
                window,
            } => self.run_onchain_join(left, right, *left_col, *right_col, *window, strategy),
            LogicalPlan::OnOffJoin {
                on_table,
                on_col,
                off_table,
                off_col,
                off_columns,
                window,
            } => self.run_onoff_join(
                on_table,
                *on_col,
                off_table,
                *off_col,
                off_columns,
                *window,
                strategy,
            ),
            LogicalPlan::GetBlock(sel) => self.run_get_block(sel),
            LogicalPlan::Explain(inner) => self.run_explain(inner),
            LogicalPlan::Post {
                input,
                count,
                limit,
            } => {
                let mut result = self.execute(input, strategy)?;
                if *count {
                    // COUNT(*) aggregates before any LIMIT.
                    return Ok(QueryResult {
                        columns: vec!["count".to_string()],
                        rows: vec![vec![Value::Int(result.len() as i64)]],
                    });
                }
                if let Some(limit) = limit {
                    result.rows.truncate(*limit as usize);
                }
                Ok(result)
            }
        }
    }

    /// `GET BLOCK` (Q7): resolve via the block-level index, return a
    /// one-row header summary.
    fn run_get_block(&self, sel: &BoundBlockSelector) -> Result<QueryResult, ExecError> {
        let key = self.ledger.with_block_index(|bi| match sel {
            BoundBlockSelector::ById(id) => bi.by_bid(*id),
            BoundBlockSelector::ByTid(tid) => bi.by_tid(*tid),
            BoundBlockSelector::ByTimestamp(ts) => bi.by_ts(*ts),
        });
        let columns = vec![
            "height".to_string(),
            "timestamp".to_string(),
            "first_tid".to_string(),
            "tx_count".to_string(),
            "block_hash".to_string(),
        ];
        let Some(key) = key else {
            return Ok(QueryResult::empty(columns));
        };
        let block = self.ledger.read_block(key.bid)?;
        Ok(QueryResult {
            columns,
            rows: vec![vec![
                Value::Int(block.header.height as i64),
                Value::Timestamp(block.header.timestamp),
                block
                    .first_tid()
                    .map(|t| Value::Int(t as i64))
                    .unwrap_or(Value::Null),
                Value::Int(block.transactions.len() as i64),
                Value::Str(block.header.block_hash.to_hex()),
            ]],
        })
    }
}

/// Materializes a transaction as a full row: system columns then
/// application attributes.
pub(crate) fn materialize(tx: &Transaction) -> Vec<Value> {
    let mut row = Vec::with_capacity(5 + tx.values.len());
    row.push(Value::Int(tx.tid as i64));
    row.push(Value::Timestamp(tx.ts));
    row.push(Value::Bytes(tx.sig.clone()));
    row.push(Value::Bytes(tx.sender.as_bytes().to_vec()));
    row.push(Value::Str(tx.tname.clone()));
    row.extend(tx.values.iter().cloned());
    row
}

/// Applies a projection by column name over a schema's full row.
pub(crate) fn project(
    schema: &TableSchema,
    projection: &[String],
    row: Vec<Value>,
) -> Result<Vec<Value>, ExecError> {
    if projection.is_empty() {
        return Ok(row);
    }
    let names = schema.full_column_names();
    projection
        .iter()
        .map(|p| {
            names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(p))
                .map(|i| row[i].clone())
                .ok_or_else(|| ExecError::Type(TypeError::NoSuchColumn { column: p.clone() }))
        })
        .collect()
}

/// Header for a full (unprojected) row of `schema`.
pub(crate) fn full_header(schema: &TableSchema) -> Vec<String> {
    schema.full_column_names()
}
