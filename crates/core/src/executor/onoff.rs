//! On-chain ⋈ off-chain join (§V-C, Algorithm 3).
//!
//! The off-chain side comes from the local RDBMS through the
//! ODBC/JDBC-shaped connection, pre-sorted on the join attribute; the
//! on-chain side is pruned by the layered index's first level against
//! the off-chain `(min, max)` range (continuous) or the OR of the
//! distinct-value bitmaps (discrete), then each surviving block is
//! sort-merge joined against the sorted off-chain rows using the
//! second-level leaves.

use super::range::in_window;
use super::{materialize, ExecError, Executor, QueryResult, Strategy};
use sebdb_index::Bitmap;
use sebdb_types::{Column, ColumnRef, TableSchema, Timestamp, Value};

fn onoff_header(on: &TableSchema, off_table: &str, off_columns: &[Column]) -> Vec<String> {
    on.full_column_names()
        .iter()
        .map(|c| format!("{}.{c}", on.name))
        .chain(
            off_columns
                .iter()
                .map(|c| format!("{off_table}.{}", c.name)),
        )
        .collect()
}

impl Executor<'_> {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn run_onoff_join(
        &self,
        on_table: &TableSchema,
        on_col: ColumnRef,
        off_table: &str,
        off_col: usize,
        off_columns: &[Column],
        window: Option<(Timestamp, Timestamp)>,
        strategy: Strategy,
    ) -> Result<QueryResult, ExecError> {
        let conn = self
            .offchain
            .ok_or_else(|| ExecError::Unsupported("this node has no off-chain database".into()))?;
        let off_col_name = &off_columns[off_col].name;
        // "The query results from off-chain data are sorted on join
        // attribute" (§V-C).
        let (_, off_rows) = conn
            .sorted_by(off_table, off_col_name)
            .map_err(ExecError::Offchain)?;
        let mut out = QueryResult::empty(onoff_header(on_table, off_table, off_columns));
        if off_rows.is_empty() {
            return Ok(out);
        }

        let index_name = match on_col {
            ColumnRef::App(i) => on_table.columns.get(i).map(|c| c.name.to_ascii_lowercase()),
            ColumnRef::SenId => Some("sen_id".into()),
            ColumnRef::Tname => Some("tname".into()),
            _ => None,
        };
        let has_index = index_name
            .as_deref()
            .and_then(|n| self.ledger.with_layered(Some(&on_table.name), n, |_| ()))
            .is_some();

        let strategy = match strategy {
            Strategy::Auto => {
                if has_index {
                    Strategy::Layered
                } else {
                    Strategy::Bitmap
                }
            }
            s => s,
        };

        match strategy {
            Strategy::Layered => {
                let index_name = index_name.filter(|_| has_index).ok_or_else(|| {
                    ExecError::Unsupported(format!(
                        "no layered index on {}'s join column",
                        on_table.name
                    ))
                })?;
                let mask = self.ledger.window_mask(window);
                // Lines 3–7: restrict candidate blocks by the off-chain
                // value range / distinct values.
                let continuous = on_col.data_type(on_table).is_continuous();
                let blocks: Bitmap = self
                    .ledger
                    .with_layered(Some(&on_table.name), &index_name, |idx| {
                        if continuous {
                            // Rows are sorted on the join attribute, so
                            // first/last bound the value range; empty
                            // bounds fall through to the full scan arm.
                            let s_min = off_rows.first().and_then(|r| r[off_col].numeric_rank());
                            let s_max = off_rows.last().and_then(|r| r[off_col].numeric_rank());
                            match (s_min, s_max) {
                                (Some(lo), Some(hi)) => {
                                    let mut b = Bitmap::new();
                                    for bid in idx.all_blocks().iter_ones() {
                                        if idx.block_intersects_range(bid as u64, lo, hi) {
                                            b.set(bid);
                                        }
                                    }
                                    b
                                }
                                _ => idx.all_blocks(),
                            }
                        } else {
                            // Discrete: OR of the unique keys' bitmaps.
                            let distinct =
                                conn.distinct(off_table, off_col_name).unwrap_or_default();
                            idx.blocks_for_values(distinct.iter())
                        }
                    })
                    .ok_or_else(|| {
                        ExecError::Unsupported(format!("index on {} vanished", on_table.name))
                    })?
                    .and(&mask);
                // Lines 8–13: per-block sort-merge against the sorted
                // off-chain rows. Phase one walks the sorted runs and
                // collects matched (pointer, off-row range) pairs
                // without touching storage.
                let mut matched: Vec<(sebdb_storage::TxPtr, std::ops::Range<usize>)> = Vec::new();
                for bid in blocks.iter_ones() {
                    let entries = self
                        .ledger
                        .with_layered(Some(&on_table.name), &index_name, |idx| {
                            idx.block_sorted_entries(bid as u64)
                        })
                        .ok_or_else(|| {
                            ExecError::Unsupported(format!("index on {} vanished", on_table.name))
                        })?;
                    merge_block_with_off(&entries, &off_rows, off_col, &mut matched);
                }
                // Phase two batch-fetches every distinct pointer
                // (distinct blocks decoded across workers) and
                // materializes matched rows in merge order.
                let mut ptr_slot: std::collections::HashMap<sebdb_storage::TxPtr, usize> =
                    std::collections::HashMap::new();
                let mut ptrs: Vec<sebdb_storage::TxPtr> = Vec::new();
                for (p, _) in &matched {
                    ptr_slot.entry(*p).or_insert_with(|| {
                        ptrs.push(*p);
                        ptrs.len() - 1
                    });
                }
                let txs = self.ledger.read_txs_grouped(&ptrs)?;
                let row_batches = sebdb_parallel::par_map(&matched, 16, |(p, off_range)| {
                    let tx = &txs[ptr_slot[p]];
                    if !in_window(tx.ts, window) {
                        return Vec::new();
                    }
                    off_rows[off_range.clone()]
                        .iter()
                        .map(|off| {
                            let mut row = materialize(tx);
                            row.extend(off.clone());
                            row
                        })
                        .collect::<Vec<_>>()
                });
                out.rows.extend(row_batches.into_iter().flatten());
            }
            Strategy::Bitmap | Strategy::Scan => {
                let mask = self.ledger.window_mask(window);
                let blocks = if strategy == Strategy::Bitmap {
                    self.ledger
                        .with_table_index(|ti| ti.blocks_for_table(&on_table.name))
                        .and(&mask)
                } else {
                    mask
                };
                // Hash the off-chain rows by join key, then probe with
                // on-chain tuples block-by-block across workers; each
                // block's matches concatenate in block order, matching
                // the sequential plan.
                let mut build: std::collections::HashMap<Value, Vec<&Vec<Value>>> =
                    std::collections::HashMap::new();
                for row in &off_rows {
                    build.entry(row[off_col].clone()).or_default().push(row);
                }
                let bids: Vec<u64> = blocks.iter_ones().map(|b| b as u64).collect();
                let per_block = sebdb_parallel::par_map(
                    &bids,
                    1,
                    |&bid| -> Result<Vec<Vec<Value>>, ExecError> {
                        let block = self.ledger.read_block(bid)?;
                        let mut rows = Vec::new();
                        for tx in &block.transactions {
                            if !tx.tname.eq_ignore_ascii_case(&on_table.name)
                                || !in_window(tx.ts, window)
                            {
                                continue;
                            }
                            let Some(v) = tx.get(on_col) else { continue };
                            if let Some(matches) = build.get(&v) {
                                for off in matches {
                                    let mut row = materialize(tx);
                                    row.extend((*off).clone());
                                    rows.push(row);
                                }
                            }
                        }
                        Ok(rows)
                    },
                );
                for rows in per_block {
                    out.rows.extend(rows?);
                }
            }
            Strategy::Auto => unreachable!(),
        }
        Ok(out)
    }
}

/// Sort-merge one block's sorted index entries against the sorted
/// off-chain rows, collecting each matched pointer with the range of
/// off-chain rows it joins — no storage reads; the caller batch-fetches
/// all matched transactions grouped by block afterwards.
fn merge_block_with_off(
    entries: &[(Value, sebdb_storage::TxPtr)],
    off_rows: &[Vec<Value>],
    off_col: usize,
    matched: &mut Vec<(sebdb_storage::TxPtr, std::ops::Range<usize>)>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < entries.len() && j < off_rows.len() {
        match entries[i].0.cmp(&off_rows[j][off_col]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let v = &entries[i].0;
                let i_end = entries[i..].iter().take_while(|(x, _)| x == v).count() + i;
                let j_end = off_rows[j..]
                    .iter()
                    .take_while(|r| &r[off_col] == v)
                    .count()
                    + j;
                for (_, ptr) in &entries[i..i_end] {
                    matched.push((*ptr, j..j_end));
                }
                i = i_end;
                j = j_end;
            }
        }
    }
}
