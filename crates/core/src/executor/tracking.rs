//! The track-trace operation (§V-A, Algorithm 1).
//!
//! Tracks from two dimensions — *operator* (who sent, `SenID`) and
//! *operation* (which transaction type, `Tname`) — within a time
//! window, using the system-wide layered indexes created on those
//! columns for all tables. The bitmap and scan strategies match the
//! paper's comparison runs (Fig. 8–10).

use super::range::in_window;
use super::{ExecError, Executor, QueryResult, Strategy};
use sebdb_crypto::sig::KeyId;
use sebdb_index::{Bitmap, KeyPredicate};
use sebdb_sql::TraceSpec;
use sebdb_storage::TxPtr;
use sebdb_types::{BlockId, Timestamp, Value};
use std::collections::HashSet;

/// Internal transaction types (schema sync) are invisible to tracking.
fn is_internal(tname: &str) -> bool {
    tname.starts_with("__")
}

/// Header of tracking results: system columns; application attributes
/// follow positionally (rows may be ragged across transaction types).
pub fn tracking_header() -> Vec<String> {
    ["tid", "ts", "sig", "sen_id", "tname"]
        .iter()
        .map(|s| (*s).to_string())
        .collect()
}

impl Executor<'_> {
    pub(super) fn run_trace(
        &self,
        window: Option<(Timestamp, Timestamp)>,
        operator: Option<&Value>,
        operation: Option<&str>,
        strategy: Strategy,
    ) -> Result<QueryResult, ExecError> {
        // Operator names are resolved to sender ids in exactly one
        // place — the node layer's registry. Here anything but raw id
        // bytes (names included) is one uniform error.
        let operator = match operator {
            Some(Value::Bytes(b)) if b.len() == 8 => {
                let mut id = [0u8; 8];
                id.copy_from_slice(b);
                Some(KeyId(id))
            }
            Some(other) => {
                return Err(ExecError::Unsupported(format!(
                    "operator must be 8 sender-id bytes, got {other}"
                )))
            }
            None => None,
        };
        if operator.is_none() && operation.is_none() {
            return Err(ExecError::Unsupported(
                "tracking needs at least one dimension".into(),
            ));
        }
        // A cost-based (`Auto`) trace whose predicate matches a
        // registered materialized view is served from the view — zero
        // index probes, O(result) — before any strategy resolves.
        // Forced strategies bypass the views so the paper's figure
        // runs keep measuring their physical paths.
        if strategy == Strategy::Auto {
            let spec = TraceSpec::new(window, operator.map(|k| k.0), operation);
            if let Some(result) = self.ledger.serve_trace_view(&spec)? {
                return Ok(result);
            }
        }
        self.run_trace_bounded(window, &operator, operation, strategy, self.ledger.height())
    }

    /// The physical tracking walk over blocks `0..height`, past view
    /// routing: Algorithm 1 under the chosen strategy. View backfills
    /// call this directly with a captured height; normal execution
    /// passes the current applied height.
    pub(crate) fn run_trace_bounded(
        &self,
        window: Option<(Timestamp, Timestamp)>,
        operator: &Option<KeyId>,
        operation: Option<&str>,
        strategy: Strategy,
        height: BlockId,
    ) -> Result<QueryResult, ExecError> {
        let operator = *operator;
        let strategy = match strategy {
            // Tracking is selective by construction; the layered path
            // dominates unless explicitly overridden (§VII-C).
            Strategy::Auto => Strategy::Layered,
            s => s,
        };
        let mut out = QueryResult::empty(tracking_header());

        match strategy {
            Strategy::Layered => {
                // Algorithm 1, lines 1–4: window mask ∧ first-level
                // bitmaps of the SenID / Tname indexes.
                let mut mask = self.ledger.window_mask_at(window, height);
                if let Some(op) = &operator {
                    let pred = KeyPredicate::Eq(Value::Bytes(op.as_bytes().to_vec()));
                    let b = self
                        .ledger
                        .with_layered(None, "sen_id", |idx| idx.candidate_blocks(&pred))
                        .ok_or_else(|| {
                            ExecError::Unsupported("system sen_id index missing".into())
                        })?;
                    mask = mask.and(&b);
                }
                if let Some(tname) = operation {
                    let pred = KeyPredicate::Eq(Value::str(tname));
                    let b = self
                        .ledger
                        .with_layered(None, "tname", |idx| idx.candidate_blocks(&pred))
                        .ok_or_else(|| {
                            ExecError::Unsupported("system tname index missing".into())
                        })?;
                    mask = mask.and(&b);
                }
                // Lines 6–13: per block, intersect the second-level
                // pointer sets of the two indexes; then batch-read all
                // surviving pointers at once (blocks fetched across
                // workers) and materialize in pointer order.
                let mut ptrs: Vec<TxPtr> = Vec::new();
                for bid in mask.iter_ones() {
                    ptrs.extend(self.tracked_ptrs_in_block(bid as u64, &operator, operation));
                }
                let txs = self.ledger.read_txs_grouped(&ptrs)?;
                let rows = sebdb_parallel::par_map(&txs, 16, |tx| {
                    (in_window(tx.ts, window) && !is_internal(&tx.tname))
                        .then(|| super::materialize(tx))
                });
                out.rows.extend(rows.into_iter().flatten());
            }
            Strategy::Bitmap => {
                // Table/sender bitmaps prune blocks; blocks are then
                // scanned.
                let mut mask = self.ledger.window_mask_at(window, height);
                if let Some(op) = &operator {
                    mask = mask.and(&self.ledger.with_table_index(|ti| ti.blocks_for_sender(op)));
                }
                if let Some(tname) = operation {
                    mask = mask.and(
                        &self
                            .ledger
                            .with_table_index(|ti| ti.blocks_for_table(tname)),
                    );
                }
                self.scan_blocks_for_trace(&mask, &operator, operation, window, &mut out)?;
            }
            Strategy::Scan => {
                let mask = self.ledger.window_mask_at(window, height);
                self.scan_blocks_for_trace(&mask, &operator, operation, window, &mut out)?;
            }
            Strategy::Auto => unreachable!(),
        }
        Ok(out)
    }

    /// Second-level intersection for one block (Algorithm 1 lines 7–9).
    fn tracked_ptrs_in_block(
        &self,
        bid: u64,
        operator: &Option<KeyId>,
        operation: Option<&str>,
    ) -> Vec<TxPtr> {
        let by_sender: Option<Vec<TxPtr>> = operator.as_ref().map(|op| {
            let pred = KeyPredicate::Eq(Value::Bytes(op.as_bytes().to_vec()));
            self.ledger
                .with_layered(None, "sen_id", |idx| idx.search_block(bid, &pred))
                .unwrap_or_default()
        });
        let by_tname: Option<Vec<TxPtr>> = operation.map(|tname| {
            let pred = KeyPredicate::Eq(Value::str(tname));
            self.ledger
                .with_layered(None, "tname", |idx| idx.search_block(bid, &pred))
                .unwrap_or_default()
        });
        let mut ptrs = match (by_sender, by_tname) {
            (Some(a), Some(b)) => {
                let set: HashSet<TxPtr> = a.into_iter().collect();
                b.into_iter().filter(|p| set.contains(p)).collect()
            }
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => Vec::new(),
        };
        ptrs.sort();
        ptrs
    }

    fn scan_blocks_for_trace(
        &self,
        mask: &Bitmap,
        operator: &Option<KeyId>,
        operation: Option<&str>,
        window: Option<(Timestamp, Timestamp)>,
        out: &mut QueryResult,
    ) -> Result<(), ExecError> {
        let chunks = self.scan_blocks(mask, |tx| {
            if let Some(op) = operator {
                if tx.sender != *op {
                    return Ok(None);
                }
            }
            if let Some(tname) = operation {
                if !tx.tname.eq_ignore_ascii_case(tname) {
                    return Ok(None);
                }
            }
            Ok((in_window(tx.ts, window) && !is_internal(&tx.tname))
                .then(|| super::materialize(tx)))
        });
        for chunk in chunks {
            out.rows.extend(chunk?);
        }
        Ok(())
    }
}
