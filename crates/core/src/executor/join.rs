//! On-chain equi-join (§V-B, Algorithm 2).
//!
//! Three physical plans, matching the paper's comparison (Fig. 13/14):
//!
//! * **scan** — one-pass hash join over every block;
//! * **bitmap** — the same hash join but only over blocks the
//!   table-level index marks as containing either relation;
//! * **layered** — Algorithm 2 proper: first-level bitmaps select the
//!   candidate blocks per relation, histogram-bucket intersection
//!   prunes block *pairs*, and each surviving pair is joined by
//!   sort-merge over the per-block second-level trees (whose leaves
//!   are already in key order).

use super::range::in_window;
use super::{materialize, ExecError, Executor, QueryResult, Strategy};
use sebdb_types::{ColumnRef, TableSchema, Timestamp, Transaction, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Sort-merge over two sorted `(value, ptr)` runs, appending every
/// matched pointer pair (duplicate-run cross products included) in the
/// order the sequential join would emit them.
fn sort_merge_pairs(
    l: &[(Value, sebdb_storage::TxPtr)],
    r: &[(Value, sebdb_storage::TxPtr)],
    matched: &mut Vec<(sebdb_storage::TxPtr, sebdb_storage::TxPtr)>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].0.cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let v = &l[i].0;
                let li_end = l[i..].iter().take_while(|(x, _)| x == v).count() + i;
                let rj_end = r[j..].iter().take_while(|(x, _)| x == v).count() + j;
                for (_, lp) in &l[i..li_end] {
                    for (_, rp) in &r[j..rj_end] {
                        matched.push((*lp, *rp));
                    }
                }
                i = li_end;
                j = rj_end;
            }
        }
    }
}

/// Header: left's full columns prefixed by table name, then right's.
fn join_header(left: &TableSchema, right: &TableSchema) -> Vec<String> {
    left.full_column_names()
        .iter()
        .map(|c| format!("{}.{c}", left.name))
        .chain(
            right
                .full_column_names()
                .iter()
                .map(|c| format!("{}.{c}", right.name)),
        )
        .collect()
}

impl Executor<'_> {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn run_onchain_join(
        &self,
        left: &TableSchema,
        right: &TableSchema,
        left_col: ColumnRef,
        right_col: ColumnRef,
        window: Option<(Timestamp, Timestamp)>,
        strategy: Strategy,
    ) -> Result<QueryResult, ExecError> {
        let strategy = match strategy {
            Strategy::Auto => {
                // Prefer the layered plan when both join columns are
                // indexed; otherwise bitmap.
                let both_indexed = self.join_index_name(left, left_col).is_some()
                    && self.join_index_name(right, right_col).is_some();
                if both_indexed {
                    Strategy::Layered
                } else {
                    Strategy::Bitmap
                }
            }
            s => s,
        };
        let mut out = QueryResult::empty(join_header(left, right));
        match strategy {
            Strategy::Scan | Strategy::Bitmap => {
                self.hash_join(left, right, left_col, right_col, window, strategy, &mut out)?
            }
            Strategy::Layered => {
                self.layered_join(left, right, left_col, right_col, window, &mut out)?
            }
            Strategy::Auto => unreachable!(),
        }
        Ok(out)
    }

    /// One-pass hash join (§V-B): build on the right relation, probe
    /// with the left.
    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &self,
        left: &TableSchema,
        right: &TableSchema,
        left_col: ColumnRef,
        right_col: ColumnRef,
        window: Option<(Timestamp, Timestamp)>,
        strategy: Strategy,
        out: &mut QueryResult,
    ) -> Result<(), ExecError> {
        let mask = self.ledger.window_mask(window);
        let blocks = if strategy == Strategy::Bitmap {
            // Only blocks holding either relation are read.
            let l = self
                .ledger
                .with_table_index(|ti| ti.blocks_for_table(&left.name));
            let r = self
                .ledger
                .with_table_index(|ti| ti.blocks_for_table(&right.name));
            l.or(&r).and(&mask)
        } else {
            mask
        };
        // Build phase: each block is read and partitioned into
        // build/probe tuples independently across workers; partials
        // merge in block order, so the build table's per-key run order
        // and the probe order match the sequential plan.
        let bids: Vec<u64> = blocks.iter_ones().map(|b| b as u64).collect();
        type Partial = (Vec<(Value, Transaction)>, Vec<Transaction>);
        let partials = sebdb_parallel::par_map(&bids, 1, |&bid| -> Result<Partial, ExecError> {
            let block = self.ledger.read_block(bid)?;
            let mut build_part = Vec::new();
            let mut probe_part = Vec::new();
            for tx in &block.transactions {
                if !in_window(tx.ts, window) {
                    continue;
                }
                if tx.tname.eq_ignore_ascii_case(&right.name) {
                    if let Some(v) = tx.get(right_col) {
                        if v != Value::Null {
                            build_part.push((v, tx.clone()));
                        }
                    }
                }
                if tx.tname.eq_ignore_ascii_case(&left.name) {
                    probe_part.push(tx.clone());
                }
            }
            Ok((build_part, probe_part))
        });
        let mut build: HashMap<Value, Vec<Transaction>> = HashMap::new();
        let mut probe_side: Vec<Transaction> = Vec::new();
        for partial in partials {
            let (build_part, probe_part) = partial?;
            for (v, tx) in build_part {
                build.entry(v).or_default().push(tx);
            }
            probe_side.extend(probe_part);
        }
        // Probe phase: pure lookups, parallel over probe tuples; each
        // produces its match rows which concatenate in probe order.
        let row_batches = sebdb_parallel::par_map(&probe_side, 16, |ltx| {
            let mut rows = Vec::new();
            let Some(v) = ltx.get(left_col) else {
                return rows;
            };
            if v == Value::Null {
                return rows;
            }
            if let Some(matches) = build.get(&v) {
                for rtx in matches {
                    let mut row = materialize(ltx);
                    row.extend(materialize(rtx));
                    rows.push(row);
                }
            }
            rows
        });
        out.rows.extend(row_batches.into_iter().flatten());
        Ok(())
    }

    /// Algorithm 2: candidate blocks per relation from the first-level
    /// bitmaps, block-pair pruning via `intersect`, per-pair sort-merge
    /// over the second-level leaves.
    fn layered_join(
        &self,
        left: &TableSchema,
        right: &TableSchema,
        left_col: ColumnRef,
        right_col: ColumnRef,
        window: Option<(Timestamp, Timestamp)>,
        out: &mut QueryResult,
    ) -> Result<(), ExecError> {
        let l_col = self.join_index_name(left, left_col).ok_or_else(|| {
            ExecError::Unsupported(format!("no layered index on {}'s join column", left.name))
        })?;
        let r_col = self.join_index_name(right, right_col).ok_or_else(|| {
            ExecError::Unsupported(format!("no layered index on {}'s join column", right.name))
        })?;
        let mask = self.ledger.window_mask(window);
        // Lines 2–7 + the `intersect` pruning of lines 8–10, computed as
        // candidate block *pairs* (value-driven for discrete attributes,
        // bucket-envelope checks for continuous ones).
        let pairs: Vec<(u64, u64)> = self
            .ledger
            .with_layered(Some(&left.name), &l_col, |l_idx| {
                self.ledger
                    .with_layered(Some(&right.name), &r_col, |r_idx| {
                        l_idx.join_pairs(&mask, r_idx, &mask)
                    })
                    .unwrap_or_default()
            })
            .unwrap_or_default();

        // Lines 11–12: per-pair sort-merge over the second-level leaves.
        // Phase one walks the sorted runs and collects matched pointer
        // pairs without touching storage (entries of a left block are
        // fetched once and reused across its pairs — pairs arrive
        // sorted by left block).
        let mut matched: Vec<(sebdb_storage::TxPtr, sebdb_storage::TxPtr)> = Vec::new();
        let mut cached_left: Option<(u64, Vec<(Value, sebdb_storage::TxPtr)>)> = None;
        for (b_l, b_r) in pairs {
            let l_entries: &[(Value, sebdb_storage::TxPtr)] = match &mut cached_left {
                Some((b, entries)) if *b == b_l => entries,
                cache => {
                    let entries = self
                        .ledger
                        .with_layered(Some(&left.name), &l_col, |idx| {
                            idx.block_sorted_entries(b_l)
                        })
                        .ok_or_else(|| {
                            ExecError::Unsupported(format!("index on {} vanished", left.name))
                        })?;
                    &cache.insert((b_l, entries)).1
                }
            };
            if l_entries.is_empty() {
                continue;
            }
            let r_entries = self
                .ledger
                .with_layered(Some(&right.name), &r_col, |idx| {
                    idx.block_sorted_entries(b_r)
                })
                .ok_or_else(|| {
                    ExecError::Unsupported(format!("index on {} vanished", right.name))
                })?;
            sort_merge_pairs(l_entries, r_entries.as_slice(), &mut matched);
        }
        // Phase two batch-fetches every distinct pointer (distinct
        // blocks decoded across workers) and materializes the matched
        // rows in pair order.
        let mut ptr_slot: HashMap<sebdb_storage::TxPtr, usize> = HashMap::new();
        let mut ptrs: Vec<sebdb_storage::TxPtr> = Vec::new();
        for &(lp, rp) in &matched {
            for p in [lp, rp] {
                ptr_slot.entry(p).or_insert_with(|| {
                    ptrs.push(p);
                    ptrs.len() - 1
                });
            }
        }
        let txs = self.ledger.read_txs_grouped(&ptrs)?;
        let rows = sebdb_parallel::par_map(&matched, 16, |&(lp, rp)| {
            let ltx: &Arc<Transaction> = &txs[ptr_slot[&lp]];
            let rtx: &Arc<Transaction> = &txs[ptr_slot[&rp]];
            if !in_window(ltx.ts, window) || !in_window(rtx.ts, window) {
                return None;
            }
            let mut row = materialize(ltx);
            row.extend(materialize(rtx));
            Some(row)
        });
        out.rows.extend(rows.into_iter().flatten());
        Ok(())
    }

    /// The index-registry column name for a join column, when a layered
    /// index exists on it.
    fn join_index_name(&self, schema: &TableSchema, col: ColumnRef) -> Option<String> {
        let name = match col {
            ColumnRef::App(i) => schema.columns.get(i)?.name.to_ascii_lowercase(),
            ColumnRef::SenId => "sen_id".to_string(),
            ColumnRef::Tname => "tname".to_string(),
            ColumnRef::Tid => "tid".to_string(),
            ColumnRef::Ts => "ts".to_string(),
            ColumnRef::Sig => return None,
        };
        self.ledger
            .with_layered(Some(&schema.name), &name, |_| ())
            .map(|_| name)
    }
}
