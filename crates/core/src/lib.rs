//! # sebdb
//!
//! SEBDB — a semantics-empowered blockchain database (Zhu et al., ICDE
//! 2019), reproduced in Rust. On-chain transactions are tuples of
//! user-declared relations; a SQL-like language (`CREATE` / `INSERT` /
//! `SELECT` / `TRACE` / `GET BLOCK`) drives everything; blocks are the
//! only copy of the data, indexed by the block-level B⁺-tree, the
//! table-level bitmaps, and the layered index; thin clients verify
//! query results through the authenticated layered index (ALI).
//!
//! Quick tour:
//!
//! * [`node::SebdbNode`] — a full node: plug in a consensus engine
//!   (`sebdb-consensus`), an optional off-chain RDBMS
//!   (`sebdb-offchain`), then call [`node::SebdbNode::execute`] with
//!   SQL.
//! * [`ledger::Ledger`] — the chain plus all indexes.
//! * [`executor`] — the three blockchain operators (tracking, on-chain
//!   join, on-off join) under scan / bitmap / layered strategies.
//! * [`thin_client`] — the two-phase authenticated query protocol and
//!   the Byzantine-sampling risk bound (Eq. 4–6).
//! * [`contract`] — SQL-sequence smart contracts; [`access`] —
//!   multi-channel access control.

#![warn(missing_docs)]

pub mod access;
pub mod contract;
pub mod executor;
pub mod ledger;
pub mod node;
pub mod pipeline;
pub mod schema_mgr;
pub mod thin_client;
pub mod views;

pub use access::{AccessController, AccessDenied, Permission};
pub use contract::{Contract, ContractError, ContractRegistry};
pub use executor::{ExecError, Executor, QueryResult, Strategy};
pub use ledger::{
    shard_of, Ledger, LedgerError, INDEX_CHECKPOINT_BYTES_ENV, INDEX_CHECKPOINT_EVERY_ENV,
    INDEX_SHARDS,
};
pub use node::{ExecOutcome, NodeError, SebdbNode};
pub use pipeline::{
    applier_lanes_from_env, auto_applier_lanes, auto_pipeline_depth, pipeline_depth_from_env,
    ApplierHealth, ApplyPipeline, APPLIER_LANES_ENV, DEFAULT_PIPELINE_DEPTH, PIPELINE_DEPTH_ENV,
};
pub use schema_mgr::{SchemaManager, SCHEMA_TABLE};
pub use thin_client::{
    byzantine_risk, serve_authenticated_join, serve_authenticated_query, serve_auxiliary_digest,
    verify_and_join, AuthenticatedJoinResponse, AuthenticatedResponse, ClientVerifyError,
    ThinClient,
};
pub use views::{TraceView, ViewEngine, ViewStats};
