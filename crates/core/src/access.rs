//! Access control (§III-B, application layer).
//!
//! "The access control verifies request permission before execution,
//! where a multi-channel method is adopted to protect users' privacy."
//! A *channel* groups members with the tables they may touch; a
//! request is admitted when some channel grants the principal the
//! needed right on the table. Nodes start in permissive mode (no
//! channels ⇒ everything allowed) until the first channel is created.

use parking_lot::RwLock;
use sebdb_crypto::sig::KeyId;
use std::collections::{HashMap, HashSet};

/// Right being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Permission {
    /// Query a table.
    Read,
    /// Insert into a table.
    Write,
}

/// Access-control decision errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessDenied {
    /// Who asked.
    pub principal: KeyId,
    /// What they asked for.
    pub permission: Permission,
    /// On which table.
    pub table: String,
}

impl std::fmt::Display for AccessDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "access denied: {:?} lacks {:?} on '{}'",
            self.principal, self.permission, self.table
        )
    }
}

impl std::error::Error for AccessDenied {}

#[derive(Debug, Default)]
struct Channel {
    members: HashSet<KeyId>,
    /// table → writable? (readable is implied by membership).
    tables: HashMap<String, bool>,
}

/// The multi-channel access controller.
#[derive(Debug, Default)]
pub struct AccessController {
    channels: RwLock<HashMap<String, Channel>>,
}

impl AccessController {
    /// Permissive controller (until channels exist).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty channel (idempotent).
    pub fn create_channel(&self, name: &str) {
        self.channels
            .write()
            .entry(name.to_ascii_lowercase())
            .or_default();
    }

    /// Adds a member to a channel.
    pub fn add_member(&self, channel: &str, member: KeyId) {
        self.channels
            .write()
            .entry(channel.to_ascii_lowercase())
            .or_default()
            .members
            .insert(member);
    }

    /// Puts a table in a channel; `writable` grants insert rights to
    /// members.
    pub fn assign_table(&self, channel: &str, table: &str, writable: bool) {
        self.channels
            .write()
            .entry(channel.to_ascii_lowercase())
            .or_default()
            .tables
            .insert(table.to_ascii_lowercase(), writable);
    }

    /// Checks `principal`'s `permission` on `table`.
    pub fn check(
        &self,
        principal: KeyId,
        permission: Permission,
        table: &str,
    ) -> Result<(), AccessDenied> {
        let channels = self.channels.read();
        if channels.is_empty() {
            return Ok(()); // permissive bootstrap mode
        }
        let table = table.to_ascii_lowercase();
        let allowed = channels.values().any(|ch| {
            ch.members.contains(&principal)
                && match ch.tables.get(&table) {
                    Some(writable) => permission == Permission::Read || *writable,
                    None => false,
                }
        });
        if allowed {
            Ok(())
        } else {
            Err(AccessDenied {
                principal,
                permission,
                table: table.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALICE: KeyId = KeyId([1; 8]);
    const BOB: KeyId = KeyId([2; 8]);

    #[test]
    fn permissive_until_channels_exist() {
        let ac = AccessController::new();
        assert!(ac.check(ALICE, Permission::Write, "donate").is_ok());
    }

    #[test]
    fn members_read_and_write_by_flag() {
        let ac = AccessController::new();
        ac.create_channel("charity");
        ac.add_member("charity", ALICE);
        ac.assign_table("charity", "donate", true);
        ac.assign_table("charity", "audit", false);

        assert!(ac.check(ALICE, Permission::Write, "donate").is_ok());
        assert!(ac.check(ALICE, Permission::Read, "audit").is_ok());
        assert!(ac.check(ALICE, Permission::Write, "audit").is_err());
    }

    #[test]
    fn non_members_denied() {
        let ac = AccessController::new();
        ac.create_channel("charity");
        ac.add_member("charity", ALICE);
        ac.assign_table("charity", "donate", true);
        let err = ac.check(BOB, Permission::Read, "donate").unwrap_err();
        assert_eq!(err.principal, BOB);
        assert!(ac.check(BOB, Permission::Read, "other").is_err());
    }

    #[test]
    fn privacy_across_channels() {
        // Bob's channel does not see Alice's tables — the multi-channel
        // privacy property.
        let ac = AccessController::new();
        ac.create_channel("a");
        ac.add_member("a", ALICE);
        ac.assign_table("a", "donorinfo", true);
        ac.create_channel("b");
        ac.add_member("b", BOB);
        ac.assign_table("b", "custinfo", true);
        assert!(ac.check(BOB, Permission::Read, "donorinfo").is_err());
        assert!(ac.check(ALICE, Permission::Read, "custinfo").is_err());
        assert!(ac.check(ALICE, Permission::Read, "donorinfo").is_ok());
    }

    #[test]
    fn case_insensitive_names() {
        let ac = AccessController::new();
        ac.create_channel("Main");
        ac.add_member("MAIN", ALICE);
        ac.assign_table("main", "Donate", true);
        assert!(ac.check(ALICE, Permission::Write, "DONATE").is_ok());
    }
}
