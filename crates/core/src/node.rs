//! The SEBDB full node.
//!
//! Glues the layers of Fig. 2 together: the application layer (SQL
//! entry point, access control, identity registry), the query
//! processing layer (planner + executor), the storage/index layer
//! (the [`Ledger`]), and the consensus layer (a pluggable engine whose
//! ordered stream an applier thread turns into chained blocks).

use crate::access::{AccessController, Permission};
use crate::executor::{ExecError, Executor, QueryResult, Strategy};
use crate::ledger::Ledger;
use crate::pipeline::{
    applier_lanes_from_env, pipeline_depth_from_env, ApplierHealth, ApplyPipeline,
};
use crate::schema_mgr::SchemaManager;
use parking_lot::RwLock;
use sebdb_consensus::traits::now_ms;
use sebdb_consensus::{Consensus, ConsensusError};
use sebdb_crypto::sig::{KeyId, MacKeypair, Signer};
use sebdb_offchain::OffchainConnection;
use sebdb_sql::{plan, LogicalPlan, SqlError, Statement};
use sebdb_storage::BlockStore;
use sebdb_types::{TableSchema, Transaction, TxId, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Node-level errors.
#[derive(Debug)]
pub enum NodeError {
    /// SQL parse/plan error.
    Sql(SqlError),
    /// Execution error.
    Exec(ExecError),
    /// Consensus rejected or is down.
    Consensus(ConsensusError),
    /// Access control denied the request.
    Denied(crate::access::AccessDenied),
    /// Write acknowledged but not yet applied within the timeout.
    ApplyTimeout,
    /// The applier pipeline died; the chain will not advance until the
    /// node restarts. Carries the stage error that killed it.
    ApplierDead(String),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Sql(e) => write!(f, "{e}"),
            NodeError::Exec(e) => write!(f, "{e}"),
            NodeError::Consensus(e) => write!(f, "{e}"),
            NodeError::Denied(e) => write!(f, "{e}"),
            NodeError::ApplyTimeout => write!(f, "write committed but not applied in time"),
            NodeError::ApplierDead(m) => write!(f, "applier pipeline dead: {m}"),
            NodeError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<SqlError> for NodeError {
    fn from(e: SqlError) -> Self {
        NodeError::Sql(e)
    }
}

impl From<ExecError> for NodeError {
    fn from(e: ExecError) -> Self {
        NodeError::Exec(e)
    }
}

/// Outcome of executing one statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// DDL applied; the table now exists cluster-wide.
    Created {
        /// The created table.
        table: String,
    },
    /// Row committed on-chain.
    Inserted {
        /// Assigned transaction id.
        tid: TxId,
        /// Block it landed in.
        block: u64,
    },
    /// Query rows.
    Rows(QueryResult),
}

impl ExecOutcome {
    /// The rows, if this outcome has any.
    pub fn rows(self) -> Option<QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// A full SEBDB node.
pub struct SebdbNode {
    /// The node's chain + indexes.
    pub ledger: Arc<Ledger>,
    /// The node's schema catalog.
    pub schemas: Arc<SchemaManager>,
    /// Access control.
    pub access: AccessController,
    offchain: Option<OffchainConnection>,
    consensus: Arc<dyn Consensus>,
    identity: MacKeypair,
    /// Operator-name registry: "org1" → sender id (queries name
    /// operators by string; the chain stores sender ids).
    registry: RwLock<HashMap<String, KeyId>>,
    stopped: Arc<AtomicBool>,
    pipeline: parking_lot::Mutex<Option<ApplyPipeline>>,
    health: Arc<ApplierHealth>,
    /// How long to wait for a committed write to apply locally.
    pub apply_timeout: Duration,
}

impl SebdbNode {
    /// Starts a node: subscribes to the consensus stream and begins
    /// applying ordered blocks to the ledger and schema catalog through
    /// the staged write pipeline (depth from `SEBDB_PIPELINE_DEPTH`,
    /// default 2: sealing block N overlaps indexing block N−1; lane
    /// count from `SEBDB_APPLIER_LANES`, auto-tuned to the core
    /// count). On a disk-backed store the persist stage additionally
    /// fans each block's tuples across the store's per-relation
    /// partition segments (`StoreConfig::partitions`), committed by a
    /// single chain-order manifest record.
    pub fn start(
        store: Arc<BlockStore>,
        consensus: Arc<dyn Consensus>,
        offchain: Option<OffchainConnection>,
        identity: MacKeypair,
    ) -> Result<Arc<Self>, NodeError> {
        Self::start_with_config(
            store,
            consensus,
            offchain,
            identity,
            pipeline_depth_from_env(),
            applier_lanes_from_env(),
        )
    }

    /// [`Self::start`] with an explicit pipeline depth (1 = sequential
    /// applier; N ≥ 2 = staged pipeline with N blocks in flight) and a
    /// single indexer lane.
    pub fn start_with_depth(
        store: Arc<BlockStore>,
        consensus: Arc<dyn Consensus>,
        offchain: Option<OffchainConnection>,
        identity: MacKeypair,
        depth: usize,
    ) -> Result<Arc<Self>, NodeError> {
        Self::start_with_config(store, consensus, offchain, identity, depth, 1)
    }

    /// [`Self::start`] with explicit pipeline depth AND applier lane
    /// count (depth 1 × lanes 1 = the sequential reference applier).
    pub fn start_with_config(
        store: Arc<BlockStore>,
        consensus: Arc<dyn Consensus>,
        offchain: Option<OffchainConnection>,
        identity: MacKeypair,
        depth: usize,
        lanes: usize,
    ) -> Result<Arc<Self>, NodeError> {
        let ledger = Arc::new(
            Ledger::new(store, identity.clone()).map_err(|e| NodeError::Other(e.to_string()))?,
        );
        let schemas = Arc::new(SchemaManager::new(offchain.clone()));
        let stopped = Arc::new(AtomicBool::new(false));

        let pipeline = ApplyPipeline::start_with_lanes(
            Arc::clone(&ledger),
            Arc::clone(&schemas),
            consensus.subscribe(),
            Arc::clone(&stopped),
            depth,
            lanes,
        );
        let health = Arc::clone(pipeline.health());

        let node = Arc::new(SebdbNode {
            ledger,
            schemas,
            access: AccessController::new(),
            offchain,
            consensus,
            identity,
            registry: RwLock::new(HashMap::new()),
            stopped,
            pipeline: parking_lot::Mutex::new(Some(pipeline)),
            health,
            apply_timeout: Duration::from_secs(10),
        });
        Ok(node)
    }

    /// The applier pipeline's health flag (poisoned when a stage died).
    pub fn applier_health(&self) -> &Arc<ApplierHealth> {
        &self.health
    }

    /// The node's own sender id.
    pub fn id(&self) -> KeyId {
        self.identity.key_id()
    }

    /// Registers an operator name (e.g. `"org1"`) for `TRACE OPERATOR`
    /// resolution.
    pub fn register_operator(&self, name: &str, id: KeyId) {
        self.registry.write().insert(name.to_ascii_lowercase(), id);
    }

    /// Resolves an operator name to its sender id.
    pub fn resolve_operator(&self, name: &str) -> Option<KeyId> {
        self.registry
            .read()
            .get(&name.to_ascii_lowercase())
            .copied()
    }

    /// Registers an incremental materialized view for a `TRACE`
    /// predicate: `window` over `Ts`, `operator` as a registered name
    /// (resolved through the same registry `TRACE OPERATOR` queries
    /// use), `operation` as a transaction type. Backfills immediately
    /// and folds every applied block from then on; an `Auto`-strategy
    /// `TRACE` with the same predicate is served from the view.
    /// Returns whether the view is newly registered.
    pub fn register_trace_view(
        &self,
        window: Option<(sebdb_types::Timestamp, sebdb_types::Timestamp)>,
        operator: Option<&str>,
        operation: Option<&str>,
    ) -> Result<bool, NodeError> {
        let operator = match operator {
            Some(name) => Some(
                self.resolve_operator(name)
                    .ok_or_else(|| NodeError::Other(format!("unknown operator '{name}'")))?
                    .0,
            ),
            None => None,
        };
        self.ledger
            .register_trace_view(sebdb_sql::TraceSpec::new(window, operator, operation))
            .map_err(|e| NodeError::Other(e.to_string()))
    }

    /// The off-chain connection (if this node pairs with a local
    /// RDBMS).
    pub fn offchain(&self) -> Option<&OffchainConnection> {
        self.offchain.as_ref()
    }

    /// Parses and executes one SQL statement as the node's own
    /// identity.
    pub fn execute(&self, sql: &str, params: &[Value]) -> Result<ExecOutcome, NodeError> {
        self.execute_as(self.id(), sql, params, Strategy::Auto)
    }

    /// Parses and executes with an explicit access-control principal
    /// and physical strategy.
    pub fn execute_as(
        &self,
        principal: KeyId,
        sql: &str,
        params: &[Value],
        strategy: Strategy,
    ) -> Result<ExecOutcome, NodeError> {
        let stmt = sebdb_sql::parse(sql)?;
        self.check_access(principal, &stmt)?;
        let plan = plan(&stmt, params, self.schemas.as_ref())?;
        self.execute_plan(plan, strategy)
    }

    fn check_access(&self, principal: KeyId, stmt: &Statement) -> Result<(), NodeError> {
        let checks: Vec<(Permission, String)> = match stmt {
            Statement::Create { table, .. } => vec![(Permission::Write, table.clone())],
            Statement::Insert { table, .. } => vec![(Permission::Write, table.clone())],
            Statement::Select(s) => {
                let mut v = vec![(Permission::Read, s.from.name.clone())];
                if let Some(j) = &s.join {
                    v.push((Permission::Read, j.table.name.clone()));
                }
                v
            }
            // Tracking spans tables; Q7 reads block metadata. Both are
            // chain-level reads gated by the pseudo-table "__chain__".
            Statement::Trace { .. } | Statement::GetBlock(_) => {
                vec![(Permission::Read, "__chain__".into())]
            }
            // EXPLAIN never executes; gate it like the inner statement
            // would be gated.
            Statement::Explain(inner) => return self.check_access(principal, inner),
        };
        for (perm, table) in checks {
            self.access
                .check(principal, perm, &table)
                .map_err(NodeError::Denied)?;
        }
        Ok(())
    }

    /// Executes a resolved plan.
    pub fn execute_plan(
        &self,
        plan: LogicalPlan,
        strategy: Strategy,
    ) -> Result<ExecOutcome, NodeError> {
        match plan {
            LogicalPlan::CreateTable(schema) => self.submit_create(schema),
            LogicalPlan::Insert { table, row } => self.submit_insert(&table, row),
            LogicalPlan::Trace {
                window,
                operator,
                operation,
            } => {
                // Resolve operator names to sender ids here, where the
                // registry lives.
                let operator = match operator {
                    Some(Value::Str(name)) => {
                        let id = self.resolve_operator(&name).ok_or_else(|| {
                            NodeError::Other(format!("unknown operator '{name}'"))
                        })?;
                        Some(Value::Bytes(id.as_bytes().to_vec()))
                    }
                    other => other,
                };
                let exec = Executor::new(&self.ledger, self.offchain.as_ref());
                Ok(ExecOutcome::Rows(exec.execute(
                    &LogicalPlan::Trace {
                        window,
                        operator,
                        operation,
                    },
                    strategy,
                )?))
            }
            read_only => {
                let exec = Executor::new(&self.ledger, self.offchain.as_ref());
                Ok(ExecOutcome::Rows(exec.execute(&read_only, strategy)?))
            }
        }
    }

    /// `CREATE`: broadcast a schema-sync transaction, wait until the
    /// local catalog has applied it.
    fn submit_create(&self, schema: TableSchema) -> Result<ExecOutcome, NodeError> {
        let table = schema.name.clone();
        let mut tx = SchemaManager::schema_transaction(&schema, now_ms(), self.id());
        tx.sig = self.identity.sign(&tx.signing_payload()).to_bytes();
        let ack = self.consensus.submit(tx);
        let committed = ack
            .recv_timeout(self.apply_timeout)
            .map_err(|_| NodeError::ApplyTimeout)?
            .map_err(NodeError::Consensus)?;
        self.wait_applied(committed.seq)?;
        Ok(ExecOutcome::Created { table })
    }

    /// `INSERT`: sign, submit through consensus, wait for local apply
    /// (read-your-writes).
    fn submit_insert(&self, table: &str, row: Vec<Value>) -> Result<ExecOutcome, NodeError> {
        let mut tx = Transaction::new(now_ms(), self.id(), table, row);
        tx.sig = self.identity.sign(&tx.signing_payload()).to_bytes();
        let ack = self.consensus.submit(tx);
        let committed = ack
            .recv_timeout(self.apply_timeout)
            .map_err(|_| NodeError::ApplyTimeout)?
            .map_err(NodeError::Consensus)?;
        self.wait_applied(committed.seq)?;
        Ok(ExecOutcome::Inserted {
            tid: committed.tid,
            block: committed.seq,
        })
    }

    /// Submits a pre-built transaction (used by benchmark clients);
    /// returns when committed, without waiting for local apply.
    pub fn submit_transaction(
        &self,
        mut tx: Transaction,
        signer: &MacKeypair,
    ) -> Result<sebdb_consensus::CommitAck, NodeError> {
        tx.sig = signer.sign(&tx.signing_payload()).to_bytes();
        self.consensus
            .submit(tx)
            .recv_timeout(self.apply_timeout)
            .map_err(|_| NodeError::ApplyTimeout)?
            .map_err(NodeError::Consensus)
    }

    fn wait_applied(&self, seq: u64) -> Result<(), NodeError> {
        let health = &self.health;
        let reached =
            self.ledger
                .wait_for_height(seq + 1, Instant::now() + self.apply_timeout, || {
                    health.is_poisoned()
                });
        if reached {
            Ok(())
        } else if let Some(err) = health.error() {
            // Fail fast with the stage error instead of burning the
            // full apply timeout against a dead applier.
            Err(NodeError::ApplierDead(err.to_string()))
        } else {
            Err(NodeError::ApplyTimeout)
        }
    }

    /// Blocks until the local chain reaches `height` (applied: persisted
    /// and indexed). Returns false on timeout or a dead applier.
    pub fn wait_height(&self, height: u64, timeout: Duration) -> bool {
        let health = &self.health;
        self.ledger
            .wait_for_height(height, Instant::now() + timeout, || health.is_poisoned())
    }

    /// Stops the applier pipeline.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::Relaxed);
        if let Some(mut p) = self.pipeline.lock().take() {
            p.join();
        }
    }
}

impl Drop for SebdbNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}
