//! Thin clients and authenticated queries (§VI).
//!
//! A thin client stores only block headers. To query, it runs the
//! paper's two-phase protocol: phase 1 asks a randomly chosen full
//! node, which executes over the ALI and returns results + VO + the
//! snapshot height `h`; phase 2 relays `(query, h)` to one or more
//! *auxiliary* full nodes, which return a digest over the MB-tree
//! roots of exactly the blocks the query must visit. The client
//! verifies soundness and completeness from the VO and cross-checks
//! the digest(s). [`byzantine_risk`] implements Eq. (4)–(6): the
//! probability that `m` matching digests out of `n` sampled auxiliary
//! nodes are all from Byzantine nodes.
//!
//! The *basic* comparison approach (Figs. 17–19) ships every candidate
//! block whole; the client recomputes each block's transaction Merkle
//! root against its stored header.

use crate::ledger::Ledger;
use sebdb_crypto::sha256::Digest;
use sebdb_index::{verify_query_vo, KeyPredicate, QueryVo, VerifyError};
use sebdb_types::{BlockHeader, BlockId, Codec, Timestamp, Transaction};

/// What a full node returns in phase 1.
#[derive(Debug, Clone)]
pub struct AuthenticatedResponse {
    /// The matching transactions, in VO order.
    pub transactions: Vec<Transaction>,
    /// The verification object.
    pub vo: QueryVo,
    /// MB-tree fanout (clients need it to reconstruct roots).
    pub fanout: usize,
}

impl AuthenticatedResponse {
    /// Total bytes shipped to the client (Fig. 17's VO-size metric
    /// counts the proof material, not the result payload).
    pub fn vo_bytes(&self) -> usize {
        self.vo.byte_len()
    }
}

/// Server-side phase 1: execute `pred` on `(table, column)`'s ALI at
/// the current height.
pub fn serve_authenticated_query(
    ledger: &Ledger,
    table: Option<&str>,
    column: &str,
    pred: &KeyPredicate,
    window: Option<(Timestamp, Timestamp)>,
) -> Option<AuthenticatedResponse> {
    let height = ledger.height();
    let mask = ledger.window_mask(window);
    let (vo, fanout) = ledger.with_ali(table, column, |ali| {
        (
            ali.authenticated_query(pred, Some(&mask), height),
            ali.fanout(),
        )
    })?;
    // Materialize the result transactions the VO points at.
    let mut transactions = Vec::new();
    for ptr in vo.result_ptrs() {
        let tx = ledger.read_tx(ptr).ok()?;
        transactions.push((*tx).clone());
    }
    Some(AuthenticatedResponse {
        transactions,
        vo,
        fanout,
    })
}

/// Server-side phase 2 (auxiliary full node): digest over the MB-tree
/// roots the query visits at snapshot `height`.
pub fn serve_auxiliary_digest(
    ledger: &Ledger,
    table: Option<&str>,
    column: &str,
    pred: &KeyPredicate,
    window: Option<(Timestamp, Timestamp)>,
    height: BlockId,
) -> Option<Digest> {
    let mask = ledger.window_mask(window);
    ledger.with_ali(table, column, |ali| {
        ali.auxiliary_query(pred, Some(&mask), height)
    })
}

/// A phase-1 response for an authenticated *join* (§VI: "It is
/// convenient to modify Algorithm 1–3 to support Track-trace and Join
/// based on the ALI"): the full node returns each relation's matching
/// transactions with per-relation VOs; the client verifies both sides
/// are sound and complete, then computes the equi-join locally over
/// authenticated data — so a lying server can neither invent nor hide
/// join rows.
#[derive(Debug, Clone)]
pub struct AuthenticatedJoinResponse {
    /// The left relation's response (all indexed entries).
    pub left: AuthenticatedResponse,
    /// The right relation's response.
    pub right: AuthenticatedResponse,
}

/// Serves phase 1 of an authenticated join of `left` ⋈ `right` on
/// their ALI-indexed columns (full key range — completeness of the
/// join needs both relations whole within the window).
pub fn serve_authenticated_join(
    ledger: &Ledger,
    left: (&str, &str),
    right: (&str, &str),
    pred: &KeyPredicate,
    window: Option<(Timestamp, Timestamp)>,
) -> Option<AuthenticatedJoinResponse> {
    Some(AuthenticatedJoinResponse {
        left: serve_authenticated_query(ledger, Some(left.0), left.1, pred, window)?,
        right: serve_authenticated_query(ledger, Some(right.0), right.1, pred, window)?,
    })
}

/// Client-side: verify both sides of an authenticated join against
/// their auxiliary digests, then compute the join rows locally.
/// `key_of` extracts the join attribute from a transaction. Returns
/// the joined (left, right) transaction pairs.
pub fn verify_and_join(
    response: &AuthenticatedJoinResponse,
    pred: &KeyPredicate,
    left_digests: &[Digest],
    right_digests: &[Digest],
    need: usize,
    key_of_left: impl Fn(&Transaction) -> Option<sebdb_types::Value>,
    key_of_right: impl Fn(&Transaction) -> Option<sebdb_types::Value>,
) -> Result<Vec<(Transaction, Transaction)>, ClientVerifyError> {
    let client = ThinClient::new();
    client.verify(pred, &response.left, left_digests, need)?;
    client.verify(pred, &response.right, right_digests, need)?;
    // Join locally over the now-trusted payloads.
    let mut by_key: std::collections::HashMap<sebdb_types::Value, Vec<&Transaction>> =
        std::collections::HashMap::new();
    for tx in &response.right.transactions {
        if let Some(k) = key_of_right(tx) {
            by_key.entry(k).or_default().push(tx);
        }
    }
    let mut out = Vec::new();
    for ltx in &response.left.transactions {
        let Some(k) = key_of_left(ltx) else { continue };
        if let Some(matches) = by_key.get(&k) {
            for rtx in matches {
                out.push((ltx.clone(), (*rtx).clone()));
            }
        }
    }
    Ok(out)
}

/// Thin-client verification failure.
#[derive(Debug, PartialEq, Eq)]
pub enum ClientVerifyError {
    /// A per-block proof or the digest failed.
    Proof(VerifyError),
    /// A returned transaction does not hash to its authenticated entry.
    TxHashMismatch {
        /// Position in the response.
        index: usize,
    },
    /// Fewer than the required number of identical digests.
    InsufficientDigests {
        /// Matching digests received.
        got: usize,
        /// Matching digests required.
        need: usize,
    },
}

impl std::fmt::Display for ClientVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientVerifyError::Proof(e) => write!(f, "proof: {e}"),
            ClientVerifyError::TxHashMismatch { index } => {
                write!(
                    f,
                    "transaction {index} does not match its authenticated hash"
                )
            }
            ClientVerifyError::InsufficientDigests { got, need } => {
                write!(f, "only {got} matching digests, need {need}")
            }
        }
    }
}

impl std::error::Error for ClientVerifyError {}

/// A thin client: headers only.
#[derive(Debug, Default)]
pub struct ThinClient {
    /// Synced block headers.
    pub headers: Vec<BlockHeader>,
}

impl ThinClient {
    /// Empty client.
    pub fn new() -> Self {
        Self::default()
    }

    /// Syncs headers from a full node's ledger.
    pub fn sync_headers(&mut self, ledger: &Ledger) {
        if let Ok(headers) = ledger.headers() {
            self.headers = headers;
        }
    }

    /// Verifies a phase-1 response against auxiliary digests. `need`
    /// identical digests are required (e.g. 2 under 4-node PBFT,
    /// Example 4).
    pub fn verify(
        &self,
        pred: &KeyPredicate,
        response: &AuthenticatedResponse,
        digests: &[Digest],
        need: usize,
    ) -> Result<(), ClientVerifyError> {
        // Digest agreement first (phase 2).
        let agreed =
            most_common(digests).ok_or(ClientVerifyError::InsufficientDigests { got: 0, need })?;
        if agreed.1 < need {
            return Err(ClientVerifyError::InsufficientDigests {
                got: agreed.1,
                need,
            });
        }
        // Per-block soundness + completeness, and block-set coverage.
        verify_query_vo(&response.vo, pred, &agreed.0, response.fanout)
            .map_err(ClientVerifyError::Proof)?;
        // Every returned transaction must hash to its authenticated
        // entry (ties payloads to the VO).
        let entries: Vec<&sebdb_index::AuthEntry> = response
            .vo
            .per_block
            .iter()
            .flat_map(|b| b.results.iter())
            .collect();
        if entries.len() != response.transactions.len() {
            return Err(ClientVerifyError::TxHashMismatch { index: 0 });
        }
        for (i, (tx, entry)) in response.transactions.iter().zip(entries).enumerate() {
            if tx.hash() != entry.tx_hash {
                return Err(ClientVerifyError::TxHashMismatch { index: i });
            }
        }
        Ok(())
    }

    /// The basic approach: verify whole shipped blocks by recomputing
    /// each block's transaction Merkle root against the synced header.
    /// Returns the transactions matching `keep`, or `None` on any root
    /// mismatch.
    pub fn verify_blocks_basic(
        &self,
        blocks: &[sebdb_types::Block],
        keep: impl Fn(&Transaction) -> bool,
    ) -> Option<Vec<Transaction>> {
        let mut out = Vec::new();
        for block in blocks {
            let header = self.headers.get(block.header.height as usize)?;
            let leaves: Vec<Vec<u8>> = block.transactions.iter().map(|t| t.to_bytes()).collect();
            if sebdb_crypto::merkle::merkle_root(&leaves) != header.trans_root {
                return None;
            }
            out.extend(block.transactions.iter().filter(|t| keep(t)).cloned());
        }
        Some(out)
    }
}

fn most_common(digests: &[Digest]) -> Option<(Digest, usize)> {
    let mut best: Option<(Digest, usize)> = None;
    for d in digests {
        let count = digests.iter().filter(|x| *x == d).count();
        if best.map(|(_, c)| count > c).unwrap_or(true) {
            best = Some((*d, count));
        }
    }
    best
}

/// Eq. (4)–(6): with Byzantine fraction `p`, `n` auxiliary nodes
/// sampled, `m` identical digests observed, and at most `max_byz`
/// Byzantine nodes in the network, the probability θ that the agreed
/// digest is wrong.
///
/// `p_w` (Eq. 4) is the probability the first `m` matching responses
/// are all Byzantine; `p_r` (Eq. 5) that they are all honest; θ is the
/// posterior `p_w / (p_w + p_r)` (Eq. 6), zero when `m` exceeds the
/// Byzantine population.
pub fn byzantine_risk(p: f64, n: usize, m: usize, max_byz: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    if m == 0 || m > n {
        return 1.0;
    }
    if m > max_byz {
        return 0.0;
    }
    // Σ_{i=0}^{m-1} C(m-1+i, i) x^{m-1} y^i, the negative-binomial mass
    // of seeing m-1 further successes before i failures.
    let series = |x: f64, y: f64| -> f64 {
        let mut sum = 0.0;
        for i in 0..m {
            sum += binom(m - 1 + i, i) * x.powi((m - 1) as i32) * y.powi(i as i32);
        }
        sum
    };
    let p_w = p * series(p, 1.0 - p);
    let p_r = (1.0 - p) * series(1.0 - p, p);
    if p_w + p_r == 0.0 {
        return 0.0;
    }
    p_w / (p_w + p_r)
}

fn binom(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut v = 1.0;
    for i in 0..k {
        v = v * (n - i) as f64 / (i + 1) as f64;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byzantine_risk_shrinks_with_more_matches() {
        let p = 1.0 / 3.0;
        let r1 = byzantine_risk(p, 8, 1, 10);
        let r2 = byzantine_risk(p, 8, 3, 10);
        let r3 = byzantine_risk(p, 8, 6, 10);
        assert!(r1 > r2 && r2 > r3, "{r1} {r2} {r3}");
        // Six identical digests at p = 1/3 leave θ ≈ 0.12.
        assert!(r3 < 0.2, "{r3}");
    }

    #[test]
    fn byzantine_risk_zero_beyond_population() {
        // More matching digests than Byzantine nodes exist ⇒ cannot all
        // be Byzantine.
        assert_eq!(byzantine_risk(0.3, 10, 4, 3), 0.0);
    }

    #[test]
    fn byzantine_risk_extremes() {
        assert_eq!(byzantine_risk(0.0, 4, 2, 4), 0.0);
        assert!(byzantine_risk(0.9, 4, 1, 4) > 0.5);
        assert_eq!(byzantine_risk(0.5, 4, 0, 4), 1.0);
    }

    #[test]
    fn most_common_majority() {
        let a = sebdb_crypto::sha256(b"a");
        let b = sebdb_crypto::sha256(b"b");
        let (d, c) = most_common(&[a, b, a]).unwrap();
        assert_eq!(d, a);
        assert_eq!(c, 2);
        assert!(most_common(&[]).is_none());
    }
}
