//! Tendermint-style round-based BFT.
//!
//! Models the paper's Tendermint 0.19 deployment (§VII-B). Validators
//! rotate the proposer per round; each height runs
//! Propose → Prevote → Precommit with ⌈2n/3⌉+ quorums, advancing to the
//! next round (with the next proposer) on timeout. Transactions pass
//! through a *serial* CheckTx before entering the mempool — the paper's
//! explanation for Tendermint's limited throughput ("each transaction
//! … is first checked by and then delivered to SEBDB in a serial
//! manner, which is a slow process"). The per-transaction check cost
//! is configurable so the Fig. 7 harness can reproduce that shape.
//!
//! [`TendermintConfig::batched_checktx`] switches admission to the
//! shared coalescing [`Mempool`] the Kafka and PBFT engines use:
//! submitters enqueue into the condvar-guarded buffer, and one
//! admission thread drains whole batches — MAC checks fanned across
//! workers via [`Mempool::admit`], the modeled CheckTx overhead paid
//! once per batch instead of once per transaction. That is the
//! "what-if" counterpart to the serial reproduction: all three
//! consensus modes then feed the write pipeline through batch
//! admission.
//!
//! Scope note: value locking (the POL rule) is omitted — with honest
//! validators and a reliable simulated network, a round either commits
//! one proposal or advances with nil votes, so safety is preserved for
//! the configurations exercised here.

use crate::mempool::{AdmissionVerifier, Mempool};
use crate::traits::{now_ms, BatchConfig, CommitAck, Consensus, ConsensusError, OrderedBlock};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use sebdb_crypto::sha256::{Digest, Sha256};
use sebdb_network::sim::{NetConfig, NodeId, SimNet};
use sebdb_types::{Codec, Transaction};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type AckSender = Sender<Result<CommitAck, ConsensusError>>;

/// Tendermint protocol messages.
#[derive(Debug, Clone)]
pub enum TmMsg {
    /// Proposer → all: the proposed block for (height, round).
    Proposal {
        /// Consensus height (= block seq).
        height: u64,
        /// Round within the height.
        round: u32,
        /// Proposed block.
        block: OrderedBlock,
    },
    /// Validator → all: prevote (`None` = nil).
    Prevote {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Voted digest, or nil.
        digest: Option<Digest>,
    },
    /// Validator → all: precommit (`None` = nil).
    Precommit {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Voted digest, or nil.
        digest: Option<Digest>,
    },
}

fn tm_trace(f: impl FnOnce() -> String) {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *ON.get_or_init(|| std::env::var("SEBDB_TM_TRACE").is_ok()) {
        eprintln!("[tm] {}", f());
    }
}

fn msg_height(msg: &TmMsg) -> u64 {
    match msg {
        TmMsg::Proposal { height, .. }
        | TmMsg::Prevote { height, .. }
        | TmMsg::Precommit { height, .. } => *height,
    }
}

fn block_digest(block: &OrderedBlock) -> Digest {
    let mut h = Sha256::new();
    h.update(&block.seq.to_le_bytes());
    for tx in &block.txs {
        h.update(&tx.to_bytes());
    }
    h.finalize()
}

/// Tendermint engine configuration.
#[derive(Debug, Clone)]
pub struct TendermintConfig {
    /// Packaging policy (the paper sets the packaging block size to
    /// 10 000 so blocks cut on timeout under light load).
    pub batch: BatchConfig,
    /// Validator count (quorum is ⌈2n/3⌉+).
    pub validators: usize,
    /// Network behaviour between validators.
    pub net: NetConfig,
    /// Per-step timeout.
    pub step_timeout: Duration,
    /// Serial CheckTx cost per transaction, in microseconds (on top of
    /// the real hash verification) — models Tendermint's admission
    /// path.
    pub checktx_cost_us: u64,
    /// Admit through the shared coalescing [`Mempool`] instead of the
    /// serial per-transaction CheckTx thread: batches drain at the
    /// packaging cut, MAC checks run across workers, and the modeled
    /// CheckTx overhead is paid once per batch. `false` preserves the
    /// paper's serial admission (the Fig. 7 bottleneck).
    pub batched_checktx: bool,
    /// Validators that never start (liveness fault injection).
    pub down: Vec<NodeId>,
}

impl Default for TendermintConfig {
    fn default() -> Self {
        TendermintConfig {
            batch: BatchConfig {
                max_txs: 10_000,
                timeout_ms: 200,
            },
            validators: 4,
            net: NetConfig::default(),
            step_timeout: Duration::from_millis(150),
            checktx_cost_us: 0,
            batched_checktx: false,
            down: Vec::new(),
        }
    }
}

/// The modeled CheckTx admission overhead (the only wall-clock pause
/// in this engine): the serial path pays it once per transaction, the
/// batched path once per drained batch. The pause is a timed wait on a
/// never-notified condvar — a pure deadline, not a poll; waiters park
/// in parallel (the mutex is released while parked), and spurious
/// wakeups loop until the deadline passes.
fn checktx_pause(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    static PAUSE: std::sync::OnceLock<(Mutex<()>, parking_lot::Condvar)> =
        std::sync::OnceLock::new();
    let (lock, cv) = PAUSE.get_or_init(|| (Mutex::new(()), parking_lot::Condvar::new()));
    let deadline = std::time::Instant::now() + cost;
    let mut guard = lock.lock();
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() || cv.wait_for(&mut guard, remaining).timed_out() {
            return;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Propose,
    Prevote,
    Precommit,
}

struct HeightState {
    proposals: HashMap<u32, OrderedBlock>,
    prevotes: HashMap<(u32, Option<Digest>), HashSet<NodeId>>,
    precommits: HashMap<(u32, Option<Digest>), HashSet<NodeId>>,
    sent_prevote: HashSet<u32>,
    sent_precommit: HashSet<u32>,
}

impl HeightState {
    fn new() -> Self {
        HeightState {
            proposals: HashMap::new(),
            prevotes: HashMap::new(),
            precommits: HashMap::new(),
            sent_prevote: HashSet::new(),
            sent_precommit: HashSet::new(),
        }
    }
}

struct Validator {
    id: NodeId,
    n: usize,
    net: Arc<SimNet<TmMsg>>,
    inbox: Receiver<sebdb_network::sim::Envelope<TmMsg>>,
    mempool: Arc<Mutex<VecDeque<Transaction>>>,
    batch: BatchConfig,
    step_timeout: Duration,
    height: u64,
    round: u32,
    step: Step,
    deadline: Instant,
    state: HeightState,
    deliveries: Sender<(NodeId, OrderedBlock)>,
    stopped: Arc<AtomicBool>,
    /// When the current head of the mempool first became visible —
    /// drives the packaging timeout.
    batch_started: Option<Instant>,
    /// Messages for the *next* height, parked until we commit the
    /// current one. A peer that commits height H first may drain the
    /// shared mempool and broadcast its (H+1, 0) proposal while we are
    /// still finishing H; the network delivers exactly once, so
    /// dropping that proposal loses the only copy of the block (the
    /// mempool is already empty, it can never be re-proposed) and
    /// halts the chain. Skew never exceeds one height: every quorum
    /// needs our vote, so peers cannot commit H+1 before we reach it.
    parked: Vec<(NodeId, TmMsg)>,
}

impl Validator {
    fn quorum(&self) -> usize {
        2 * self.n / 3 + 1
    }

    fn proposer_of(&self, height: u64, round: u32) -> NodeId {
        ((height + round as u64) % self.n as u64) as NodeId
    }

    fn run(mut self) {
        self.deadline = Instant::now() + self.step_timeout;
        while !self.stopped.load(Ordering::Relaxed) {
            self.maybe_propose();
            let wait = self
                .deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(5));
            match self.inbox.recv_timeout(wait) {
                Ok(env) => self.handle(env.from, env.msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            self.on_deadline();
        }
    }

    fn broadcast_and_self(&mut self, msg: TmMsg) {
        self.net.broadcast(self.id, msg.clone());
        self.handle(self.id, msg);
    }

    /// If we are the proposer of the current round and have not yet
    /// proposed, cut a batch when it is full or the packaging timeout
    /// has elapsed.
    fn maybe_propose(&mut self) {
        if self.step != Step::Propose
            || self.proposer_of(self.height, self.round) != self.id
            || self.state.proposals.contains_key(&self.round)
        {
            return;
        }
        if let Some(block) = self.holdover_proposal() {
            let (height, round) = (self.height, self.round);
            self.broadcast_and_self(TmMsg::Proposal {
                height,
                round,
                block,
            });
            return;
        }
        let ready = {
            let pool = self.mempool.lock();
            if pool.is_empty() {
                self.batch_started = None;
                false
            } else {
                if self.batch_started.is_none() {
                    self.batch_started = Some(Instant::now());
                }
                pool.len() >= self.batch.max_txs
                    || self.batch_started.is_some_and(|s| {
                        s.elapsed() >= Duration::from_millis(self.batch.timeout_ms)
                    })
            }
        };
        if !ready {
            return;
        }
        let txs: Vec<Transaction> = {
            let mut pool = self.mempool.lock();
            let take = pool.len().min(self.batch.max_txs);
            pool.drain(..take).collect()
        };
        self.batch_started = None;
        let block = OrderedBlock {
            seq: self.height,
            timestamp_ms: now_ms(),
            txs,
        };
        let (height, round) = (self.height, self.round);
        self.broadcast_and_self(TmMsg::Proposal {
            height,
            round,
            block,
        });
    }

    /// The latest proposal held from an earlier round of this height.
    /// Its transactions were already drained from the shared mempool
    /// when it was first proposed, so if its round failed (prevotes
    /// split because some validators saw the proposal only after
    /// advancing) the block must be proposed *again* — a fresh round's
    /// proposer finds the mempool empty and has nothing else to offer;
    /// without re-proposal the chain halts. This is the role
    /// Tendermint's validValue plays.
    fn holdover_proposal(&self) -> Option<OrderedBlock> {
        self.state
            .proposals
            .iter()
            .filter(|(r, _)| **r < self.round)
            .max_by_key(|(r, _)| **r)
            .map(|(_, b)| b.clone())
    }

    fn handle(&mut self, from: NodeId, msg: TmMsg) {
        tm_trace(|| {
            format!(
                "v{} h{} r{} {:?} <- {from}: {msg:?}",
                self.id, self.height, self.round, self.step
            )
        });
        if msg_height(&msg) == self.height + 1 {
            self.parked.push((from, msg));
            return;
        }
        match msg {
            TmMsg::Proposal {
                height,
                round,
                block,
            } => {
                if height != self.height || from != self.proposer_of(height, round) {
                    return;
                }
                if block.seq != height {
                    return;
                }
                let digest = block_digest(&block);
                self.state.proposals.insert(round, block);
                // Prevote for the proposal if we haven't voted this round.
                if round == self.round && self.state.sent_prevote.insert(round) {
                    self.step = Step::Prevote;
                    self.deadline = Instant::now() + self.step_timeout;
                    self.broadcast_and_self(TmMsg::Prevote {
                        height,
                        round,
                        digest: Some(digest),
                    });
                }
                // Votes may have raced ahead of the proposal; re-check.
                self.check_prevote_quorum(round);
                self.check_precommit_quorum(round);
            }
            TmMsg::Prevote {
                height,
                round,
                digest,
            } => {
                if height != self.height {
                    return;
                }
                self.state
                    .prevotes
                    .entry((round, digest))
                    .or_default()
                    .insert(from);
                self.check_prevote_quorum(round);
            }
            TmMsg::Precommit {
                height,
                round,
                digest,
            } => {
                if height != self.height {
                    return;
                }
                self.state
                    .precommits
                    .entry((round, digest))
                    .or_default()
                    .insert(from);
                self.check_precommit_quorum(round);
            }
        }
    }

    fn check_prevote_quorum(&mut self, round: u32) {
        if round != self.round || self.state.sent_precommit.contains(&round) {
            return;
        }
        let quorum = self.quorum();
        // Quorum for a concrete digest → precommit it.
        let hit: Option<Option<Digest>> = self
            .state
            .prevotes
            .iter()
            .find(|((r, d), votes)| *r == round && d.is_some() && votes.len() >= quorum)
            .map(|((_, d), _)| *d);
        let nil_quorum = self
            .state
            .prevotes
            .get(&(round, None))
            .is_some_and(|v| v.len() >= quorum);
        let vote = if let Some(d) = hit {
            Some(d)
        } else if nil_quorum {
            Some(None)
        } else {
            None
        };
        if let Some(digest) = vote {
            self.state.sent_precommit.insert(round);
            self.step = Step::Precommit;
            self.deadline = Instant::now() + self.step_timeout;
            let height = self.height;
            self.broadcast_and_self(TmMsg::Precommit {
                height,
                round,
                digest,
            });
        }
    }

    fn check_precommit_quorum(&mut self, round: u32) {
        let quorum = self.quorum();
        // Commit on a digest quorum at any round of this height.
        let hit: Option<Digest> = self
            .state
            .precommits
            .iter()
            .find(|((r, d), votes)| *r == round && d.is_some() && votes.len() >= quorum)
            .and_then(|((_, d), _)| *d);
        if let Some(digest) = hit {
            // We must hold the matching proposal to apply it.
            let block = self
                .state
                .proposals
                .get(&round)
                .filter(|b| block_digest(b) == digest)
                .cloned();
            if let Some(block) = block {
                let _ = self.deliveries.send((self.id, block));
                self.height += 1;
                self.round = 0;
                self.step = Step::Propose;
                self.state = HeightState::new();
                self.deadline = Instant::now() + self.step_timeout;
                // Replay messages that arrived for this (now current)
                // height while we were still committing the previous
                // one. A replayed quorum may commit again recursively;
                // parked entries are all at the new height, so the
                // recursion depth is bounded by one.
                for (from, msg) in std::mem::take(&mut self.parked) {
                    self.handle(from, msg);
                }
                return;
            }
        }
        // Nil quorum at our round → next round, next proposer.
        if round == self.round
            && self
                .state
                .precommits
                .get(&(round, None))
                .is_some_and(|v| v.len() >= quorum)
        {
            self.advance_round();
        }
    }

    fn on_deadline(&mut self) {
        if Instant::now() < self.deadline {
            return;
        }
        let (height, round) = (self.height, self.round);
        match self.step {
            Step::Propose => {
                // No proposal in time → prevote nil. Only when there is
                // traffic waiting; otherwise stay idle in Propose.
                let has_traffic = !self.mempool.lock().is_empty()
                    || !self.state.proposals.is_empty()
                    || !self.state.prevotes.is_empty();
                tm_trace(|| {
                    format!(
                        "v{} h{} r{} propose-deadline traffic={has_traffic}",
                        self.id, self.height, self.round
                    )
                });
                if has_traffic && self.state.sent_prevote.insert(round) {
                    self.step = Step::Prevote;
                    self.broadcast_and_self(TmMsg::Prevote {
                        height,
                        round,
                        digest: None,
                    });
                }
                self.deadline = Instant::now() + self.step_timeout;
            }
            Step::Prevote => {
                if self.state.sent_precommit.insert(round) {
                    self.step = Step::Precommit;
                    self.broadcast_and_self(TmMsg::Precommit {
                        height,
                        round,
                        digest: None,
                    });
                }
                self.deadline = Instant::now() + self.step_timeout;
            }
            Step::Precommit => {
                self.advance_round();
            }
        }
    }

    fn advance_round(&mut self) {
        self.round += 1;
        self.step = Step::Propose;
        self.deadline = Instant::now() + self.step_timeout;
        // The new round's proposal (and even its votes) may have raced
        // ahead of our round change — we stored them but, being in an
        // older round, never voted. Vote now, or the round's digest
        // quorum is one vote short forever (every quorum needs us when
        // one validator of four is down).
        if let Some(digest) = self.state.proposals.get(&self.round).map(block_digest) {
            if self.state.sent_prevote.insert(self.round) {
                self.step = Step::Prevote;
                let (height, round) = (self.height, self.round);
                self.broadcast_and_self(TmMsg::Prevote {
                    height,
                    round,
                    digest: Some(digest),
                });
            }
            self.check_prevote_quorum(self.round);
            self.check_precommit_quorum(self.round);
        }
    }
}

struct TmShared {
    subscribers: Mutex<Vec<Sender<OrderedBlock>>>,
    acks: Mutex<HashMap<u64, AckSender>>,
    stopped: Arc<AtomicBool>,
}

/// The Tendermint-style consensus engine.
pub struct TendermintEngine {
    submit_tx: Sender<(Transaction, AckSender)>,
    /// The shared coalescing ingest pool — `Some` only under
    /// [`TendermintConfig::batched_checktx`].
    ingest: Option<Arc<Mempool>>,
    shared: Arc<TmShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    n: usize,
}

impl TendermintEngine {
    /// Starts the validators, the CheckTx admission thread (serial or
    /// batched per the config), and the delivery fan-out.
    pub fn start(config: TendermintConfig) -> Arc<Self> {
        let n = config.validators;
        assert!(n >= 1);
        let net: Arc<SimNet<TmMsg>> = SimNet::new(config.net.clone());
        let stopped = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(TmShared {
            subscribers: Mutex::new(Vec::new()),
            acks: Mutex::new(HashMap::new()),
            stopped: Arc::clone(&stopped),
        });
        let mempool = Arc::new(Mutex::new(VecDeque::new()));
        let (deliver_tx, deliver_rx) = unbounded::<(NodeId, OrderedBlock)>();
        let mut threads = Vec::new();

        let mut endpoints = Vec::new();
        for _ in 0..n {
            endpoints.push(net.register());
        }
        for (id, inbox) in endpoints {
            if config.down.contains(&id) {
                continue; // faulty validator never starts
            }
            let v = Validator {
                id,
                n,
                net: Arc::clone(&net),
                inbox,
                mempool: Arc::clone(&mempool),
                batch: config.batch,
                step_timeout: config.step_timeout,
                height: 0,
                round: 0,
                step: Step::Propose,
                deadline: Instant::now(),
                state: HeightState::new(),
                deliveries: deliver_tx.clone(),
                stopped: Arc::clone(&stopped),
                batch_started: None,
                parked: Vec::new(),
            };
            threads.push(sebdb_parallel::spawn_service("tm-validator", move || {
                v.run()
            }));
        }
        drop(deliver_tx);

        // CheckTx + mempool admission: serial per-transaction (the
        // paper's reproduction) or batched through the shared Mempool.
        let (submit_tx, submit_rx) = unbounded::<(Transaction, AckSender)>();
        let cost = Duration::from_micros(config.checktx_cost_us);
        let ingest = if config.batched_checktx {
            let pool = Arc::new(Mempool::new(config.batch));
            let mempool = Arc::clone(&mempool);
            let shared = Arc::clone(&shared);
            let batch_pool = Arc::clone(&pool);
            drop(submit_rx); // batched mode never uses the serial lane
            threads.push(sebdb_parallel::spawn_service(
                "tm-checktx-batch",
                move || {
                    let mut next_tid: u64 = 1;
                    while let Some(batch) = batch_pool.next_batch() {
                        // Batch MAC admission across workers (no-op until a
                        // verifier is installed), then one amortized
                        // CheckTx pause for the whole batch — the serial
                        // path pays it per transaction.
                        let batch = batch_pool.admit(batch);
                        checktx_pause(cost);
                        for (mut tx, ack) in batch {
                            if tx.tname.is_empty() {
                                let _ = ack.send(Err(ConsensusError::Rejected(
                                    "empty transaction type".into(),
                                )));
                                continue;
                            }
                            let _ = tx.hash();
                            tx.tid = next_tid;
                            next_tid += 1;
                            shared.acks.lock().insert(tx.tid, ack);
                            mempool.lock().push_back(tx);
                        }
                    }
                    // Pool closed: refuse whatever never made a batch.
                    for (_tx, ack) in batch_pool.take_remaining() {
                        let _ = ack.send(Err(ConsensusError::Stopped));
                    }
                },
            ));
            Some(pool)
        } else {
            let mempool = Arc::clone(&mempool);
            let shared = Arc::clone(&shared);
            let stopped = Arc::clone(&stopped);
            threads.push(sebdb_parallel::spawn_service("tm-checktx", move || {
                let mut next_tid: u64 = 1;
                loop {
                    if stopped.load(Ordering::Relaxed) {
                        return;
                    }
                    match submit_rx.recv_timeout(Duration::from_millis(20)) {
                        Ok((mut tx, ack)) => {
                            // CheckTx: re-encode and hash (real work),
                            // reject empty types.
                            if tx.tname.is_empty() {
                                let _ = ack.send(Err(ConsensusError::Rejected(
                                    "empty transaction type".into(),
                                )));
                                continue;
                            }
                            let _ = tx.hash();
                            checktx_pause(cost);
                            tx.tid = next_tid;
                            next_tid += 1;
                            shared.acks.lock().insert(tx.tid, ack);
                            mempool.lock().push_back(tx);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }));
            None
        };

        // Delivery fan-out: the lowest-id live validator's stream.
        let canonical: NodeId = (0..n).find(|id| !config.down.contains(id)).unwrap_or(0);
        {
            let shared = Arc::clone(&shared);
            threads.push(sebdb_parallel::spawn_service("tm-deliver", move || {
                for (validator, block) in deliver_rx.iter() {
                    if validator != canonical {
                        continue;
                    }
                    for sub in shared.subscribers.lock().iter() {
                        let _ = sub.send(block.clone());
                    }
                    let mut acks = shared.acks.lock();
                    for tx in &block.txs {
                        if let Some(ack) = acks.remove(&tx.tid) {
                            let _ = ack.send(Ok(CommitAck {
                                tid: tx.tid,
                                seq: block.seq,
                            }));
                        }
                    }
                }
            }));
        }

        Arc::new(TendermintEngine {
            submit_tx,
            ingest,
            shared,
            threads: Mutex::new(threads),
            n,
        })
    }

    /// Validator count.
    pub fn validator_count(&self) -> usize {
        self.n
    }

    /// Installs (or clears) the batch admission MAC verifier. Only
    /// effective under [`TendermintConfig::batched_checktx`] — the
    /// serial reproduction checks hashes only, as the paper describes.
    pub fn set_tx_verifier(&self, verifier: Option<Box<AdmissionVerifier>>) {
        if let Some(ingest) = &self.ingest {
            ingest.set_verifier(verifier);
        }
    }
}

impl Consensus for TendermintEngine {
    fn submit(&self, tx: Transaction) -> Receiver<Result<CommitAck, ConsensusError>> {
        if let Some(ingest) = &self.ingest {
            return ingest.submit(tx);
        }
        let (ack_tx, ack_rx) = bounded(1);
        if self.submit_tx.send((tx, ack_tx.clone())).is_err() {
            let _ = ack_tx.send(Err(ConsensusError::Stopped));
        }
        ack_rx
    }

    fn subscribe(&self) -> Receiver<OrderedBlock> {
        let (tx, rx) = unbounded();
        self.shared.subscribers.lock().push(tx);
        rx
    }

    fn shutdown(&self) {
        self.shared.stopped.store(true, Ordering::Relaxed);
        if let Some(ingest) = &self.ingest {
            ingest.close();
        }
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }

    fn name(&self) -> &'static str {
        "tendermint"
    }
}

impl Drop for TendermintEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::Value;

    fn tx(i: i64) -> Transaction {
        Transaction::new(now_ms(), KeyId([3; 8]), "donate", vec![Value::Int(i)])
    }

    fn quick() -> TendermintConfig {
        TendermintConfig {
            batch: BatchConfig {
                max_txs: 4,
                timeout_ms: 30,
            },
            step_timeout: Duration::from_millis(100),
            ..TendermintConfig::default()
        }
    }

    #[test]
    fn commits_a_block() {
        let e = TendermintEngine::start(quick());
        let sub = e.subscribe();
        let acks: Vec<_> = (0..4).map(|i| e.submit(tx(i))).collect();
        let block = sub.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(block.seq, 0);
        assert_eq!(block.txs.len(), 4);
        for a in acks {
            assert!(a.recv_timeout(Duration::from_secs(10)).unwrap().is_ok());
        }
        e.shutdown();
    }

    #[test]
    fn heights_advance_sequentially() {
        let e = TendermintEngine::start(quick());
        let sub = e.subscribe();
        for i in 0..12 {
            e.submit(tx(i));
        }
        let mut seqs = Vec::new();
        let mut total = 0;
        while total < 12 {
            let b = sub.recv_timeout(Duration::from_secs(10)).unwrap();
            total += b.txs.len();
            seqs.push(b.seq);
        }
        let want: Vec<u64> = (0..seqs.len() as u64).collect();
        assert_eq!(seqs, want);
        e.shutdown();
    }

    #[test]
    fn checktx_rejects_bad_transactions() {
        let e = TendermintEngine::start(quick());
        let mut bad = tx(1);
        bad.tname = String::new();
        let ack = e.submit(bad);
        match ack.recv_timeout(Duration::from_secs(5)).unwrap() {
            Err(ConsensusError::Rejected(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        e.shutdown();
    }

    #[test]
    fn batched_checktx_commits_blocks_and_acks() {
        let e = TendermintEngine::start(TendermintConfig {
            batched_checktx: true,
            ..quick()
        });
        let sub = e.subscribe();
        let acks: Vec<_> = (0..8).map(|i| e.submit(tx(i))).collect();
        let mut total = 0;
        let mut seqs = Vec::new();
        while total < 8 {
            let b = sub.recv_timeout(Duration::from_secs(10)).unwrap();
            total += b.txs.len();
            seqs.push(b.seq);
        }
        let want: Vec<u64> = (0..seqs.len() as u64).collect();
        assert_eq!(seqs, want, "batched admission must preserve ordering");
        for a in acks {
            assert!(a.recv_timeout(Duration::from_secs(10)).unwrap().is_ok());
        }
        e.shutdown();
    }

    #[test]
    fn batched_checktx_rejects_bad_transactions() {
        let e = TendermintEngine::start(TendermintConfig {
            batched_checktx: true,
            ..quick()
        });
        let mut bad = tx(1);
        bad.tname = String::new();
        let ack = e.submit(bad);
        match ack.recv_timeout(Duration::from_secs(5)).unwrap() {
            Err(ConsensusError::Rejected(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        e.shutdown();
    }

    #[test]
    fn batched_checktx_verifier_rejects_forged_macs() {
        use sebdb_crypto::sig::{MacKeypair, Signer, Verifier};
        let keys = MacKeypair::from_key([6u8; 32]);
        let e = TendermintEngine::start(TendermintConfig {
            batched_checktx: true,
            ..quick()
        });
        let verify_keys = keys.clone();
        e.set_tx_verifier(Some(Box::new(move |tx: &Transaction| {
            sebdb_crypto::sig::Signature::from_bytes(&tx.sig)
                .is_some_and(|sig| verify_keys.verify(&tx.signing_payload(), &sig))
        })));
        let sub = e.subscribe();
        let mut acks = Vec::new();
        for i in 0..4 {
            let mut t = tx(i);
            if i != 2 {
                t.sig = keys.sign(&t.signing_payload()).to_bytes();
            } // tx 2 keeps a forged (empty) signature
            acks.push(e.submit(t));
        }
        match acks
            .remove(2)
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
        {
            Err(ConsensusError::Rejected(_)) => {}
            other => panic!("expected MAC rejection, got {other:?}"),
        }
        let mut total = 0;
        while total < 3 {
            total += sub.recv_timeout(Duration::from_secs(10)).unwrap().txs.len();
        }
        for a in acks {
            assert!(a.recv_timeout(Duration::from_secs(10)).unwrap().is_ok());
        }
        e.shutdown();
    }

    #[test]
    fn survives_a_down_proposer_via_round_rotation() {
        // Validator 0 proposes height 0; validator 1 would propose
        // height 1 round 0 but is down — round rotation must hand the
        // proposal to validator 2.
        let e = TendermintEngine::start(TendermintConfig {
            down: vec![1],
            ..quick()
        });
        let sub = e.subscribe();
        for i in 0..8 {
            e.submit(tx(i));
        }
        let mut total = 0;
        while total < 8 {
            // Generous deadline: every height-1 round-0 step has to
            // burn the full step_timeout before rotation kicks in, and
            // instrumented CI passes (lock-order tracking) on a loaded
            // 1-CPU host have blown a 20 s budget before.
            let b = sub.recv_timeout(Duration::from_secs(60)).unwrap();
            total += b.txs.len();
        }
        e.shutdown();
    }

    #[test]
    fn parks_next_height_messages_during_commit_skew() {
        // Peers that commit height 0 first can drain the shared mempool
        // and broadcast the whole height-1 exchange (proposal + votes)
        // before this validator finishes height 0. Delivery is
        // exactly-once, so if those messages were dropped the height-1
        // block could never be re-proposed (mempool already empty) and
        // the chain would halt. They must be parked and replayed after
        // our own commit.
        let net: Arc<SimNet<TmMsg>> = SimNet::new(NetConfig::default());
        let endpoints: Vec<_> = (0..4).map(|_| net.register()).collect();
        let inbox = endpoints.into_iter().nth(3).unwrap().1;
        let (deliver_tx, deliver_rx) = unbounded();
        let mut v = Validator {
            id: 3,
            n: 4,
            net,
            inbox,
            mempool: Arc::new(Mutex::new(VecDeque::new())),
            batch: quick().batch,
            step_timeout: Duration::from_millis(100),
            height: 0,
            round: 0,
            step: Step::Propose,
            // Far future: this test drives `handle` directly and no
            // step deadline may interfere.
            deadline: Instant::now() + Duration::from_secs(3600),
            state: HeightState::new(),
            deliveries: deliver_tx,
            stopped: Arc::new(AtomicBool::new(false)),
            batch_started: None,
            parked: Vec::new(),
        };
        let block = |seq: u64| OrderedBlock {
            seq,
            timestamp_ms: 1 + seq,
            txs: vec![tx(seq as i64)],
        };
        let (b0, b1) = (block(0), block(1));
        let (d0, d1) = (block_digest(&b0), block_digest(&b1));

        // Height 0 up to the precommit: proposer 0's block, then a
        // prevote quorum ({0, 1} + our own) makes us precommit d0.
        v.handle(
            0,
            TmMsg::Proposal {
                height: 0,
                round: 0,
                block: b0,
            },
        );
        for peer in [0, 1] {
            v.handle(
                peer,
                TmMsg::Prevote {
                    height: 0,
                    round: 0,
                    digest: Some(d0),
                },
            );
        }
        assert_eq!(v.height, 0);

        // The skew: peers 1 and 2 already committed height 0 and run
        // the entire height-1 round before we see their height-0
        // precommits. Every one of these must be parked, not dropped.
        v.handle(
            1, // proposer_of(1, 0) == 1
            TmMsg::Proposal {
                height: 1,
                round: 0,
                block: b1,
            },
        );
        for peer in [1, 2] {
            v.handle(
                peer,
                TmMsg::Prevote {
                    height: 1,
                    round: 0,
                    digest: Some(d1),
                },
            );
            v.handle(
                peer,
                TmMsg::Precommit {
                    height: 1,
                    round: 0,
                    digest: Some(d1),
                },
            );
        }
        assert_eq!(v.height, 0, "future-height messages must not apply early");
        assert_eq!(v.parked.len(), 5);

        // The late height-0 precommits arrive: we commit height 0, the
        // parked height-1 exchange replays, and with our prevote and
        // precommit added it commits height 1 too — no new network
        // traffic needed.
        for peer in [0, 1] {
            v.handle(
                peer,
                TmMsg::Precommit {
                    height: 0,
                    round: 0,
                    digest: Some(d0),
                },
            );
        }
        assert_eq!(v.height, 2);
        assert!(v.parked.is_empty());
        let seqs: Vec<u64> = deliver_rx.try_iter().map(|(_, b)| b.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    /// A bare validator for driving `handle`/`maybe_propose` directly.
    fn bare_validator(id: NodeId) -> (Validator, Receiver<(NodeId, OrderedBlock)>) {
        let net: Arc<SimNet<TmMsg>> = SimNet::new(NetConfig::default());
        let mut inboxes: Vec<_> = (0..4).map(|_| net.register().1).collect();
        let (deliver_tx, deliver_rx) = unbounded();
        let v = Validator {
            id,
            n: 4,
            net,
            inbox: inboxes.remove(id),
            mempool: Arc::new(Mutex::new(VecDeque::new())),
            batch: quick().batch,
            step_timeout: Duration::from_millis(100),
            height: 0,
            round: 0,
            step: Step::Propose,
            deadline: Instant::now() + Duration::from_secs(3600),
            state: HeightState::new(),
            deliveries: deliver_tx,
            stopped: Arc::new(AtomicBool::new(false)),
            batch_started: None,
            parked: Vec::new(),
        };
        std::mem::forget(inboxes); // keep peer mailboxes alive
        (v, deliver_rx)
    }

    #[test]
    fn votes_for_a_proposal_that_raced_ahead_of_the_round_change() {
        // The round-1 proposal (and its votes) can arrive while we are
        // still finishing round 0. We store it but must not stay
        // silent after advancing: without our vote the round-1 digest
        // quorum is one short forever (quorum 3 of 3 live validators),
        // and once the shared mempool is drained no later round can
        // propose anything — the chain halts.
        let (mut v, deliver_rx) = bare_validator(3);
        let b = OrderedBlock {
            seq: 0,
            timestamp_ms: 1,
            txs: vec![tx(7)],
        };
        let d = block_digest(&b);
        // Round 1 runs in full at peers 1 and 2 while we sit in round 0.
        v.handle(
            1, // proposer_of(0, 1) == 1
            TmMsg::Proposal {
                height: 0,
                round: 1,
                block: b,
            },
        );
        for peer in [1, 2] {
            v.handle(
                peer,
                TmMsg::Prevote {
                    height: 0,
                    round: 1,
                    digest: Some(d),
                },
            );
            v.handle(
                peer,
                TmMsg::Precommit {
                    height: 0,
                    round: 1,
                    digest: Some(d),
                },
            );
        }
        assert_eq!(
            v.round, 0,
            "future-round messages are recorded, not acted on"
        );
        // Round 0 dies with a nil precommit quorum; advancing must
        // vote for the held round-1 proposal, completing both quorums
        // and committing without any further network traffic.
        for peer in [0, 2, 3] {
            v.handle(
                peer,
                TmMsg::Precommit {
                    height: 0,
                    round: 0,
                    digest: None,
                },
            );
        }
        assert_eq!(v.height, 1, "held proposal must commit after advance");
        let seqs: Vec<u64> = deliver_rx.try_iter().map(|(_, b)| b.seq).collect();
        assert_eq!(seqs, vec![0]);
    }

    #[test]
    fn proposer_reproposes_the_held_block_when_the_mempool_is_empty() {
        // A failed round's block drained the shared mempool when it
        // was first cut; the next rounds' proposers find the pool
        // empty. They must re-propose the held block (validValue) or
        // nothing can ever commit again.
        let (mut v, _deliver_rx) = bare_validator(2); // proposer_of(0, 2) == 2
        let b = OrderedBlock {
            seq: 0,
            timestamp_ms: 1,
            txs: vec![tx(9)],
        };
        let d = block_digest(&b);
        v.handle(
            1, // proposer_of(0, 1) == 1
            TmMsg::Proposal {
                height: 0,
                round: 1,
                block: b,
            },
        );
        v.round = 2; // round 1 failed; we now lead round 2
        v.maybe_propose();
        let reproposed = v
            .state
            .proposals
            .get(&2)
            .expect("block re-proposed at round 2");
        assert_eq!(block_digest(reproposed), d);
        assert!(
            v.state.sent_prevote.contains(&2),
            "proposer prevotes its own re-proposal"
        );
    }
}
