//! Tendermint-style round-based BFT.
//!
//! Models the paper's Tendermint 0.19 deployment (§VII-B). Validators
//! rotate the proposer per round; each height runs
//! Propose → Prevote → Precommit with ⌈2n/3⌉+ quorums, advancing to the
//! next round (with the next proposer) on timeout. Transactions pass
//! through a *serial* CheckTx before entering the mempool — the paper's
//! explanation for Tendermint's limited throughput ("each transaction
//! … is first checked by and then delivered to SEBDB in a serial
//! manner, which is a slow process"). The per-transaction check cost
//! is configurable so the Fig. 7 harness can reproduce that shape.
//!
//! Scope note: value locking (the POL rule) is omitted — with honest
//! validators and a reliable simulated network, a round either commits
//! one proposal or advances with nil votes, so safety is preserved for
//! the configurations exercised here.

use crate::traits::{now_ms, BatchConfig, CommitAck, Consensus, ConsensusError, OrderedBlock};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use sebdb_crypto::sha256::{Digest, Sha256};
use sebdb_network::sim::{NetConfig, NodeId, SimNet};
use sebdb_types::{Codec, Transaction};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type AckSender = Sender<Result<CommitAck, ConsensusError>>;

/// Tendermint protocol messages.
#[derive(Debug, Clone)]
pub enum TmMsg {
    /// Proposer → all: the proposed block for (height, round).
    Proposal {
        /// Consensus height (= block seq).
        height: u64,
        /// Round within the height.
        round: u32,
        /// Proposed block.
        block: OrderedBlock,
    },
    /// Validator → all: prevote (`None` = nil).
    Prevote {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Voted digest, or nil.
        digest: Option<Digest>,
    },
    /// Validator → all: precommit (`None` = nil).
    Precommit {
        /// Height.
        height: u64,
        /// Round.
        round: u32,
        /// Voted digest, or nil.
        digest: Option<Digest>,
    },
}

fn block_digest(block: &OrderedBlock) -> Digest {
    let mut h = Sha256::new();
    h.update(&block.seq.to_le_bytes());
    for tx in &block.txs {
        h.update(&tx.to_bytes());
    }
    h.finalize()
}

/// Tendermint engine configuration.
#[derive(Debug, Clone)]
pub struct TendermintConfig {
    /// Packaging policy (the paper sets the packaging block size to
    /// 10 000 so blocks cut on timeout under light load).
    pub batch: BatchConfig,
    /// Validator count (quorum is ⌈2n/3⌉+).
    pub validators: usize,
    /// Network behaviour between validators.
    pub net: NetConfig,
    /// Per-step timeout.
    pub step_timeout: Duration,
    /// Serial CheckTx cost per transaction, in microseconds (on top of
    /// the real hash verification) — models Tendermint's admission
    /// path.
    pub checktx_cost_us: u64,
    /// Validators that never start (liveness fault injection).
    pub down: Vec<NodeId>,
}

impl Default for TendermintConfig {
    fn default() -> Self {
        TendermintConfig {
            batch: BatchConfig {
                max_txs: 10_000,
                timeout_ms: 200,
            },
            validators: 4,
            net: NetConfig::default(),
            step_timeout: Duration::from_millis(150),
            checktx_cost_us: 0,
            down: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Propose,
    Prevote,
    Precommit,
}

struct HeightState {
    proposals: HashMap<u32, OrderedBlock>,
    prevotes: HashMap<(u32, Option<Digest>), HashSet<NodeId>>,
    precommits: HashMap<(u32, Option<Digest>), HashSet<NodeId>>,
    sent_prevote: HashSet<u32>,
    sent_precommit: HashSet<u32>,
}

impl HeightState {
    fn new() -> Self {
        HeightState {
            proposals: HashMap::new(),
            prevotes: HashMap::new(),
            precommits: HashMap::new(),
            sent_prevote: HashSet::new(),
            sent_precommit: HashSet::new(),
        }
    }
}

struct Validator {
    id: NodeId,
    n: usize,
    net: Arc<SimNet<TmMsg>>,
    inbox: Receiver<sebdb_network::sim::Envelope<TmMsg>>,
    mempool: Arc<Mutex<VecDeque<Transaction>>>,
    batch: BatchConfig,
    step_timeout: Duration,
    height: u64,
    round: u32,
    step: Step,
    deadline: Instant,
    state: HeightState,
    deliveries: Sender<(NodeId, OrderedBlock)>,
    stopped: Arc<AtomicBool>,
    /// When the current head of the mempool first became visible —
    /// drives the packaging timeout.
    batch_started: Option<Instant>,
}

impl Validator {
    fn quorum(&self) -> usize {
        2 * self.n / 3 + 1
    }

    fn proposer_of(&self, height: u64, round: u32) -> NodeId {
        ((height + round as u64) % self.n as u64) as NodeId
    }

    fn run(mut self) {
        self.deadline = Instant::now() + self.step_timeout;
        while !self.stopped.load(Ordering::Relaxed) {
            self.maybe_propose();
            let wait = self
                .deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(5));
            match self.inbox.recv_timeout(wait) {
                Ok(env) => self.handle(env.from, env.msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            self.on_deadline();
        }
    }

    fn broadcast_and_self(&mut self, msg: TmMsg) {
        self.net.broadcast(self.id, msg.clone());
        self.handle(self.id, msg);
    }

    /// If we are the proposer of the current round and have not yet
    /// proposed, cut a batch when it is full or the packaging timeout
    /// has elapsed.
    fn maybe_propose(&mut self) {
        if self.step != Step::Propose
            || self.proposer_of(self.height, self.round) != self.id
            || self.state.proposals.contains_key(&self.round)
        {
            return;
        }
        let ready = {
            let pool = self.mempool.lock();
            if pool.is_empty() {
                self.batch_started = None;
                false
            } else {
                if self.batch_started.is_none() {
                    self.batch_started = Some(Instant::now());
                }
                pool.len() >= self.batch.max_txs
                    || self.batch_started.is_some_and(|s| {
                        s.elapsed() >= Duration::from_millis(self.batch.timeout_ms)
                    })
            }
        };
        if !ready {
            return;
        }
        let txs: Vec<Transaction> = {
            let mut pool = self.mempool.lock();
            let take = pool.len().min(self.batch.max_txs);
            pool.drain(..take).collect()
        };
        self.batch_started = None;
        let block = OrderedBlock {
            seq: self.height,
            timestamp_ms: now_ms(),
            txs,
        };
        let (height, round) = (self.height, self.round);
        self.broadcast_and_self(TmMsg::Proposal {
            height,
            round,
            block,
        });
    }

    fn handle(&mut self, from: NodeId, msg: TmMsg) {
        match msg {
            TmMsg::Proposal {
                height,
                round,
                block,
            } => {
                if height != self.height || from != self.proposer_of(height, round) {
                    return;
                }
                if block.seq != height {
                    return;
                }
                let digest = block_digest(&block);
                self.state.proposals.insert(round, block);
                // Prevote for the proposal if we haven't voted this round.
                if round == self.round && self.state.sent_prevote.insert(round) {
                    self.step = Step::Prevote;
                    self.deadline = Instant::now() + self.step_timeout;
                    self.broadcast_and_self(TmMsg::Prevote {
                        height,
                        round,
                        digest: Some(digest),
                    });
                }
                // Votes may have raced ahead of the proposal; re-check.
                self.check_prevote_quorum(round);
                self.check_precommit_quorum(round);
            }
            TmMsg::Prevote {
                height,
                round,
                digest,
            } => {
                if height != self.height {
                    return;
                }
                self.state
                    .prevotes
                    .entry((round, digest))
                    .or_default()
                    .insert(from);
                self.check_prevote_quorum(round);
            }
            TmMsg::Precommit {
                height,
                round,
                digest,
            } => {
                if height != self.height {
                    return;
                }
                self.state
                    .precommits
                    .entry((round, digest))
                    .or_default()
                    .insert(from);
                self.check_precommit_quorum(round);
            }
        }
    }

    fn check_prevote_quorum(&mut self, round: u32) {
        if round != self.round || self.state.sent_precommit.contains(&round) {
            return;
        }
        let quorum = self.quorum();
        // Quorum for a concrete digest → precommit it.
        let hit: Option<Option<Digest>> = self
            .state
            .prevotes
            .iter()
            .find(|((r, d), votes)| *r == round && d.is_some() && votes.len() >= quorum)
            .map(|((_, d), _)| *d);
        let nil_quorum = self
            .state
            .prevotes
            .get(&(round, None))
            .is_some_and(|v| v.len() >= quorum);
        let vote = if let Some(d) = hit {
            Some(d)
        } else if nil_quorum {
            Some(None)
        } else {
            None
        };
        if let Some(digest) = vote {
            self.state.sent_precommit.insert(round);
            self.step = Step::Precommit;
            self.deadline = Instant::now() + self.step_timeout;
            let height = self.height;
            self.broadcast_and_self(TmMsg::Precommit {
                height,
                round,
                digest,
            });
        }
    }

    fn check_precommit_quorum(&mut self, round: u32) {
        let quorum = self.quorum();
        // Commit on a digest quorum at any round of this height.
        let hit: Option<Digest> = self
            .state
            .precommits
            .iter()
            .find(|((r, d), votes)| *r == round && d.is_some() && votes.len() >= quorum)
            .and_then(|((_, d), _)| *d);
        if let Some(digest) = hit {
            // We must hold the matching proposal to apply it.
            let block = self
                .state
                .proposals
                .get(&round)
                .filter(|b| block_digest(b) == digest)
                .cloned();
            if let Some(block) = block {
                let _ = self.deliveries.send((self.id, block));
                self.height += 1;
                self.round = 0;
                self.step = Step::Propose;
                self.state = HeightState::new();
                self.deadline = Instant::now() + self.step_timeout;
                return;
            }
        }
        // Nil quorum at our round → next round, next proposer.
        if round == self.round
            && self
                .state
                .precommits
                .get(&(round, None))
                .is_some_and(|v| v.len() >= quorum)
        {
            self.advance_round();
        }
    }

    fn on_deadline(&mut self) {
        if Instant::now() < self.deadline {
            return;
        }
        let (height, round) = (self.height, self.round);
        match self.step {
            Step::Propose => {
                // No proposal in time → prevote nil. Only when there is
                // traffic waiting; otherwise stay idle in Propose.
                let has_traffic = !self.mempool.lock().is_empty()
                    || !self.state.proposals.is_empty()
                    || !self.state.prevotes.is_empty();
                if has_traffic && self.state.sent_prevote.insert(round) {
                    self.step = Step::Prevote;
                    self.broadcast_and_self(TmMsg::Prevote {
                        height,
                        round,
                        digest: None,
                    });
                }
                self.deadline = Instant::now() + self.step_timeout;
            }
            Step::Prevote => {
                if self.state.sent_precommit.insert(round) {
                    self.step = Step::Precommit;
                    self.broadcast_and_self(TmMsg::Precommit {
                        height,
                        round,
                        digest: None,
                    });
                }
                self.deadline = Instant::now() + self.step_timeout;
            }
            Step::Precommit => {
                self.advance_round();
            }
        }
    }

    fn advance_round(&mut self) {
        self.round += 1;
        self.step = Step::Propose;
        self.deadline = Instant::now() + self.step_timeout;
    }
}

struct TmShared {
    subscribers: Mutex<Vec<Sender<OrderedBlock>>>,
    acks: Mutex<HashMap<u64, AckSender>>,
    stopped: Arc<AtomicBool>,
}

/// The Tendermint-style consensus engine.
pub struct TendermintEngine {
    submit_tx: Sender<(Transaction, AckSender)>,
    shared: Arc<TmShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    n: usize,
}

impl TendermintEngine {
    /// Starts the validators, the serial CheckTx/mempool thread, and
    /// the delivery fan-out.
    pub fn start(config: TendermintConfig) -> Arc<Self> {
        let n = config.validators;
        assert!(n >= 1);
        let net: Arc<SimNet<TmMsg>> = SimNet::new(config.net.clone());
        let stopped = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(TmShared {
            subscribers: Mutex::new(Vec::new()),
            acks: Mutex::new(HashMap::new()),
            stopped: Arc::clone(&stopped),
        });
        let mempool = Arc::new(Mutex::new(VecDeque::new()));
        let (deliver_tx, deliver_rx) = unbounded::<(NodeId, OrderedBlock)>();
        let mut threads = Vec::new();

        let mut endpoints = Vec::new();
        for _ in 0..n {
            endpoints.push(net.register());
        }
        for (id, inbox) in endpoints {
            if config.down.contains(&id) {
                continue; // faulty validator never starts
            }
            let v = Validator {
                id,
                n,
                net: Arc::clone(&net),
                inbox,
                mempool: Arc::clone(&mempool),
                batch: config.batch,
                step_timeout: config.step_timeout,
                height: 0,
                round: 0,
                step: Step::Propose,
                deadline: Instant::now(),
                state: HeightState::new(),
                deliveries: deliver_tx.clone(),
                stopped: Arc::clone(&stopped),
                batch_started: None,
            };
            threads.push(sebdb_parallel::spawn_service("tm-validator", move || {
                v.run()
            }));
        }
        drop(deliver_tx);

        // Serial CheckTx + mempool admission.
        let (submit_tx, submit_rx) = unbounded::<(Transaction, AckSender)>();
        {
            let mempool = Arc::clone(&mempool);
            let shared = Arc::clone(&shared);
            let stopped = Arc::clone(&stopped);
            let cost = Duration::from_micros(config.checktx_cost_us);
            threads.push(sebdb_parallel::spawn_service("tm-checktx", move || {
                let mut next_tid: u64 = 1;
                loop {
                    if stopped.load(Ordering::Relaxed) {
                        return;
                    }
                    match submit_rx.recv_timeout(Duration::from_millis(20)) {
                        Ok((mut tx, ack)) => {
                            // CheckTx: re-encode and hash (real work),
                            // reject empty types.
                            if tx.tname.is_empty() {
                                let _ = ack.send(Err(ConsensusError::Rejected(
                                    "empty transaction type".into(),
                                )));
                                continue;
                            }
                            let _ = tx.hash();
                            if !cost.is_zero() {
                                std::thread::sleep(cost);
                            }
                            tx.tid = next_tid;
                            next_tid += 1;
                            shared.acks.lock().insert(tx.tid, ack);
                            mempool.lock().push_back(tx);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }));
        }

        // Delivery fan-out: the lowest-id live validator's stream.
        let canonical: NodeId = (0..n).find(|id| !config.down.contains(id)).unwrap_or(0);
        {
            let shared = Arc::clone(&shared);
            threads.push(sebdb_parallel::spawn_service("tm-deliver", move || {
                for (validator, block) in deliver_rx.iter() {
                    if validator != canonical {
                        continue;
                    }
                    for sub in shared.subscribers.lock().iter() {
                        let _ = sub.send(block.clone());
                    }
                    let mut acks = shared.acks.lock();
                    for tx in &block.txs {
                        if let Some(ack) = acks.remove(&tx.tid) {
                            let _ = ack.send(Ok(CommitAck {
                                tid: tx.tid,
                                seq: block.seq,
                            }));
                        }
                    }
                }
            }));
        }

        Arc::new(TendermintEngine {
            submit_tx,
            shared,
            threads: Mutex::new(threads),
            n,
        })
    }

    /// Validator count.
    pub fn validator_count(&self) -> usize {
        self.n
    }
}

impl Consensus for TendermintEngine {
    fn submit(&self, tx: Transaction) -> Receiver<Result<CommitAck, ConsensusError>> {
        let (ack_tx, ack_rx) = bounded(1);
        if self.submit_tx.send((tx, ack_tx.clone())).is_err() {
            let _ = ack_tx.send(Err(ConsensusError::Stopped));
        }
        ack_rx
    }

    fn subscribe(&self) -> Receiver<OrderedBlock> {
        let (tx, rx) = unbounded();
        self.shared.subscribers.lock().push(tx);
        rx
    }

    fn shutdown(&self) {
        self.shared.stopped.store(true, Ordering::Relaxed);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }

    fn name(&self) -> &'static str {
        "tendermint"
    }
}

impl Drop for TendermintEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::Value;

    fn tx(i: i64) -> Transaction {
        Transaction::new(now_ms(), KeyId([3; 8]), "donate", vec![Value::Int(i)])
    }

    fn quick() -> TendermintConfig {
        TendermintConfig {
            batch: BatchConfig {
                max_txs: 4,
                timeout_ms: 30,
            },
            step_timeout: Duration::from_millis(100),
            ..TendermintConfig::default()
        }
    }

    #[test]
    fn commits_a_block() {
        let e = TendermintEngine::start(quick());
        let sub = e.subscribe();
        let acks: Vec<_> = (0..4).map(|i| e.submit(tx(i))).collect();
        let block = sub.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(block.seq, 0);
        assert_eq!(block.txs.len(), 4);
        for a in acks {
            assert!(a.recv_timeout(Duration::from_secs(10)).unwrap().is_ok());
        }
        e.shutdown();
    }

    #[test]
    fn heights_advance_sequentially() {
        let e = TendermintEngine::start(quick());
        let sub = e.subscribe();
        for i in 0..12 {
            e.submit(tx(i));
        }
        let mut seqs = Vec::new();
        let mut total = 0;
        while total < 12 {
            let b = sub.recv_timeout(Duration::from_secs(10)).unwrap();
            total += b.txs.len();
            seqs.push(b.seq);
        }
        let want: Vec<u64> = (0..seqs.len() as u64).collect();
        assert_eq!(seqs, want);
        e.shutdown();
    }

    #[test]
    fn checktx_rejects_bad_transactions() {
        let e = TendermintEngine::start(quick());
        let mut bad = tx(1);
        bad.tname = String::new();
        let ack = e.submit(bad);
        match ack.recv_timeout(Duration::from_secs(5)).unwrap() {
            Err(ConsensusError::Rejected(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        e.shutdown();
    }

    #[test]
    fn survives_a_down_proposer_via_round_rotation() {
        // Validator 0 proposes height 0; validator 1 would propose
        // height 1 round 0 but is down — round rotation must hand the
        // proposal to validator 2.
        let e = TendermintEngine::start(TendermintConfig {
            down: vec![1],
            ..quick()
        });
        let sub = e.subscribe();
        for i in 0..8 {
            e.submit(tx(i));
        }
        let mut total = 0;
        while total < 8 {
            let b = sub.recv_timeout(Duration::from_secs(20)).unwrap();
            total += b.txs.len();
        }
        e.shutdown();
    }
}
