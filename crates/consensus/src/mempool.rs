//! The shared ingest mempool: submit-side coalescing for the ordering
//! engines.
//!
//! `submit` used to hand each transaction to the broker/batcher thread
//! over a channel, so ingest was one channel round-trip per
//! transaction and the producer woke once per submission. The mempool
//! inverts that: submitters enqueue into a condvar-guarded pending
//! buffer, and the block producer drains up to
//! [`BatchConfig::max_txs`] transactions per round — cut at `max_txs`
//! or on the packaging timeout since the first pending transaction
//! (the paper's 200 tx / 200 ms policy, §VII-B), exactly the cut rule
//! the engines already implemented per-transaction.
//!
//! Admission is amortized per batch instead of per transaction: with a
//! verifier installed, [`Mempool::admit`] runs the signing-payload MAC
//! checks across workers with `sebdb-parallel`'s first-failure search
//! — the all-valid fast path costs one parallel sweep with early
//! exit, and only a batch containing a forgery pays the per-verdict
//! pass that rejects the bad transactions individually.
//!
//! (The Tendermint engine keeps its own validator-local mempool with
//! serial CheckTx — that serialization is the Fig. 7 bottleneck the
//! reproduction preserves on purpose.)

use crate::traits::{BatchConfig, CommitAck, ConsensusError};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use sebdb_parallel::Tracked;
use sebdb_types::Transaction;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The channel half a committing engine resolves a submission on.
pub type AckSender = Sender<Result<CommitAck, ConsensusError>>;

/// Checks a transaction's signing-payload MAC at admission. Returning
/// `false` rejects the transaction with [`ConsensusError::Rejected`].
pub type AdmissionVerifier = dyn Fn(&Transaction) -> bool + Send + Sync;

/// The coalescing buffer, every field under a zero-cost [`Tracked`]
/// marker: the model checker's mempool suite wraps the same state in
/// its race-detecting twin and proves the condvar-guarded discipline
/// below (DESIGN.md §14).
struct PoolState {
    queue: Tracked<VecDeque<(Transaction, AckSender)>>,
    /// Arrival time of the oldest pending transaction — the packaging
    /// timeout counts from here.
    first_pending: Tracked<Option<Instant>>,
    closed: Tracked<bool>,
}

/// A condvar-guarded pending buffer shared between submitters and one
/// block-producer thread.
pub struct Mempool {
    state: Mutex<PoolState>,
    arrived: Condvar,
    config: BatchConfig,
    verifier: parking_lot::RwLock<Option<Box<AdmissionVerifier>>>,
}

impl Mempool {
    /// An empty mempool with the given packaging policy.
    pub fn new(config: BatchConfig) -> Mempool {
        Mempool {
            state: Mutex::new(PoolState {
                queue: Tracked::new(VecDeque::new()),
                first_pending: Tracked::new(None),
                closed: Tracked::new(false),
            }),
            arrived: Condvar::new(),
            config,
            verifier: parking_lot::RwLock::new(None),
        }
    }

    /// Installs (or clears) the batch admission verifier.
    pub fn set_verifier(&self, verifier: Option<Box<AdmissionVerifier>>) {
        *self.verifier.write() = verifier;
    }

    /// Enqueues a transaction; the returned channel yields exactly one
    /// commit/reject message once the producer has processed it.
    pub fn submit(&self, tx: Transaction) -> Receiver<Result<CommitAck, ConsensusError>> {
        let (ack_tx, ack_rx) = bounded(1);
        let mut st = self.state.lock();
        if st.closed.get() {
            drop(st);
            let _ = ack_tx.send(Err(ConsensusError::Stopped));
            return ack_rx;
        }
        if st.queue.with(VecDeque::is_empty) {
            st.first_pending.set(Some(Instant::now()));
        }
        st.queue.with_mut(|q| q.push_back((tx, ack_tx)));
        drop(st);
        self.arrived.notify_one();
        ack_rx
    }

    /// Number of transactions currently pending.
    pub fn len(&self) -> usize {
        self.state.lock().queue.with(VecDeque::len)
    }

    /// Whether the pending buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until a batch is ready — `max_txs` pending, or the
    /// packaging timeout elapsed since the first pending transaction —
    /// and drains up to `max_txs` in submission order. Returns `None`
    /// once the pool is closed; the caller then rejects leftovers via
    /// [`Self::take_remaining`].
    pub fn next_batch(&self) -> Option<Vec<(Transaction, AckSender)>> {
        let timeout = Duration::from_millis(self.config.timeout_ms);
        let mut st = self.state.lock();
        loop {
            if st.closed.get() {
                return None;
            }
            if st.queue.with(VecDeque::len) >= self.config.max_txs {
                return Some(Self::drain(&mut st, self.config.max_txs));
            }
            let wait = match st.first_pending.get() {
                Some(first) => {
                    let elapsed = first.elapsed();
                    if elapsed >= timeout && !st.queue.with(VecDeque::is_empty) {
                        let n = st.queue.with(VecDeque::len);
                        return Some(Self::drain(&mut st, n));
                    }
                    timeout - elapsed
                }
                None => timeout,
            };
            self.arrived.wait_timeout(&mut st, wait);
        }
    }

    fn drain(st: &mut PoolState, n: usize) -> Vec<(Transaction, AckSender)> {
        let batch: Vec<_> = st.queue.with_mut(|q| q.drain(..n).collect());
        st.first_pending.set(if st.queue.with(VecDeque::is_empty) {
            None
        } else {
            // Leftovers start a fresh packaging window: their original
            // arrival instant is not tracked per transaction, and a
            // backlog this deep will hit the max_txs cut first anyway.
            Some(Instant::now())
        });
        batch
    }

    /// Runs batch admission: with no verifier installed the batch
    /// passes through untouched. Otherwise all MACs are checked across
    /// workers with a first-failure search (the all-valid fast path
    /// exits early); only a batch containing a failure pays the
    /// per-transaction verdict pass, which rejects the invalid
    /// transactions on their ack channels and keeps the rest.
    pub fn admit(&self, batch: Vec<(Transaction, AckSender)>) -> Vec<(Transaction, AckSender)> {
        let guard = self.verifier.read();
        let Some(verify) = guard.as_ref() else {
            return batch;
        };
        let all_valid = {
            let txs: Vec<&Transaction> = batch.iter().map(|(tx, _)| tx).collect();
            sebdb_parallel::par_find_first(&txs, 16, |tx| (!verify(tx)).then_some(())).is_none()
        };
        if all_valid {
            return batch;
        }
        let verdicts: Vec<bool> = {
            let txs: Vec<&Transaction> = batch.iter().map(|(tx, _)| tx).collect();
            sebdb_parallel::par_map(&txs, 16, |tx| verify(tx))
        };
        batch
            .into_iter()
            .zip(verdicts)
            .filter_map(|((tx, ack), ok)| {
                if ok {
                    Some((tx, ack))
                } else {
                    let _ = ack.send(Err(ConsensusError::Rejected(format!(
                        "transaction from {:?} on '{}' failed MAC admission",
                        tx.sender, tx.tname
                    ))));
                    None
                }
            })
            .collect()
    }

    /// Closes the pool: subsequent submissions are refused with
    /// [`ConsensusError::Stopped`] and [`Self::next_batch`] returns
    /// `None`.
    pub fn close(&self) {
        self.state.lock().closed.set(true);
        self.arrived.notify_all();
    }

    /// Drains every pending transaction (used after [`Self::close`] to
    /// reject leftovers).
    pub fn take_remaining(&self) -> Vec<(Transaction, AckSender)> {
        let mut st = self.state.lock();
        st.first_pending.set(None);
        st.queue.with_mut(|q| q.drain(..).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::now_ms;
    use sebdb_crypto::sig::{KeyId, MacKeypair, Signer, Verifier};
    use sebdb_types::Value;

    fn tx(i: i64) -> Transaction {
        Transaction::new(now_ms(), KeyId([1; 8]), "donate", vec![Value::Int(i)])
    }

    #[test]
    fn cuts_at_max_txs_without_waiting_for_timeout() {
        let pool = Mempool::new(BatchConfig {
            max_txs: 3,
            timeout_ms: 60_000,
        });
        for i in 0..3 {
            pool.submit(tx(i));
        }
        let start = Instant::now();
        let batch = pool.next_batch().unwrap();
        assert_eq!(batch.len(), 3);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(pool.is_empty());
    }

    #[test]
    fn timeout_flushes_partial_batch() {
        let pool = Mempool::new(BatchConfig {
            max_txs: 1000,
            timeout_ms: 30,
        });
        pool.submit(tx(1));
        pool.submit(tx(2));
        let batch = pool.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn oversize_backlog_drains_in_max_chunks() {
        let pool = Mempool::new(BatchConfig {
            max_txs: 4,
            timeout_ms: 50,
        });
        for i in 0..10 {
            pool.submit(tx(i));
        }
        assert_eq!(pool.next_batch().unwrap().len(), 4);
        assert_eq!(pool.next_batch().unwrap().len(), 4);
        assert_eq!(pool.next_batch().unwrap().len(), 2);
    }

    #[test]
    fn admission_rejects_only_forged_macs() {
        let keys = MacKeypair::from_key([5u8; 32]);
        let pool = Mempool::new(BatchConfig {
            max_txs: 4,
            timeout_ms: 50,
        });
        let verify_keys = keys.clone();
        pool.set_verifier(Some(Box::new(move |tx: &Transaction| {
            sebdb_crypto::sig::Signature::from_bytes(&tx.sig)
                .is_some_and(|sig| verify_keys.verify(&tx.signing_payload(), &sig))
        })));
        let mut acks = Vec::new();
        for i in 0..4 {
            let mut t = tx(i);
            if i != 2 {
                t.sig = keys.sign(&t.signing_payload()).to_bytes();
            } // tx 2 keeps an empty (forged) signature
            acks.push(pool.submit(t));
        }
        let batch = pool.next_batch().unwrap();
        let admitted = pool.admit(batch);
        assert_eq!(admitted.len(), 3);
        // The forged submission was rejected on its ack channel.
        match acks[2].recv_timeout(Duration::from_secs(2)).unwrap() {
            Err(ConsensusError::Rejected(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn timeout_flush_racing_concurrent_submit_loses_nothing() {
        // A 1 ms packaging window makes the producer's timeout flush
        // race live submissions constantly; every transaction must land
        // in exactly one batch (or the post-close leftovers).
        let pool = std::sync::Arc::new(Mempool::new(BatchConfig {
            max_txs: 4,
            timeout_ms: 1,
        }));
        let producer = {
            let pool = std::sync::Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut seen: Vec<i64> = Vec::new();
                while let Some(batch) = pool.next_batch() {
                    assert!(batch.len() <= 4, "batch over max_txs");
                    for (tx, _ack) in batch {
                        match tx.values.first() {
                            Some(Value::Int(i)) => seen.push(*i),
                            other => panic!("unexpected value {other:?}"),
                        }
                    }
                }
                seen
            })
        };
        let per_thread = 50i64;
        let submitters: Vec<_> = (0..3)
            .map(|t| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        pool.submit(tx(t * per_thread + i));
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        pool.close();
        let mut seen = producer.join().unwrap();
        for (tx, _ack) in pool.take_remaining() {
            match tx.values.first() {
                Some(Value::Int(i)) => seen.push(*i),
                other => panic!("unexpected value {other:?}"),
            }
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..3 * per_thread).collect::<Vec<i64>>(),
            "transactions lost or duplicated across timeout flushes"
        );
    }

    #[test]
    fn close_refuses_submissions_and_wakes_producer() {
        let pool = std::sync::Arc::new(Mempool::new(BatchConfig::default()));
        let producer = {
            let pool = std::sync::Arc::clone(&pool);
            std::thread::spawn(move || pool.next_batch())
        };
        std::thread::sleep(Duration::from_millis(20));
        pool.close();
        assert!(producer.join().unwrap().is_none());
        let ack = pool.submit(tx(1));
        assert_eq!(
            ack.recv_timeout(Duration::from_secs(1)).unwrap(),
            Err(ConsensusError::Stopped)
        );
    }
}
