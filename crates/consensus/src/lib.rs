//! # sebdb-consensus
//!
//! Pluggable consensus engines for SEBDB (§III-B): a [`kafka`]-style
//! central ordering service (crash fault tolerant, the fast path of
//! Fig. 7), normal-case [`pbft`] with `3f+1` replicas over the
//! simulated network, and a round-based [`tendermint`]-style BFT with
//! serial CheckTx/DeliverTx (reproducing the bottleneck Fig. 7
//! discusses). All engines implement [`traits::Consensus`].

#![warn(missing_docs)]

pub mod kafka;
pub mod mempool;
pub mod pbft;
pub mod tendermint;
pub mod traits;

pub use kafka::KafkaOrderer;
pub use mempool::{AckSender, AdmissionVerifier, Mempool};
pub use pbft::{PbftConfig, PbftEngine, PbftMsg};
pub use tendermint::{TendermintConfig, TendermintEngine};
pub use traits::{BatchConfig, CommitAck, Consensus, ConsensusError, OrderedBlock};
