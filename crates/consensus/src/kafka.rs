//! Kafka-style ordering service.
//!
//! Models the paper's KAFKA deployment (§VII-B: "we start 1 broker and
//! create a transaction topic with 1 partition"): a single broker
//! thread consumes the partition in arrival order, assigns offsets
//! (tids), cuts blocks at `max_txs` or on the packaging timeout, and
//! fans the ordered blocks out to all subscribed nodes. Crash fault
//! tolerant only — no Byzantine protection, which is why it is faster
//! than the BFT engines in Fig. 7.

use crate::mempool::{AdmissionVerifier, Mempool};
use crate::traits::{now_ms, BatchConfig, CommitAck, Consensus, ConsensusError, OrderedBlock};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sebdb_types::Transaction;
use std::sync::Arc;

struct BrokerShared {
    subscribers: Mutex<Vec<Sender<OrderedBlock>>>,
}

/// The Kafka-style ordering engine.
pub struct KafkaOrderer {
    mempool: Arc<Mempool>,
    shared: Arc<BrokerShared>,
    broker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl KafkaOrderer {
    /// Starts the broker with the given packaging policy.
    pub fn start(config: BatchConfig) -> Arc<Self> {
        let mempool = Arc::new(Mempool::new(config));
        let shared = Arc::new(BrokerShared {
            subscribers: Mutex::new(Vec::new()),
        });
        let broker = {
            let mempool = Arc::clone(&mempool);
            let shared = Arc::clone(&shared);
            sebdb_parallel::spawn_service("kafka-broker", move || broker_loop(mempool, shared))
        };
        Arc::new(KafkaOrderer {
            mempool,
            shared,
            broker: Mutex::new(Some(broker)),
        })
    }

    /// Installs a batch admission verifier: every drained batch has its
    /// signing-payload MACs checked across workers before sealing, and
    /// forged transactions are rejected individually.
    pub fn set_tx_verifier(&self, verifier: Option<Box<AdmissionVerifier>>) {
        self.mempool.set_verifier(verifier);
    }
}

/// The single-partition consumer: drains coalesced batches from the
/// mempool, runs batch admission, assigns offsets (tids), and fans the
/// ordered blocks out to every subscriber.
fn broker_loop(mempool: Arc<Mempool>, shared: Arc<BrokerShared>) {
    let mut next_tid: u64 = 1;
    let mut next_seq: u64 = 0;
    loop {
        let Some(batch) = mempool.next_batch() else {
            // Closed: reject anything still pending.
            for (_, ack) in mempool.take_remaining() {
                let _ = ack.send(Err(ConsensusError::Stopped));
            }
            return;
        };
        let batch = mempool.admit(batch);
        if batch.is_empty() {
            continue;
        }
        let seq = next_seq;
        next_seq += 1;
        let mut txs = Vec::with_capacity(batch.len());
        let mut acks = Vec::with_capacity(batch.len());
        for (mut tx, ack) in batch {
            // The ordering service assigns the globally incremental tid.
            tx.tid = next_tid;
            next_tid += 1;
            acks.push((tx.tid, ack));
            txs.push(tx);
        }
        let block = OrderedBlock {
            seq,
            timestamp_ms: now_ms(),
            txs,
        };
        for sub in shared.subscribers.lock().iter() {
            let _ = sub.send(block.clone());
        }
        for (tid, ack) in acks {
            let _ = ack.send(Ok(CommitAck { tid, seq }));
        }
    }
}

impl Consensus for KafkaOrderer {
    fn submit(&self, tx: Transaction) -> Receiver<Result<CommitAck, ConsensusError>> {
        self.mempool.submit(tx)
    }

    fn subscribe(&self) -> Receiver<OrderedBlock> {
        let (tx, rx) = unbounded();
        self.shared.subscribers.lock().push(tx);
        rx
    }

    fn shutdown(&self) {
        self.mempool.close();
        if let Some(h) = self.broker.lock().take() {
            let _ = h.join();
        }
    }

    fn name(&self) -> &'static str {
        "kafka"
    }
}

impl Drop for KafkaOrderer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::{KeyId, MacKeypair, Signer, Verifier};
    use sebdb_types::Value;
    use std::time::Duration;

    fn tx(i: i64) -> Transaction {
        Transaction::new(now_ms(), KeyId([1; 8]), "donate", vec![Value::Int(i)])
    }

    #[test]
    fn admission_verifier_rejects_forged_and_commits_rest() {
        let keys = MacKeypair::from_key([8u8; 32]);
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 3,
            timeout_ms: 10_000,
        });
        let verify_keys = keys.clone();
        k.set_tx_verifier(Some(Box::new(move |tx: &Transaction| {
            sebdb_crypto::sig::Signature::from_bytes(&tx.sig)
                .is_some_and(|sig| verify_keys.verify(&tx.signing_payload(), &sig))
        })));
        let sub = k.subscribe();
        let mut acks = Vec::new();
        for i in 0..3 {
            let mut t = tx(i);
            if i != 1 {
                t.sig = keys.sign(&t.signing_payload()).to_bytes();
            } // tx 1 is forged (empty signature)
            acks.push(k.submit(t));
        }
        let block = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(block.txs.len(), 2);
        assert!(acks[0]
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .is_ok());
        match acks[1].recv_timeout(Duration::from_secs(2)).unwrap() {
            Err(ConsensusError::Rejected(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(acks[2]
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .is_ok());
        k.shutdown();
    }

    #[test]
    fn batches_cut_at_max_txs() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 5,
            timeout_ms: 10_000,
        });
        let sub = k.subscribe();
        let acks: Vec<_> = (0..5).map(|i| k.submit(tx(i))).collect();
        let block = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(block.seq, 0);
        assert_eq!(block.txs.len(), 5);
        // Tids are 1..=5 and increasing.
        let tids: Vec<u64> = block.txs.iter().map(|t| t.tid).collect();
        assert_eq!(tids, vec![1, 2, 3, 4, 5]);
        for a in acks {
            let ack = a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(ack.seq, 0);
        }
        k.shutdown();
    }

    #[test]
    fn timeout_flushes_partial_batch() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 1000,
            timeout_ms: 30,
        });
        let sub = k.subscribe();
        k.submit(tx(1));
        k.submit(tx(2));
        let block = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(block.txs.len(), 2);
        k.shutdown();
    }

    #[test]
    fn all_subscribers_see_same_stream() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 3,
            timeout_ms: 50,
        });
        let s1 = k.subscribe();
        let s2 = k.subscribe();
        for i in 0..6 {
            k.submit(tx(i));
        }
        for _ in 0..2 {
            let a = s1.recv_timeout(Duration::from_secs(2)).unwrap();
            let b = s2.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(a.seq, b.seq);
            assert_eq!(
                a.txs.iter().map(|t| t.tid).collect::<Vec<_>>(),
                b.txs.iter().map(|t| t.tid).collect::<Vec<_>>()
            );
        }
        k.shutdown();
    }

    #[test]
    fn sequences_are_consecutive() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 2,
            timeout_ms: 50,
        });
        let sub = k.subscribe();
        for i in 0..8 {
            k.submit(tx(i));
        }
        let seqs: Vec<u64> = (0..4)
            .map(|_| sub.recv_timeout(Duration::from_secs(2)).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        k.shutdown();
    }

    #[test]
    fn shutdown_stops_engine() {
        let k = KafkaOrderer::start(BatchConfig::default());
        k.shutdown();
        let ack = k.submit(tx(1));
        // Either the channel is disconnected or we get Stopped.
        match ack.recv_timeout(Duration::from_millis(500)) {
            Ok(Err(ConsensusError::Stopped)) | Err(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
