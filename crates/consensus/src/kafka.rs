//! Kafka-style ordering service.
//!
//! Models the paper's KAFKA deployment (§VII-B: "we start 1 broker and
//! create a transaction topic with 1 partition"): a single broker
//! thread consumes the partition in arrival order, assigns offsets
//! (tids), cuts blocks at `max_txs` or on the packaging timeout, and
//! fans the ordered blocks out to all subscribed nodes. Crash fault
//! tolerant only — no Byzantine protection, which is why it is faster
//! than the BFT engines in Fig. 7.

use crate::traits::{now_ms, BatchConfig, CommitAck, Consensus, ConsensusError, OrderedBlock};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use sebdb_types::Transaction;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

type AckSender = Sender<Result<CommitAck, ConsensusError>>;

struct BrokerShared {
    subscribers: Mutex<Vec<Sender<OrderedBlock>>>,
    stopped: AtomicBool,
}

/// The Kafka-style ordering engine.
pub struct KafkaOrderer {
    produce: Sender<(Transaction, AckSender)>,
    shared: Arc<BrokerShared>,
    broker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl KafkaOrderer {
    /// Starts the broker with the given packaging policy.
    pub fn start(config: BatchConfig) -> Arc<Self> {
        let (tx, rx) = unbounded::<(Transaction, AckSender)>();
        let shared = Arc::new(BrokerShared {
            subscribers: Mutex::new(Vec::new()),
            stopped: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        let broker = std::thread::spawn(move || broker_loop(rx, shared2, config));
        Arc::new(KafkaOrderer {
            produce: tx,
            shared,
            broker: Mutex::new(Some(broker)),
        })
    }
}

fn broker_loop(
    rx: Receiver<(Transaction, AckSender)>,
    shared: Arc<BrokerShared>,
    config: BatchConfig,
) {
    let mut next_tid: u64 = 1;
    let mut next_seq: u64 = 0;
    let mut pending: Vec<(Transaction, AckSender)> = Vec::new();
    let mut batch_started: Option<Instant> = None;
    let timeout = Duration::from_millis(config.timeout_ms);

    let flush = |pending: &mut Vec<(Transaction, AckSender)>, next_seq: &mut u64| {
        if pending.is_empty() {
            return;
        }
        let seq = *next_seq;
        *next_seq += 1;
        let ts = now_ms();
        let mut txs = Vec::with_capacity(pending.len());
        let mut acks = Vec::with_capacity(pending.len());
        for (tx, ack) in pending.drain(..) {
            acks.push((tx.tid, ack));
            txs.push(tx);
        }
        let block = OrderedBlock {
            seq,
            timestamp_ms: ts,
            txs,
        };
        for sub in shared.subscribers.lock().iter() {
            let _ = sub.send(block.clone());
        }
        for (tid, ack) in acks {
            let _ = ack.send(Ok(CommitAck { tid, seq }));
        }
    };

    loop {
        if shared.stopped.load(Ordering::Relaxed) {
            // Reject anything still pending.
            for (_, ack) in pending.drain(..) {
                let _ = ack.send(Err(ConsensusError::Stopped));
            }
            return;
        }
        let wait = match batch_started {
            Some(start) => timeout
                .checked_sub(start.elapsed())
                .unwrap_or(Duration::ZERO),
            None => timeout,
        };
        match rx.recv_timeout(wait) {
            Ok((mut tx, ack)) => {
                // The ordering service assigns the globally incremental tid.
                tx.tid = next_tid;
                next_tid += 1;
                if pending.is_empty() {
                    batch_started = Some(Instant::now());
                }
                pending.push((tx, ack));
                if pending.len() >= config.max_txs {
                    flush(&mut pending, &mut next_seq);
                    batch_started = None;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if batch_started.is_some() {
                    flush(&mut pending, &mut next_seq);
                    batch_started = None;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                flush(&mut pending, &mut next_seq);
                return;
            }
        }
    }
}

impl Consensus for KafkaOrderer {
    fn submit(&self, tx: Transaction) -> Receiver<Result<CommitAck, ConsensusError>> {
        let (ack_tx, ack_rx) = bounded(1);
        if self.produce.send((tx, ack_tx.clone())).is_err() {
            let _ = ack_tx.send(Err(ConsensusError::Stopped));
        }
        ack_rx
    }

    fn subscribe(&self) -> Receiver<OrderedBlock> {
        let (tx, rx) = unbounded();
        self.shared.subscribers.lock().push(tx);
        rx
    }

    fn shutdown(&self) {
        self.shared.stopped.store(true, Ordering::Relaxed);
        if let Some(h) = self.broker.lock().take() {
            let _ = h.join();
        }
    }

    fn name(&self) -> &'static str {
        "kafka"
    }
}

impl Drop for KafkaOrderer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::Value;

    fn tx(i: i64) -> Transaction {
        Transaction::new(now_ms(), KeyId([1; 8]), "donate", vec![Value::Int(i)])
    }

    #[test]
    fn batches_cut_at_max_txs() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 5,
            timeout_ms: 10_000,
        });
        let sub = k.subscribe();
        let acks: Vec<_> = (0..5).map(|i| k.submit(tx(i))).collect();
        let block = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(block.seq, 0);
        assert_eq!(block.txs.len(), 5);
        // Tids are 1..=5 and increasing.
        let tids: Vec<u64> = block.txs.iter().map(|t| t.tid).collect();
        assert_eq!(tids, vec![1, 2, 3, 4, 5]);
        for a in acks {
            let ack = a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
            assert_eq!(ack.seq, 0);
        }
        k.shutdown();
    }

    #[test]
    fn timeout_flushes_partial_batch() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 1000,
            timeout_ms: 30,
        });
        let sub = k.subscribe();
        k.submit(tx(1));
        k.submit(tx(2));
        let block = sub.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(block.txs.len(), 2);
        k.shutdown();
    }

    #[test]
    fn all_subscribers_see_same_stream() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 3,
            timeout_ms: 50,
        });
        let s1 = k.subscribe();
        let s2 = k.subscribe();
        for i in 0..6 {
            k.submit(tx(i));
        }
        for _ in 0..2 {
            let a = s1.recv_timeout(Duration::from_secs(2)).unwrap();
            let b = s2.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(a.seq, b.seq);
            assert_eq!(
                a.txs.iter().map(|t| t.tid).collect::<Vec<_>>(),
                b.txs.iter().map(|t| t.tid).collect::<Vec<_>>()
            );
        }
        k.shutdown();
    }

    #[test]
    fn sequences_are_consecutive() {
        let k = KafkaOrderer::start(BatchConfig {
            max_txs: 2,
            timeout_ms: 50,
        });
        let sub = k.subscribe();
        for i in 0..8 {
            k.submit(tx(i));
        }
        let seqs: Vec<u64> = (0..4)
            .map(|_| sub.recv_timeout(Duration::from_secs(2)).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        k.shutdown();
    }

    #[test]
    fn shutdown_stops_engine() {
        let k = KafkaOrderer::start(BatchConfig::default());
        k.shutdown();
        let ack = k.submit(tx(1));
        // Either the channel is disconnected or we get Stopped.
        match ack.recv_timeout(Duration::from_millis(500)) {
            Ok(Err(ConsensusError::Stopped)) | Err(_) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
