//! PBFT (Castro & Liskov, OSDI'99) over the simulated network.
//!
//! The normal-case three-phase protocol with `n = 3f + 1` replicas:
//! the primary assigns sequence numbers and broadcasts `PRE-PREPARE`;
//! replicas broadcast `PREPARE` and, once *prepared* (pre-prepare +
//! `2f` matching prepares), broadcast `COMMIT`; a block is delivered
//! once *committed-local* (`2f + 1` matching commits). Delivery is
//! strictly in sequence order, so every honest replica applies the
//! same block stream.
//!
//! Scope note: this engine implements the normal-case operation that
//! the paper's write benchmark (Fig. 7) exercises; view changes are
//! out of scope — the primary is assumed non-faulty, while up to `f`
//! *backup* replicas may be Byzantine (the tests inject one that
//! equivocates on digests).

use crate::mempool::{AckSender, AdmissionVerifier, Mempool};
use crate::traits::{now_ms, BatchConfig, CommitAck, Consensus, ConsensusError, OrderedBlock};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use sebdb_crypto::sha256::{Digest, Sha256};
use sebdb_network::sim::{NetConfig, NodeId, SimNet};
use sebdb_types::{Codec, Transaction};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// PBFT protocol messages.
#[derive(Debug, Clone)]
pub enum PbftMsg {
    /// Batcher → primary: an ordered batch awaiting a sequence number.
    Request(Vec<Transaction>),
    /// Primary → all: sequence assignment.
    PrePrepare {
        /// Protocol view (fixed at 0 — no view changes).
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// Digest of the batch.
        digest: Digest,
        /// The batch itself.
        block: OrderedBlock,
    },
    /// Replica → all: prepare vote.
    Prepare {
        /// Protocol view.
        view: u64,
        /// Sequence being voted.
        seq: u64,
        /// Batch digest being voted for.
        digest: Digest,
    },
    /// Replica → all: commit vote.
    Commit {
        /// Protocol view.
        view: u64,
        /// Sequence being voted.
        seq: u64,
        /// Batch digest being voted for.
        digest: Digest,
    },
}

fn block_digest(block: &OrderedBlock) -> Digest {
    let mut h = Sha256::new();
    h.update(&block.seq.to_le_bytes());
    h.update(&block.timestamp_ms.to_le_bytes());
    for tx in &block.txs {
        h.update(&tx.to_bytes());
    }
    h.finalize()
}

#[derive(Default)]
struct SeqState {
    block: Option<OrderedBlock>,
    digest: Option<Digest>,
    /// Votes are buffered even before the pre-prepare arrives (messages
    /// from different senders may be reordered); only votes matching
    /// the pre-prepared digest count.
    prepares: HashSet<(NodeId, Digest)>,
    commits: HashSet<(NodeId, Digest)>,
    sent_commit: bool,
    delivered: bool,
}

impl SeqState {
    fn prepare_count(&self) -> usize {
        match self.digest {
            Some(d) => self.prepares.iter().filter(|(_, v)| *v == d).count(),
            None => 0,
        }
    }

    fn commit_count(&self) -> usize {
        match self.digest {
            Some(d) => self.commits.iter().filter(|(_, v)| *v == d).count(),
            None => 0,
        }
    }
}

struct Replica {
    id: NodeId,
    f: usize,
    net: Arc<SimNet<PbftMsg>>,
    inbox: Receiver<sebdb_network::sim::Envelope<PbftMsg>>,
    seqs: BTreeMap<u64, SeqState>,
    next_deliver: u64,
    next_seq: u64, // primary only
    deliveries: Sender<(NodeId, OrderedBlock)>,
    /// When set, equivocate: vote for a corrupted digest (test hook).
    byzantine: bool,
    stopped: Arc<AtomicBool>,
}

impl Replica {
    fn run(mut self) {
        while !self.stopped.load(Ordering::Relaxed) {
            match self.inbox.recv_timeout(Duration::from_millis(20)) {
                Ok(env) => self.handle(env.from, env.msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    fn broadcast_and_self(&mut self, msg: PbftMsg) {
        // Deliver to self synchronously (a replica trusts its own vote)
        // and to peers over the network.
        self.net.broadcast(self.id, msg.clone());
        self.handle(self.id, msg);
    }

    fn corrupt(&self, d: Digest) -> Digest {
        let mut h = Sha256::new();
        h.update(b"byzantine");
        h.update(d.as_bytes());
        h.finalize()
    }

    fn handle(&mut self, from: NodeId, msg: PbftMsg) {
        match msg {
            PbftMsg::Request(txs) => {
                // Only the primary sequences requests.
                if self.id != 0 {
                    return;
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                let block = OrderedBlock {
                    seq,
                    timestamp_ms: now_ms(),
                    txs,
                };
                let digest = block_digest(&block);
                self.broadcast_and_self(PbftMsg::PrePrepare {
                    view: 0,
                    seq,
                    digest,
                    block,
                });
            }
            PbftMsg::PrePrepare {
                view,
                seq,
                digest,
                block,
            } => {
                if view != 0 || from != 0 {
                    return; // only the view-0 primary may pre-prepare
                }
                // Verify the digest binds the batch.
                if block_digest(&block) != digest {
                    return;
                }
                let state = self.seqs.entry(seq).or_default();
                if state.digest.is_some() {
                    return; // duplicate pre-prepare
                }
                state.block = Some(block);
                state.digest = Some(digest);
                let vote = if self.byzantine {
                    self.corrupt(digest)
                } else {
                    digest
                };
                self.broadcast_and_self(PbftMsg::Prepare {
                    view: 0,
                    seq,
                    digest: vote,
                });
                self.try_advance(seq);
            }
            PbftMsg::Prepare { view, seq, digest } => {
                if view != 0 {
                    return;
                }
                let state = self.seqs.entry(seq).or_default();
                state.prepares.insert((from, digest));
                self.try_advance(seq);
            }
            PbftMsg::Commit { view, seq, digest } => {
                if view != 0 {
                    return;
                }
                let state = self.seqs.entry(seq).or_default();
                state.commits.insert((from, digest));
                self.try_advance(seq);
            }
        }
    }

    fn try_advance(&mut self, seq: u64) {
        // Prepared: pre-prepare + 2f prepares (own vote counts).
        let (prepared, digest) = {
            let Some(state) = self.seqs.get(&seq) else {
                return;
            };
            let Some(d) = state.digest else { return };
            (state.prepare_count() >= 2 * self.f, d)
        };
        if prepared {
            let first_commit = match self.seqs.get_mut(&seq) {
                Some(state) if !state.sent_commit => {
                    state.sent_commit = true;
                    true
                }
                _ => false,
            };
            if first_commit {
                let vote = if self.byzantine {
                    self.corrupt(digest)
                } else {
                    digest
                };
                self.broadcast_and_self(PbftMsg::Commit {
                    view: 0,
                    seq,
                    digest: vote,
                });
            }
        }
        // Committed-local: 2f + 1 commits. Deliver in order.
        loop {
            let quorum = 2 * self.f;
            let Some(state) = self.seqs.get_mut(&self.next_deliver) else {
                break;
            };
            if state.delivered || state.commit_count() <= quorum {
                break;
            }
            let Some(block) = state.block.clone() else {
                break;
            };
            state.delivered = true;
            let _ = self.deliveries.send((self.id, block));
            self.next_deliver += 1;
        }
    }
}

struct PbftShared {
    subscribers: Mutex<Vec<Sender<OrderedBlock>>>,
    pending_acks: Mutex<BTreeMap<u64, Vec<(u64, AckSender)>>>,
    stopped: Arc<AtomicBool>,
}

/// The PBFT consensus engine (4 replicas by default, tolerating f=1).
pub struct PbftEngine {
    mempool: Arc<Mempool>,
    shared: Arc<PbftShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    n: usize,
}

/// Options for the PBFT engine.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// Packaging policy.
    pub batch: BatchConfig,
    /// Fault tolerance parameter; `n = 3f + 1` replicas are started.
    pub f: usize,
    /// Network behaviour between replicas.
    pub net: NetConfig,
    /// Replica ids (excluding 0) that equivocate — test/fault-injection
    /// hook.
    pub byzantine: Vec<NodeId>,
}

impl Default for PbftConfig {
    fn default() -> Self {
        PbftConfig {
            batch: BatchConfig::default(),
            f: 1,
            net: NetConfig::default(),
            byzantine: Vec::new(),
        }
    }
}

impl PbftEngine {
    /// Starts replicas, the batcher, and the delivery fan-out.
    pub fn start(config: PbftConfig) -> Arc<Self> {
        assert!(
            !config.byzantine.contains(&0),
            "primary faults require view changes (unsupported)"
        );
        let n = 3 * config.f + 1;
        let net: Arc<SimNet<PbftMsg>> = SimNet::new(config.net.clone());
        let stopped = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(PbftShared {
            subscribers: Mutex::new(Vec::new()),
            pending_acks: Mutex::new(BTreeMap::new()),
            stopped: Arc::clone(&stopped),
        });
        let (deliver_tx, deliver_rx) = unbounded::<(NodeId, OrderedBlock)>();
        let mut threads = Vec::new();

        // Replicas 0..n.
        let mut inboxes = Vec::new();
        for _ in 0..n {
            inboxes.push(net.register());
        }
        // An extra network endpoint for the batcher.
        let (batcher_id, _batcher_rx) = net.register();
        for (id, inbox) in inboxes {
            let replica = Replica {
                id,
                f: config.f,
                net: Arc::clone(&net),
                inbox,
                seqs: BTreeMap::new(),
                next_deliver: 0,
                next_seq: 0,
                deliveries: deliver_tx.clone(),
                byzantine: config.byzantine.contains(&id),
                stopped: Arc::clone(&stopped),
            };
            threads.push(sebdb_parallel::spawn_service("pbft-replica", move || {
                replica.run()
            }));
        }
        drop(deliver_tx);

        // Batcher: drains coalesced client batches from the mempool and
        // sends sequenced requests to the primary.
        let mempool = Arc::new(Mempool::new(config.batch));
        {
            let net = Arc::clone(&net);
            let shared = Arc::clone(&shared);
            let mempool = Arc::clone(&mempool);
            threads.push(sebdb_parallel::spawn_service("pbft-batcher", move || {
                batcher_loop(mempool, net, batcher_id, shared)
            }));
        }

        // Delivery fan-out: replica 0's stream drives subscribers and acks.
        {
            let shared = Arc::clone(&shared);
            threads.push(sebdb_parallel::spawn_service("pbft-deliver", move || {
                for (replica, block) in deliver_rx.iter() {
                    if replica != 0 {
                        continue;
                    }
                    for sub in shared.subscribers.lock().iter() {
                        let _ = sub.send(block.clone());
                    }
                    if let Some(acks) = shared.pending_acks.lock().remove(&block.seq) {
                        for (tid, ack) in acks {
                            let _ = ack.send(Ok(CommitAck {
                                tid,
                                seq: block.seq,
                            }));
                        }
                    }
                }
            }));
        }

        Arc::new(PbftEngine {
            mempool,
            shared,
            threads: Mutex::new(threads),
            n,
        })
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.n
    }

    /// Installs a batch admission verifier: every drained batch has its
    /// signing-payload MACs checked across workers before the primary
    /// sequences it, and forged transactions are rejected individually.
    pub fn set_tx_verifier(&self, verifier: Option<Box<AdmissionVerifier>>) {
        self.mempool.set_verifier(verifier);
    }
}

/// Drains coalesced batches from the mempool, runs batch admission,
/// assigns tids, registers acks under the mirrored sequence number, and
/// forwards the batch to the primary for three-phase ordering.
fn batcher_loop(
    mempool: Arc<Mempool>,
    net: Arc<SimNet<PbftMsg>>,
    batcher_id: NodeId,
    shared: Arc<PbftShared>,
) {
    let mut next_tid: u64 = 1;
    let mut next_batch_seq: u64 = 0; // mirrors the primary's assignment
    loop {
        let Some(batch) = mempool.next_batch() else {
            for (_, ack) in mempool.take_remaining() {
                let _ = ack.send(Err(ConsensusError::Stopped));
            }
            return;
        };
        let batch = mempool.admit(batch);
        if batch.is_empty() {
            continue;
        }
        let seq = next_batch_seq;
        next_batch_seq += 1;
        let mut txs = Vec::with_capacity(batch.len());
        {
            let mut acks = shared.pending_acks.lock();
            let entry = acks.entry(seq).or_default();
            for (mut tx, ack) in batch {
                tx.tid = next_tid;
                next_tid += 1;
                entry.push((tx.tid, ack));
                txs.push(tx);
            }
        }
        net.send(batcher_id, 0, PbftMsg::Request(txs));
    }
}

impl Consensus for PbftEngine {
    fn submit(&self, tx: Transaction) -> Receiver<Result<CommitAck, ConsensusError>> {
        self.mempool.submit(tx)
    }

    fn subscribe(&self) -> Receiver<OrderedBlock> {
        let (tx, rx) = unbounded();
        self.shared.subscribers.lock().push(tx);
        rx
    }

    fn shutdown(&self) {
        self.mempool.close();
        self.shared.stopped.store(true, Ordering::Relaxed);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }

    fn name(&self) -> &'static str {
        "pbft"
    }
}

impl Drop for PbftEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sig::KeyId;
    use sebdb_types::Value;

    fn tx(i: i64) -> Transaction {
        Transaction::new(now_ms(), KeyId([2; 8]), "donate", vec![Value::Int(i)])
    }

    fn quick_batch() -> BatchConfig {
        BatchConfig {
            max_txs: 4,
            timeout_ms: 30,
        }
    }

    #[test]
    fn commits_through_three_phases() {
        let engine = PbftEngine::start(PbftConfig {
            batch: quick_batch(),
            ..PbftConfig::default()
        });
        assert_eq!(engine.replica_count(), 4);
        let sub = engine.subscribe();
        let acks: Vec<_> = (0..4).map(|i| engine.submit(tx(i))).collect();
        let block = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(block.seq, 0);
        assert_eq!(block.txs.len(), 4);
        for a in acks {
            assert!(a.recv_timeout(Duration::from_secs(5)).unwrap().is_ok());
        }
        engine.shutdown();
    }

    #[test]
    fn tolerates_one_byzantine_backup() {
        let engine = PbftEngine::start(PbftConfig {
            batch: quick_batch(),
            byzantine: vec![2],
            ..PbftConfig::default()
        });
        let sub = engine.subscribe();
        for i in 0..8 {
            engine.submit(tx(i));
        }
        let b0 = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        let b1 = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((b0.seq, b1.seq), (0, 1));
        assert_eq!(b0.txs.len() + b1.txs.len(), 8);
        engine.shutdown();
    }

    #[test]
    fn ordered_delivery_across_many_batches() {
        let engine = PbftEngine::start(PbftConfig {
            batch: BatchConfig {
                max_txs: 2,
                timeout_ms: 30,
            },
            ..PbftConfig::default()
        });
        let sub = engine.subscribe();
        for i in 0..10 {
            engine.submit(tx(i));
        }
        let mut tids = Vec::new();
        for want_seq in 0..5 {
            let b = sub.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(b.seq, want_seq);
            tids.extend(b.txs.iter().map(|t| t.tid));
        }
        assert_eq!(tids, (1..=10).collect::<Vec<_>>());
        engine.shutdown();
    }

    #[test]
    fn works_with_network_latency() {
        let engine = PbftEngine::start(PbftConfig {
            batch: quick_batch(),
            net: NetConfig {
                latency: Duration::from_millis(5),
                ..NetConfig::default()
            },
            ..PbftConfig::default()
        });
        let sub = engine.subscribe();
        let ack = engine.submit(tx(1));
        // Timeout flush (only 1 tx) then 3 phases over a 5 ms network.
        let block = sub.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(block.txs.len(), 1);
        assert!(ack.recv_timeout(Duration::from_secs(5)).unwrap().is_ok());
        engine.shutdown();
    }

    #[test]
    #[should_panic(expected = "view changes")]
    fn byzantine_primary_rejected() {
        let _ = PbftEngine::start(PbftConfig {
            byzantine: vec![0],
            ..PbftConfig::default()
        });
    }
}
