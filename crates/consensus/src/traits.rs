//! The pluggable consensus abstraction.
//!
//! §III-B: "SEBDB uses plug-in pattern, allowing users to select
//! different consensus protocol according to their requirements.
//! Currently, we support KAFKA and PBFT" (the evaluation also runs
//! Tendermint). All engines share one interface: clients [`submit`]
//! transactions and get an acknowledgement when their transaction
//! commits; every node [`subscribe`]s to the totally-ordered stream of
//! [`OrderedBlock`]s.
//!
//! [`submit`]: Consensus::submit
//! [`subscribe`]: Consensus::subscribe

use crossbeam::channel::Receiver;
use sebdb_types::{Transaction, TxId};

/// A totally-ordered batch of transactions: the input from which every
/// node seals the next chain block. Tids have already been assigned
/// (globally incremental) by the ordering service.
#[derive(Debug, Clone)]
pub struct OrderedBlock {
    /// Consecutive sequence number (= block height).
    pub seq: u64,
    /// Ordering-service timestamp (ms since epoch).
    pub timestamp_ms: u64,
    /// The ordered transactions.
    pub txs: Vec<Transaction>,
}

/// Acknowledgement delivered to a submitting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitAck {
    /// The tid the ordering service assigned.
    pub tid: TxId,
    /// Sequence of the block the transaction landed in.
    pub seq: u64,
}

/// Errors from the consensus layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusError {
    /// The engine has shut down.
    Stopped,
    /// The transaction was rejected by admission checks (CheckTx).
    Rejected(String),
}

impl std::fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsensusError::Stopped => write!(f, "consensus engine stopped"),
            ConsensusError::Rejected(r) => write!(f, "transaction rejected: {r}"),
        }
    }
}

impl std::error::Error for ConsensusError {}

/// A pluggable ordering/consensus engine.
pub trait Consensus: Send + Sync {
    /// Submits a transaction; the returned channel yields exactly one
    /// message when the transaction commits (or an error).
    fn submit(&self, tx: Transaction) -> Receiver<Result<CommitAck, ConsensusError>>;

    /// Subscribes a node to the ordered block stream. Every subscriber
    /// sees the same blocks in the same order.
    fn subscribe(&self) -> Receiver<OrderedBlock>;

    /// Stops background threads.
    fn shutdown(&self);

    /// Engine name for logs/benchmarks.
    fn name(&self) -> &'static str;
}

/// Packaging policy shared by all engines: cut a block at `max_txs`
/// transactions or after `timeout_ms` since the first pending
/// transaction (the paper's 200 tx / 200 ms defaults, §VII-B).
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum transactions per block.
    pub max_txs: usize,
    /// Packaging timeout in milliseconds.
    pub timeout_ms: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_txs: 200,
            timeout_ms: 200,
        }
    }
}

/// Wall-clock milliseconds since the Unix epoch.
pub fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BatchConfig::default();
        assert_eq!(c.max_txs, 200);
        assert_eq!(c.timeout_ms, 200);
    }

    #[test]
    fn now_ms_is_monotonic_enough() {
        let a = now_ms();
        let b = now_ms();
        assert!(b >= a);
        assert!(a > 1_600_000_000_000, "epoch ms sanity");
    }
}
