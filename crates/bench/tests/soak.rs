//! Large-scale soak test — paper-magnitude data (hundreds of blocks,
//! ~100k transactions). Ignored by default; run with:
//!
//! ```sh
//! cargo test -p sebdb-bench --release --test soak -- --ignored
//! ```

use sebdb::Strategy;
use sebdb_bench::datagen::{range_bed, tracking_bed, Placement};
use sebdb_bench::workload::{run_q2, run_q4};

#[test]
#[ignore = "builds ~100k transactions; run explicitly in release"]
fn paper_scale_tracking_and_range() {
    // 500 blocks × 200 tx = 100 000 transactions, result size 10 000 —
    // the paper's Fig. 8/11 settings.
    let bed = tracking_bed(500, 200, 10_000, Placement::Uniform, 99);
    let start = std::time::Instant::now();
    let r = run_q2(&bed, Strategy::Layered);
    let layered = start.elapsed();
    assert_eq!(r.len(), 10_000);

    let start = std::time::Instant::now();
    let r = run_q2(&bed, Strategy::Scan);
    let scan = start.elapsed();
    assert_eq!(r.len(), 10_000);
    assert!(
        layered < scan,
        "layered {layered:?} must beat scan {scan:?} at paper scale"
    );

    let bed = range_bed(500, 200, 10_000, Placement::gaussian(), 99);
    let r = run_q4(&bed, Strategy::Layered);
    assert_eq!(r.len(), 10_000);
    bed.ledger.verify_chain().unwrap();
}
