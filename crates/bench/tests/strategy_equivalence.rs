//! Property: whatever the dataset, every physical strategy returns the
//! same logical answer — scans are the oracle for the indexes. This is
//! the invariant the whole indexing layer rests on.

use proptest::prelude::*;
use sebdb::Strategy as Phys;
use sebdb_bench::datagen::TestBed;
use sebdb_bench::datagen::{
    join_bed, onoff_bed, range_bed, tracking2_bed, tracking_bed, Placement,
};
use sebdb_bench::workload::{run_q2, run_q3, run_q4, run_q5, run_q6};

fn placements() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::Uniform),
        (1.0f64..10.0).prop_map(|std_blocks| Placement::Gaussian { std_blocks }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tracking_strategies_agree(
        blocks in 2u64..12,
        per_block in 1usize..20,
        hits in 0usize..60,
        placement in placements(),
        seed in any::<u64>(),
    ) {
        let bed = tracking_bed(blocks, per_block, hits, placement, seed);
        let scan = run_q2(&bed, Phys::Scan);
        let bitmap = run_q2(&bed, Phys::Bitmap);
        let layered = run_q2(&bed, Phys::Layered);
        prop_assert_eq!(scan.len(), hits);
        prop_assert_eq!(bitmap.len(), hits);
        prop_assert_eq!(layered.len(), hits);
        // Same tid sets, not just counts.
        let tids = |r: &sebdb::QueryResult| {
            let mut v: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
            v.sort();
            v
        };
        prop_assert_eq!(tids(&scan), tids(&layered));
        prop_assert_eq!(tids(&scan), tids(&bitmap));
    }

    #[test]
    fn two_dim_tracking_with_windows_agree(
        blocks in 3u64..10,
        overlap in 0usize..20,
        extra in 0usize..20,
        win_lo in 0u64..5,
        win_len in 0u64..8,
        seed in any::<u64>(),
    ) {
        let bed = tracking2_bed(
            blocks, 8, overlap + extra, overlap + extra, overlap,
            Placement::Uniform, seed,
        );
        let window = Some(TestBed::window_covering_blocks(
            win_lo.min(blocks - 1),
            (win_lo + win_len).min(blocks - 1),
        ));
        let scan = run_q3(&bed, window, true, true, Phys::Scan);
        let layered = run_q3(&bed, window, true, true, Phys::Layered);
        let bitmap = run_q3(&bed, window, true, true, Phys::Bitmap);
        prop_assert_eq!(scan.len(), layered.len());
        prop_assert_eq!(scan.len(), bitmap.len());
    }

    #[test]
    fn range_strategies_agree(
        blocks in 2u64..10,
        per_block in 1usize..16,
        hits in 0usize..50,
        placement in placements(),
        seed in any::<u64>(),
    ) {
        let bed = range_bed(blocks, per_block, hits, placement, seed);
        for strat in [Phys::Scan, Phys::Bitmap, Phys::Layered, Phys::Auto] {
            prop_assert_eq!(run_q4(&bed, strat).len(), hits, "{:?}", strat);
        }
    }

    #[test]
    fn join_strategies_agree(
        blocks in 2u64..8,
        pairs in 0usize..30,
        placement in placements(),
        seed in any::<u64>(),
    ) {
        let bed = join_bed(blocks, 6, pairs, placement, seed);
        for strat in [Phys::Scan, Phys::Bitmap, Phys::Layered] {
            prop_assert_eq!(run_q5(&bed, strat).len(), pairs, "{:?}", strat);
        }
    }

    #[test]
    fn onoff_strategies_agree(
        blocks in 2u64..8,
        pairs in 0usize..25,
        off_extra in 0usize..30,
        placement in placements(),
        seed in any::<u64>(),
    ) {
        let bed = onoff_bed(blocks, 6, pairs, off_extra, placement, seed);
        for strat in [Phys::Scan, Phys::Bitmap, Phys::Layered] {
            prop_assert_eq!(run_q6(&bed, strat).len(), pairs, "{:?}", strat);
        }
    }
}

/// The parallel engine must be invisible in results: with the worker
/// cap at 4, every strategy returns the *identical* `QueryResult`
/// (rows AND order) it returns at cap 1. This pins the
/// order-preservation contracts of the grouped reads and parallel
/// scans, not just row counts.
#[test]
fn parallel_execution_returns_identical_results() {
    let range = range_bed(12, 24, 40, Placement::gaussian(), 1234);
    let track = tracking_bed(10, 16, 30, Placement::Uniform, 5678);
    let join = join_bed(6, 8, 20, Placement::Uniform, 91011);

    let run_all = || {
        let mut results = Vec::new();
        for strat in [Phys::Scan, Phys::Bitmap, Phys::Layered] {
            results.push(run_q4(&range, strat));
            results.push(run_q2(&track, strat));
            results.push(run_q5(&join, strat));
        }
        results
    };

    sebdb_parallel::set_max_threads(1);
    let sequential = run_all();
    sebdb_parallel::set_max_threads(4);
    let parallel = run_all();
    sebdb_parallel::set_max_threads(1);

    assert_eq!(sequential.len(), parallel.len());
    for (i, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(seq, par, "strategy/query case {i} diverged under threads=4");
    }
    // The testbeds are sized so the suite exercises non-empty results.
    assert!(sequential.iter().any(|r| !r.is_empty()));
}
