//! Criterion benches for Figs. 11–12: Q4 range queries under the three
//! access paths, varying chain size and result size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::Strategy;
use sebdb_bench::datagen::{range_bed, Placement};
use sebdb_bench::workload::run_q4;
use std::time::Duration;

fn fig11_range_by_chain_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_range_q4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [20u64, 40] {
        for (label, strategy) in [
            ("scan", Strategy::Scan),
            ("bitmap", Strategy::Bitmap),
            ("layered", Strategy::Layered),
        ] {
            let bed = range_bed(blocks, 50, 100, Placement::Uniform, 3);
            group.bench_with_input(BenchmarkId::new(label, blocks), &bed, |b, bed| {
                b.iter(|| run_q4(bed, strategy).len())
            });
        }
    }
    group.finish();
}

fn fig12_range_by_result_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_range_q4_results");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for hits in [50usize, 200, 800] {
        let bed = range_bed(30, 50, hits, Placement::Uniform, 4);
        group.bench_with_input(BenchmarkId::new("layered", hits), &bed, |b, bed| {
            b.iter(|| run_q4(bed, Strategy::Layered).len())
        });
        group.bench_with_input(BenchmarkId::new("bitmap", hits), &bed, |b, bed| {
            b.iter(|| run_q4(bed, Strategy::Bitmap).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig11_range_by_chain_size,
    fig12_range_by_result_size
);
criterion_main!(benches);
