//! Ablations for the design choices DESIGN.md calls out:
//!
//! * **histogram depth** — the paper says "the height of histogram is
//!   configurable for different precisions" (§IV-B); deeper histograms
//!   prune more blocks at higher first-level cost;
//! * **MB-tree fanout** — the 4 KB page choice (§VII-A) trades proof
//!   width (flat trees) against proof depth (binary-ish trees);
//! * **second-level bulk load vs incremental insert** — blocks are
//!   immutable, so bulk loading is the paper's choice ("leaf nodes are
//!   kept full").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb_crypto::sha256::Digest;
use sebdb_crypto::sig::KeyId;
use sebdb_index::mbtree::{AuthEntry, MbTree};
use sebdb_index::{BPlusTree, EqualDepthHistogram, KeyPredicate, LayeredIndex};
use sebdb_storage::TxPtr;
use sebdb_types::{Block, ColumnRef, Transaction, Value};
use std::time::Duration;

fn donate_block(height: u64, amounts: &[i64]) -> Block {
    let txs = amounts
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let mut t = Transaction::new(
                height * 1000 + i as u64,
                KeyId([1; 8]),
                "donate",
                vec![Value::str("d"), Value::str("p"), Value::decimal(a)],
            );
            t.tid = height * 1000 + i as u64 + 1;
            t
        })
        .collect();
    Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
}

/// Histogram depth vs pruning power: how many candidate blocks survive
/// a selective range predicate at depths 10 / 100 / 1000.
fn histogram_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_histogram_depth");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let blocks: Vec<Block> = (0..50)
        .map(|h| {
            // Each block holds a narrow amount band, so pruning power is
            // measurable.
            let base = (h as i64) * 100;
            donate_block(h, &(0..40).map(|i| base + i % 100).collect::<Vec<_>>())
        })
        .collect();
    let sample: Vec<i64> = (0..5000)
        .map(|v| Value::decimal(v).numeric_rank().unwrap())
        .collect();
    for depth in [10usize, 100, 1000] {
        let mut idx = LayeredIndex::new_continuous(
            Some("donate".into()),
            ColumnRef::App(2),
            EqualDepthHistogram::from_sample(sample.clone(), depth),
        );
        for b in &blocks {
            idx.update(b);
        }
        let pred = KeyPredicate::Range(Value::decimal(2000), Value::decimal(2100));
        // Report pruning power once per depth (stderr keeps criterion
        // output clean in terminal but visible with --nocapture-like
        // runs).
        eprintln!(
            "histogram depth {depth}: {} candidate blocks of 50",
            idx.candidate_blocks(&pred).count_ones()
        );
        group.bench_function(BenchmarkId::new("candidate_blocks", depth), |b| {
            b.iter(|| idx.candidate_blocks(&pred).count_ones())
        });
    }
    group.finish();
}

/// MB-tree fanout vs proof size and verify cost.
fn mbtree_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mbtree_fanout");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let entries: Vec<AuthEntry> = (0..4096i64)
        .map(|i| AuthEntry {
            key: Value::Int(i),
            tx_hash: sebdb_crypto::sha256(&i.to_le_bytes()),
            ptr: TxPtr {
                block: 0,
                index: i as u32,
            },
        })
        .collect();
    for fanout in [2usize, 8, 64, 256] {
        let tree = MbTree::build(entries.clone(), fanout);
        let (results, proof) = tree.range_query(&Value::Int(1000), &Value::Int(1100));
        eprintln!("fanout {fanout}: VO {} bytes", proof.byte_len());
        group.bench_function(BenchmarkId::new("verify", fanout), |b| {
            b.iter(|| {
                MbTree::verify_range(
                    &tree.root(),
                    &Value::Int(1000),
                    &Value::Int(1100),
                    &results,
                    &proof,
                    fanout,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Bulk load vs incremental insert for per-block second-level trees.
fn second_level_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_second_level_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let n = 10_000usize;
    let mut entries: Vec<(u64, u64)> = (0..n as u64)
        .map(|i| ((i * 2_654_435_761) % 1_000_003, i))
        .collect();
    entries.sort();
    group.bench_function("bulk_load_sorted", |b| {
        b.iter(|| BPlusTree::bulk_load(64, entries.clone()).len())
    });
    group.bench_function("incremental_insert", |b| {
        b.iter(|| {
            let mut t = BPlusTree::with_order(64);
            for (k, v) in &entries {
                t.insert(*k, *v);
            }
            t.len()
        })
    });
    group.finish();
}

criterion_group!(benches, histogram_depth, mbtree_fanout, second_level_build);
criterion_main!(benches);
