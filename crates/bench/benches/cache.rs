//! Criterion bench for Fig. 22: block cache vs transaction cache on
//! warm repeated queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::Strategy;
use sebdb_bench::datagen::{range_bed, tracking_bed, Placement};
use sebdb_bench::workload::{run_q2, run_q4, run_q7};
use std::time::Duration;

fn fig22_cache_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_cache");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let cache_bytes = 32 << 20;

    // Q2 tracking (index-driven): the transaction cache should win.
    let bed = tracking_bed(30, 40, 200, Placement::Uniform, 11);
    bed.ledger.use_block_cache(cache_bytes);
    run_q2(&bed, Strategy::Layered);
    group.bench_function(BenchmarkId::new("Q2", "block_cache"), |b| {
        b.iter(|| run_q2(&bed, Strategy::Layered).len())
    });
    bed.ledger.use_tx_cache(cache_bytes);
    run_q2(&bed, Strategy::Layered);
    group.bench_function(BenchmarkId::new("Q2", "tx_cache"), |b| {
        b.iter(|| run_q2(&bed, Strategy::Layered).len())
    });

    // Q4 range query.
    let bed = range_bed(30, 40, 200, Placement::Uniform, 12);
    bed.ledger.use_block_cache(cache_bytes);
    run_q4(&bed, Strategy::Layered);
    group.bench_function(BenchmarkId::new("Q4", "block_cache"), |b| {
        b.iter(|| run_q4(&bed, Strategy::Layered).len())
    });
    bed.ledger.use_tx_cache(cache_bytes);
    run_q4(&bed, Strategy::Layered);
    group.bench_function(BenchmarkId::new("Q4", "tx_cache"), |b| {
        b.iter(|| run_q4(&bed, Strategy::Layered).len())
    });

    // Q7 whole-block fetch: the block cache should win here.
    let bed = tracking_bed(30, 40, 200, Placement::Uniform, 13);
    bed.ledger.use_block_cache(cache_bytes);
    run_q7(&bed, 15);
    group.bench_function(BenchmarkId::new("Q7", "block_cache"), |b| {
        b.iter(|| run_q7(&bed, 15).len())
    });
    bed.ledger.use_tx_cache(cache_bytes);
    run_q7(&bed, 15);
    group.bench_function(BenchmarkId::new("Q7", "tx_cache"), |b| {
        b.iter(|| run_q7(&bed, 15).len())
    });

    group.finish();
}

criterion_group!(benches, fig22_cache_strategies);
criterion_main!(benches);
